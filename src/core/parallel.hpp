// catalyst/core -- the shared worker-pool helper.
//
// Every thread-parallel loop in catalyst follows the same discipline (first
// written for vpapi::collect, now shared): a fixed work list whose units each
// write a disjoint slice of the output, workers claiming units through an
// atomic cursor, and the first worker exception captured and rethrown after
// the join.  Determinism comes from the discipline, not the scheduler: a
// unit's result must be a pure function of its own index, so any thread
// count -- including the serial threads <= 1 fast path, which spawns
// nothing -- produces bit-identical output (the `core/campaign` argument).
//
// catalyst-lint's raw-thread-spawn rule enforces that this header is the
// ONLY place in src/ that constructs std::thread.
#pragma once

#include <atomic>
#include <cstddef>
#include <exception>
#include <mutex>
#include <thread>
#include <vector>

namespace catalyst::core {

/// Runs body(unit) for every unit in [0, total), on up to `threads` workers.
/// threads <= 1 (or total < 2) runs inline on the calling thread with no
/// spawn at all.  Units are claimed dynamically, so the assignment of units
/// to threads is NOT deterministic -- the body must write only to
/// unit-indexed slots (or merge under a lock into an order-independent
/// accumulator) for the overall result to be.
///
/// A throw from a worker reaches the caller, not std::terminate: the first
/// exception is captured, the remaining units are abandoned, and the
/// exception is rethrown after the join.  Callers that must not leak partial
/// output catch, discard, and rethrow.
template <typename Body>
void parallel_for(std::size_t total, int threads, Body&& body) {
  if (total == 0) return;
  if (threads <= 1 || total < 2) {
    for (std::size_t unit = 0; unit < total; ++unit) body(unit);
    return;
  }
  std::atomic<std::size_t> cursor{0};
  std::atomic<bool> failed{false};
  std::exception_ptr first_error;
  std::mutex error_mutex;
  const int nt = threads < static_cast<int>(total)
                     ? threads
                     : static_cast<int>(total);
  std::vector<std::thread> pool;
  pool.reserve(static_cast<std::size_t>(nt));
  for (int t = 0; t < nt; ++t) {
    pool.emplace_back([&] {
      for (;;) {
        const std::size_t unit = cursor.fetch_add(1);
        if (unit >= total || failed.load(std::memory_order_relaxed)) {
          break;
        }
        try {
          body(unit);
        } catch (...) {
          const std::lock_guard<std::mutex> lock(error_mutex);
          if (!first_error) first_error = std::current_exception();
          failed.store(true, std::memory_order_relaxed);
        }
      }
    });
  }
  for (auto& th : pool) th.join();
  if (first_error) std::rethrow_exception(first_error);
}

/// Splits [0, total) into chunks of `grain` consecutive indices (the last
/// one possibly shorter) and runs body(begin, end) once per chunk.  Chunk
/// boundaries depend only on (total, grain) -- never on the thread count --
/// so per-chunk partial results merged in chunk order are bit-identical for
/// any number of workers.
template <typename Body>
void parallel_for_chunks(std::size_t total, int threads, std::size_t grain,
                         Body&& body) {
  if (total == 0) return;
  if (grain == 0) grain = 1;
  const std::size_t n_chunks = (total + grain - 1) / grain;
  parallel_for(n_chunks, threads, [&](std::size_t c) {
    const std::size_t begin = c * grain;
    const std::size_t end = begin + grain < total ? begin + grain : total;
    body(begin, end);
  });
}

}  // namespace catalyst::core
