// catalyst/core -- the shared worker-pool helper.
//
// Every thread-parallel loop in catalyst follows the same discipline (first
// written for vpapi::collect, now shared): a fixed work list whose units each
// write a disjoint slice of the output, workers claiming units through an
// atomic cursor, and the first worker exception captured and rethrown after
// the join.  Determinism comes from the discipline, not the scheduler: a
// unit's result must be a pure function of its own index, so any thread
// count -- including the serial threads <= 1 fast path, which spawns
// nothing -- produces bit-identical output (the `core/campaign` argument).
//
// catalyst-lint's raw-thread-spawn rule enforces that this header is the
// ONLY place in src/ that constructs std::thread; its raw-sync-primitive
// rule keeps the error slot below on the annotated sync::Mutex.
#pragma once

#include <atomic>
#include <cstddef>
#include <exception>
#include <thread>
#include <vector>

#include "sync/annotations.hpp"
#include "sync/mutex.hpp"

namespace catalyst::core {

/// First-exception capture slot shared by a worker pool: keeps the earliest
/// exception a worker threw, drops the rest, and exposes a lock-free `armed`
/// flag workers poll to abandon remaining units.  The slot is the annotated
/// pattern every parallel merge in the tree follows -- data under
/// CATALYST_GUARDED_BY, locked-context helpers under CATALYST_REQUIRES.
class FirstError {
 public:
  /// Records `error` unless one is already held (first throw wins).
  void capture(std::exception_ptr error) CATALYST_EXCLUDES(mutex_) {
    const sync::LockGuard lock(mutex_);
    set_locked(std::move(error));
  }

  /// True once any worker has captured; one relaxed load (polled per unit).
  bool armed() const noexcept {
    return armed_.load(std::memory_order_relaxed);
  }

  /// Rethrows the captured exception, if any (called after the join).
  void rethrow_if_set() CATALYST_EXCLUDES(mutex_) {
    std::exception_ptr error;
    {
      const sync::LockGuard lock(mutex_);
      error = error_;
    }
    if (error) std::rethrow_exception(error);
  }

 private:
  // Deliberately REQUIRES-annotated: removing this annotation must make the
  // `check.sh thread_safety` stage fail (the body touches `error_`, which
  // is GUARDED_BY the mutex the annotation promises is held).
  void set_locked(std::exception_ptr error) CATALYST_REQUIRES(mutex_) {
    if (!error_) error_ = std::move(error);
    armed_.store(true, std::memory_order_relaxed);
  }

  sync::Mutex mutex_{"core.parallel.first_error"};
  std::exception_ptr error_ CATALYST_GUARDED_BY(mutex_);
  std::atomic<bool> armed_{false};
};

/// Runs body(unit) for every unit in [0, total), on up to `threads` workers.
/// threads <= 1 (or total < 2) runs inline on the calling thread with no
/// spawn at all.  Units are claimed dynamically, so the assignment of units
/// to threads is NOT deterministic -- the body must write only to
/// unit-indexed slots (or merge under a lock into an order-independent
/// accumulator) for the overall result to be.
///
/// A throw from a worker reaches the caller, not std::terminate: the first
/// exception is captured, the remaining units are abandoned, and the
/// exception is rethrown after the join.  Callers that must not leak partial
/// output catch, discard, and rethrow.
template <typename Body>
void parallel_for(std::size_t total, int threads, Body&& body) {
  if (total == 0) return;
  if (threads <= 1 || total < 2) {
    for (std::size_t unit = 0; unit < total; ++unit) body(unit);
    return;
  }
  std::atomic<std::size_t> cursor{0};
  FirstError first_error;
  const int nt = threads < static_cast<int>(total)
                     ? threads
                     : static_cast<int>(total);
  std::vector<std::thread> pool;
  pool.reserve(static_cast<std::size_t>(nt));
  for (int t = 0; t < nt; ++t) {
    pool.emplace_back([&] {
      for (;;) {
        const std::size_t unit = cursor.fetch_add(1);
        if (unit >= total || first_error.armed()) {
          break;
        }
        try {
          body(unit);
        } catch (...) {
          first_error.capture(std::current_exception());
        }
      }
    });
  }
  for (auto& th : pool) th.join();
  first_error.rethrow_if_set();
}

/// Splits [0, total) into chunks of `grain` consecutive indices (the last
/// one possibly shorter) and runs body(begin, end) once per chunk.  Chunk
/// boundaries depend only on (total, grain) -- never on the thread count --
/// so per-chunk partial results merged in chunk order are bit-identical for
/// any number of workers.
template <typename Body>
void parallel_for_chunks(std::size_t total, int threads, std::size_t grain,
                         Body&& body) {
  if (total == 0) return;
  if (grain == 0) grain = 1;
  const std::size_t n_chunks = (total + grain - 1) / grain;
  parallel_for(n_chunks, threads, [&](std::size_t c) {
    const std::size_t begin = c * grain;
    const std::size_t end = begin + grain < total ? begin + grain : total;
    body(begin, end);
  });
}

}  // namespace catalyst::core
