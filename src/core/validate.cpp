#include "core/validate.hpp"

#include <cmath>
#include <stdexcept>

#include "vpapi/vpapi.hpp"

namespace catalyst::core {

ValidationReport validate_metric(
    const pmu::Machine& machine, const cat::Benchmark& benchmark,
    const PresetDefinition& preset, std::span<const double> signature,
    const std::vector<cat::MixedWorkload>& mixes) {
  ValidationReport report;
  report.metric_name = preset.description;

  vpapi::Session session(machine);
  if (session.register_preset(to_derived_event(preset)) !=
      vpapi::Status::ok) {
    throw std::invalid_argument("validate_metric: preset rejected: " +
                                preset.symbol);
  }

  double err_sum = 0.0;
  for (std::size_t w = 0; w < mixes.size(); ++w) {
    const auto& mix = mixes[w];
    const int set = session.create_eventset();
    if (session.add_event(set, preset.symbol) != vpapi::Status::ok) {
      throw std::runtime_error("validate_metric: preset does not fit the "
                               "physical counters: " + preset.symbol);
    }
    session.start(set);
    // Each workload is its own run: distinct noise coordinates.
    session.run_kernel(mix.activity, /*repetition=*/w, /*kernel_index=*/0);
    session.stop(set);
    std::vector<double> vals;
    session.read(set, vals);
    session.destroy_eventset(set);

    ValidationSample sample;
    sample.workload = mix.name;
    sample.predicted = vals.at(0);
    sample.ground_truth =
        cat::ground_truth_metric(benchmark.basis, signature, mix.activity);
    sample.relative_error = std::fabs(sample.predicted - sample.ground_truth) /
                            std::max(std::fabs(sample.ground_truth), 1.0);
    err_sum += sample.relative_error;
    report.max_relative_error =
        std::max(report.max_relative_error, sample.relative_error);
    report.samples.push_back(std::move(sample));
  }
  if (!mixes.empty()) {
    report.mean_relative_error = err_sum / static_cast<double>(mixes.size());
  }
  return report;
}

std::vector<ValidationReport> validate_all(
    const pmu::Machine& machine, const cat::Benchmark& benchmark,
    const std::vector<MetricDefinition>& metrics,
    const std::vector<MetricSignature>& signatures, std::size_t num_workloads,
    std::uint64_t seed) {
  const auto mixes =
      cat::random_mixed_workloads(benchmark, num_workloads, seed);
  std::vector<ValidationReport> reports;
  for (const auto& metric : metrics) {
    auto preset = make_preset(metric);
    if (!preset) continue;  // non-composable: nothing to validate
    const MetricSignature* signature = nullptr;
    for (const auto& s : signatures) {
      if (s.name == metric.metric_name) signature = &s;
    }
    if (!signature) continue;
    reports.push_back(validate_metric(machine, benchmark, *preset,
                                      signature->coordinates, mixes));
  }
  return reports;
}

}  // namespace catalyst::core
