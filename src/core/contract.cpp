#include "core/contract.hpp"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "sync/mutex.hpp"

#if defined(__has_include)
#if __has_include(<execinfo.h>)
#include <execinfo.h>
#define CATALYST_HAVE_BACKTRACE 1
#endif
#endif

namespace catalyst::contract {

namespace {

ViolationPolicy policy_from_env() noexcept {
  const char* env = std::getenv("CATALYST_CONTRACT_POLICY");
  if (env == nullptr) return ViolationPolicy::throw_exception;
  if (std::strcmp(env, "abort") == 0) return ViolationPolicy::abort_with_trace;
  if (std::strcmp(env, "log") == 0) return ViolationPolicy::log_and_continue;
  // "throw" and anything unrecognized fall back to the safe default.
  return ViolationPolicy::throw_exception;
}

std::atomic<ViolationPolicy>& policy_slot() noexcept {
  static std::atomic<ViolationPolicy> policy{policy_from_env()};
  return policy;
}

std::atomic<std::size_t>& logged_count_slot() noexcept {
  static std::atomic<std::size_t> count{0};
  return count;
}

// Serializes violation emission: a multi-line report (message + stack
// trace) must not interleave with one from another thread.  Policy and the
// logged counter stay atomic -- they are single-word reads on hot paths.
sync::Mutex& emit_mutex() noexcept {
  static sync::Mutex mutex{"core.contract.emit"};
  return mutex;
}

void print_stack_trace() noexcept {
#ifdef CATALYST_HAVE_BACKTRACE
  void* frames[64];
  const int depth = backtrace(frames, 64);
  std::fputs("stack trace:\n", stderr);
  backtrace_symbols_fd(frames, depth, 2 /* stderr */);
#else
  std::fputs("stack trace unavailable on this platform\n", stderr);
#endif
}

}  // namespace

ViolationPolicy violation_policy() noexcept {
  return policy_slot().load(std::memory_order_relaxed);
}

void set_violation_policy(ViolationPolicy policy) noexcept {
  policy_slot().store(policy, std::memory_order_relaxed);
}

std::size_t logged_violation_count() noexcept {
  return logged_count_slot().load(std::memory_order_relaxed);
}

namespace detail {

std::string format_violation(const char* kind, const char* expr,
                             const char* file, int line,
                             const std::string& msg) {
  std::string out;
  out.reserve(msg.size() + 128);
  out += "catalyst contract: ";
  out += kind;
  out += " violated at ";
  out += file;
  out += ':';
  out += std::to_string(line);
  out += ": `";
  out += expr;
  out += "` -- ";
  out += msg;
  return out;
}

bool report_violation(const char* kind, const char* expr, const char* file,
                      int line, const std::string& msg) {
  switch (violation_policy()) {
    case ViolationPolicy::throw_exception:
      return true;  // the macro throws at the call site, preserving the type
    case ViolationPolicy::abort_with_trace: {
      const std::string text = format_violation(kind, expr, file, line, msg);
      const sync::LockGuard lock(emit_mutex());
      std::fprintf(stderr, "%s\n", text.c_str());
      print_stack_trace();
      std::abort();
    }
    case ViolationPolicy::log_and_continue: {
      const std::string text = format_violation(kind, expr, file, line, msg);
      {
        const sync::LockGuard lock(emit_mutex());
        std::fprintf(stderr, "%s (continuing)\n", text.c_str());
      }
      logged_count_slot().fetch_add(1, std::memory_order_relaxed);
      return false;
    }
  }
  return true;  // unreachable; keeps -Wreturn-type quiet
}

}  // namespace detail
}  // namespace catalyst::contract
