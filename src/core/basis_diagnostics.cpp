#include "core/basis_diagnostics.hpp"

#include <cmath>
#include <sstream>

#include "linalg/blas.hpp"
#include "linalg/svd.hpp"

namespace catalyst::core {

BasisDiagnostics diagnose_basis(const cat::ExpectationBasis& basis) {
  BasisDiagnostics d;
  const linalg::Matrix& e = basis.e;
  d.rows = e.rows();
  d.cols = e.cols();
  if (e.empty()) return d;

  d.rank = linalg::numerical_rank(e);
  d.full_rank = d.rank == e.cols();
  d.condition_number = linalg::cond2(e);

  for (linalg::index_t a = 0; a < e.cols(); ++a) {
    const double na = linalg::nrm2(e.col(a));
    if (na == 0.0) continue;
    for (linalg::index_t b = a + 1; b < e.cols(); ++b) {
      const double nb = linalg::nrm2(e.col(b));
      if (nb == 0.0) continue;
      const double coherence =
          std::fabs(linalg::dot(e.col(a), e.col(b))) / (na * nb);
      if (coherence > d.mutual_coherence) {
        d.mutual_coherence = coherence;
        d.coherent_pair_a =
            a < static_cast<linalg::index_t>(basis.labels.size())
                ? basis.labels[static_cast<std::size_t>(a)]
                : std::to_string(a);
        d.coherent_pair_b =
            b < static_cast<linalg::index_t>(basis.labels.size())
                ? basis.labels[static_cast<std::size_t>(b)]
                : std::to_string(b);
      }
    }
  }
  return d;
}

std::string basis_verdict(const BasisDiagnostics& d, double max_condition,
                          double max_coherence) {
  std::ostringstream os;
  if (!d.full_rank) {
    os << "RANK-DEFICIENT: rank " << d.rank << " < " << d.cols
       << " ideal events -- some dimensions are indistinguishable";
    return os.str();
  }
  if (d.condition_number > max_condition) {
    os << "ILL-CONDITIONED: cond = " << d.condition_number
       << " -- projections will amplify measurement noise";
    return os.str();
  }
  if (d.mutual_coherence > max_coherence) {
    os << "NEAR-COLLINEAR: |cos(" << d.coherent_pair_a << ", "
       << d.coherent_pair_b << ")| = " << d.mutual_coherence;
    return os.str();
  }
  os << "well-posed (rank " << d.rank << ", cond " << d.condition_number
     << ", max coherence " << d.mutual_coherence << " between "
     << d.coherent_pair_a << " and " << d.coherent_pair_b << ")";
  return os.str();
}

}  // namespace catalyst::core
