// catalyst/core -- noise classification (the paper's future work).
//
// The paper's Section IV reduces run-to-run variability to one number (max
// RNMSE) and its conclusion calls for "different measures to quantify event
// noise".  This module implements that direction: from the same repetition
// data, each event is classified into a noise regime --
//
//   silent         every reading zero (discarded as irrelevant anyway);
//   deterministic  identical vectors in every repetition;
//   drifting       a systematic monotone trend across repetitions
//                  (thermal ramp / frequency scaling);
//   spiky          dominated by rare large outliers (interrupt/SMM hits);
//   gaussian       broadband zero-mean jitter (everything else).
//
// The classes suggest different remedies: drifting events can be detrended
// rather than discarded, spiky events can be median-filtered, gaussian
// events need averaging -- a finer policy than the single tau cutoff.
#pragma once

#include <string>
#include <vector>

namespace catalyst::core {

enum class NoiseClass {
  silent,
  deterministic,
  drifting,
  spiky,
  gaussian,
};

const char* to_string(NoiseClass c) noexcept;

/// Quantitative evidence behind a classification.
struct NoiseProfile {
  NoiseClass cls = NoiseClass::silent;
  double max_rnmse = 0.0;     ///< Section IV's measure, for reference.
  /// Pearson correlation between repetition index and the repetition's
  /// mean reading; |r| near 1 indicates a systematic trend.
  double drift_correlation = 0.0;
  /// Relative magnitude of the fitted per-repetition trend (slope * reps /
  /// mean); the drift verdict needs both a high correlation and a
  /// non-negligible magnitude.
  double drift_magnitude = 0.0;
  /// max |deviation from element-wise median| / median |nonzero deviation|;
  /// large values mean a few readings carry most of the variability.
  double spike_ratio = 0.0;
};

/// Classifies one event's repetition data (reps[r][k], r >= 2 repetitions).
/// `drift_threshold` bounds |drift_correlation| and `spike_threshold`
/// bounds spike_ratio for the respective verdicts.
NoiseProfile classify_noise(const std::vector<std::vector<double>>& reps,
                            double drift_threshold = 0.9,
                            double spike_threshold = 8.0);

/// Removes a systematic multiplicative trend from repetition data: fits
/// scale_r = mean(reps[r]) / mean(all) by least squares against the
/// repetition index and divides each repetition by its fitted scale.  A
/// drifting-but-otherwise-clean event becomes usable by the tau filter
/// instead of being discarded (the remedy the classification suggests).
/// Repetitions with zero mean are left untouched.
std::vector<std::vector<double>> detrend_repetitions(
    const std::vector<std::vector<double>>& reps);

}  // namespace catalyst::core
