#include "core/pipeline.hpp"

#include "core/noise_classify.hpp"

#include <stdexcept>

#include "core/contract.hpp"
#include "obs/names.hpp"
#include "vpapi/collector.hpp"

namespace catalyst::core {

std::optional<std::vector<double>> PipelineResult::averaged_measurement(
    const std::string& event_name) const {
  for (std::size_t i = 0; i < noise.kept.size(); ++i) {
    if (noise.variabilities[noise.kept[i]].event_name == event_name) {
      return noise.averaged[i];
    }
  }
  return std::nullopt;
}

PipelineResult run_pipeline(const pmu::Machine& machine,
                            const cat::Benchmark& benchmark,
                            const std::vector<MetricSignature>& signatures,
                            const PipelineOptions& options) {
  CATALYST_REQUIRE_AS(options.repetitions >= 2, std::invalid_argument,
                      "run_pipeline: need >= 2 repetitions for the RNMSE "
                      "filter");
  CATALYST_REQUIRE_AS(!benchmark.slots.empty(), std::invalid_argument,
                      "run_pipeline: benchmark has no slots");
  benchmark.validate();
  CATALYST_REQUIRE_AS(!machine.events().empty(), std::invalid_argument,
                      "run_pipeline: machine publishes no events");
  const std::size_t n_threads = benchmark.slots.front().thread_activities.size();
  for (const auto& slot : benchmark.slots) {
    CATALYST_REQUIRE_AS(slot.thread_activities.size() == n_threads,
                        std::invalid_argument,
                        "run_pipeline: inconsistent thread counts across "
                        "slots");
  }

  PipelineResult result;
  result.all_event_names = machine.event_names();
  const std::size_t n_events = result.all_event_names.size();
  const std::size_t n_slots = benchmark.slots.size();

  // --- Stages 1-3: collect per thread, median across threads, normalize ----
  // One multiplexed collection per benchmark thread; the (repetition,
  // thread) pair is folded into the collector's repetition coordinate so
  // each thread's counters see independent noise, as separate hardware
  // threads would.
  obs::Span collect_span("stage.collect");
  collect_span.arg("machine", machine.name());
  collect_span.arg("events", n_events);
  collect_span.arg("slots", n_slots);
  collect_span.arg("threads", n_threads);
  std::vector<vpapi::CollectionResult> per_thread;
  per_thread.reserve(n_threads);
  for (std::size_t t = 0; t < n_threads; ++t) {
    if (options.cancel != nullptr) options.cancel->check();
    std::vector<pmu::Activity> acts;
    acts.reserve(n_slots);
    for (const auto& slot : benchmark.slots) {
      acts.push_back(slot.thread_activities[t]);
    }
    // collect() runs repetitions internally; shift the repetition base per
    // thread to decorrelate threads.
    vpapi::CollectionResult col =
        vpapi::collect_all(machine, acts, options.repetitions * n_threads,
                           options.collection_threads);
    per_thread.push_back(std::move(col));
  }
  collect_span.end();
  obs::count(obs::names::kPipelineEventsMeasured, n_events);

  obs::Span median_span("stage.median_normalize");

  result.measurements.assign(
      n_events, std::vector<std::vector<double>>(
                    options.repetitions, std::vector<double>(n_slots, 0.0)));
  // Per-slot normalization is a multiply in the hot loop, not a divide.
  std::vector<double> inv_normalizer(n_slots);
  for (std::size_t k = 0; k < n_slots; ++k) {
    inv_normalizer[k] = 1.0 / benchmark.slots[k].normalizer;
  }
  std::vector<double> thread_vals(n_threads);
  std::vector<const vpapi::RepetitionData*> rep_data(n_threads);
  for (std::size_t r = 0; r < options.repetitions; ++r) {
    for (std::size_t t = 0; t < n_threads; ++t) {
      // Thread t's repetition stream is phase-shifted so that (r, t) pairs
      // never reuse a noise coordinate.
      rep_data[t] = &per_thread[t].repetitions[r * n_threads + t];
    }
    for (std::size_t e = 0; e < n_events; ++e) {
      std::vector<double>& out = result.measurements[e][r];
      for (std::size_t k = 0; k < n_slots; ++k) {
        for (std::size_t t = 0; t < n_threads; ++t) {
          thread_vals[t] = rep_data[t]->values[e][k];
        }
        const double med = n_threads == 1 ? thread_vals[0]
                                          : median(thread_vals);
        out[k] = med * inv_normalizer[k];
      }
    }
  }
  median_span.end();

  PipelineResult analyzed = analyze_measurements(
      benchmark.basis.e, std::move(result.all_event_names),
      std::move(result.measurements), signatures, options);
  // Collection happened before analyze_measurements built its timing list;
  // splice the two collection-side stages in front so stage_timings reads in
  // true pipeline order.
  if (collect_span.duration_ns() > 0 || median_span.duration_ns() > 0) {
    std::vector<obs::StageTiming> timings;
    timings.push_back({"collect", collect_span.duration_ns()});
    timings.push_back({"median_normalize", median_span.duration_ns()});
    timings.insert(timings.end(), analyzed.stage_timings.begin(),
                   analyzed.stage_timings.end());
    analyzed.stage_timings = std::move(timings);
  }
  return analyzed;
}

PipelineResult analyze_measurements(
    const linalg::Matrix& expectation,
    const std::vector<std::string>& event_names,
    std::vector<std::vector<std::vector<double>>> measurements,
    const std::vector<MetricSignature>& signatures,
    const PipelineOptions& options) {
  PipelineResult result;
  result.all_event_names = event_names;
  result.measurements = std::move(measurements);

  // --- Stage 0: measurement sanity -------------------------------------------
  // Degradation floor: a resilient collection may quarantine events, and the
  // analysis proceeds without them -- but an EMPTY event set means the basis
  // has nothing left to select from, so the run aborts with a typed error
  // instead of producing a vacuous result.
  CATALYST_REQUIRE_AS(!result.all_event_names.empty(), std::runtime_error,
                      "analyze_measurements: event set is empty (every event "
                      "quarantined or filtered) -- nothing to analyze");
  // A NaN/Inf reading must be rejected here, at the pipeline boundary; past
  // this point it would flow silently through the RNMSE filter (NaN
  // comparisons are false, so the event is *kept*) and poison the QR stage.
  CATALYST_REQUIRE_AS(result.measurements.size() ==
                          result.all_event_names.size(),
                      std::invalid_argument,
                      "analyze_measurements: one measurement block per event "
                      "name required");
  for (std::size_t e = 0; e < result.measurements.size(); ++e) {
    for (const std::vector<double>& rep : result.measurements[e]) {
      CATALYST_ASSUME_FINITE(
          rep, "analyze_measurements: event '" + result.all_event_names[e] +
                   "' has a non-finite measurement");
    }
  }

  // Cooperative cancellation: polled once per stage boundary.  The stages
  // themselves are short (sub-millisecond on paper-sized inputs), so a
  // deadline or cancel request is honored within one stage's latency
  // without any per-element polling cost.
  const auto check_cancel = [&options] {
    if (options.cancel != nullptr) options.cancel->check();
  };
  check_cancel();

  obs::Span analyze_span("pipeline.analyze");
  analyze_span.arg("events", result.all_event_names.size());
  analyze_span.arg("tau", options.tau);
  analyze_span.arg("alpha", options.alpha);
  const auto record_stage = [&result](obs::Span& span, const char* name) {
    span.end();
    if (span.duration_ns() > 0) {
      result.stage_timings.push_back({name, span.duration_ns()});
    }
  };

  // --- Stage 3b (optional): detrend drifting events --------------------------
  if (options.detrend_drifting) {
    obs::Span span("stage.detrend");
    std::uint64_t detrended = 0;
    for (auto& reps : result.measurements) {
      const auto profile = classify_noise(reps);
      if (profile.cls == NoiseClass::drifting) {
        reps = detrend_repetitions(reps);
        ++detrended;
      }
    }
    span.arg("detrended", detrended);
    record_stage(span, "detrend");
    obs::count(obs::names::kPipelineEventsDetrended, detrended);
  }

  // --- Stage 4: noise filter ------------------------------------------------
  check_cancel();
  {
    obs::Span span("stage.noise_filter");
    span.arg("tau", options.tau);
    result.noise =
        filter_noise(result.all_event_names, result.measurements, options.tau,
                     options.analysis_threads);
    span.arg("kept", result.noise.kept.size());
    record_stage(span, "noise_filter");
  }
  obs::count(obs::names::kPipelineEventsNoiseKept, result.noise.kept.size());
  obs::count(obs::names::kPipelineEventsNoiseDropped,
             result.all_event_names.size() - result.noise.kept.size());

  // --- Stage 5: expectation-basis projection --------------------------------
  check_cancel();
  std::vector<std::string> kept_names;
  kept_names.reserve(result.noise.kept.size());
  for (std::size_t idx : result.noise.kept) {
    kept_names.push_back(result.all_event_names[idx]);
  }
  {
    obs::Span span("stage.projection");
    result.projection =
        normalize_events(expectation, kept_names, result.noise.averaged,
                         options.projection_max_error,
                         options.analysis_threads);
    span.arg("expressible", result.projection.x_event_names.size());
    record_stage(span, "projection");
  }
  obs::count(obs::names::kPipelineEventsProjected,
             result.projection.x_event_names.size());

  // --- Stage 6: specialized QRCP ---------------------------------------------
  check_cancel();
  obs::Span qrcp_span("stage.qrcp");
  qrcp_span.arg("alpha", options.alpha);
  result.qr =
      specialized_qrcp(result.projection.x, options.alpha, options.pivot_rule,
                       options.analysis_threads);
  qrcp_span.arg("selected", result.qr.selected.size());
  record_stage(qrcp_span, "qrcp");
  CATALYST_ENSURE(static_cast<linalg::index_t>(result.qr.selected.size()) <=
                      result.projection.x.cols(),
                  "analyze_measurements: QRCP selected more columns than X "
                  "has");
  result.xhat = result.projection.x.select_columns(result.qr.selected);
  result.xhat_events.reserve(result.qr.selected.size());
  for (linalg::index_t j : result.qr.selected) {
    CATALYST_ENSURE(j >= 0 && j < result.projection.x.cols(),
                    "analyze_measurements: QRCP selected column out of "
                    "range");
    result.xhat_events.push_back(
        result.projection.x_event_names[static_cast<std::size_t>(j)]);
  }

  obs::count(obs::names::kPipelineEventsSelected, result.xhat_events.size());

  // --- Stage 7: metric synthesis ----------------------------------------------
  check_cancel();
  if (!result.xhat_events.empty()) {
    obs::Span span("stage.metrics");
    span.arg("signatures", signatures.size());
    result.metrics = solve_metrics(result.xhat, result.xhat_events, signatures,
                                   options.fitness_threshold);
    span.arg("solved", result.metrics.size());
    record_stage(span, "metrics");
  }
  obs::count(obs::names::kPipelineMetricsSolved, result.metrics.size());
  analyze_span.end();
  return result;
}

}  // namespace catalyst::core
