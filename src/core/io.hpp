// catalyst/core -- measurement archives (the offline-analysis workflow).
//
// Real CAT runs happen on a supercomputer's compute nodes; the analysis
// happens wherever is convenient.  This module serializes everything the
// analysis stages need -- event names, per-repetition normalized
// measurement vectors, the expectation basis -- into a versioned JSON
// archive, and re-runs the analysis from a loaded archive via
// analyze_measurements().
#pragma once

#include <string>
#include <vector>

#include "cat/benchmark.hpp"
#include "core/pipeline.hpp"
#include "pmu/machine.hpp"

namespace catalyst::core {

/// Everything needed to analyze a collection offline.
struct MeasurementArchive {
  std::string format_version;  ///< "catalyst-measurements-v1".
  std::string machine_name;
  std::string benchmark_name;
  std::vector<std::string> slot_names;
  std::vector<std::string> basis_labels;
  linalg::Matrix expectation;  ///< slots x basis dims.
  std::vector<std::string> event_names;
  /// measurements[e][r][k]: normalized reading (event, repetition, slot).
  std::vector<std::vector<std::vector<double>>> measurements;
};

/// Builds an archive from a pipeline run (uses the result's stage-1..3
/// artifacts; the analysis stages are NOT stored -- they are recomputed on
/// load, which is the point).
MeasurementArchive make_archive(const pmu::Machine& machine,
                                const cat::Benchmark& benchmark,
                                const PipelineResult& result);

/// Serializes an archive to JSON (pretty-printed when `indent` > 0).
std::string save_archive(const MeasurementArchive& archive, int indent = 0);

/// Parses an archive; throws json::JsonError on malformed input and
/// std::invalid_argument on version/shape problems.
MeasurementArchive load_archive(const std::string& json_text);

/// Runs the analysis stages on an archive.
PipelineResult analyze_archive(const MeasurementArchive& archive,
                               const std::vector<MetricSignature>& signatures,
                               const PipelineOptions& options = {});

/// Small file helpers used by the CLI (throw std::runtime_error on I/O
/// failure).
std::string read_text_file(const std::string& path);
void write_text_file(const std::string& path, const std::string& contents);

}  // namespace catalyst::core
