// catalyst/core -- measurement archives (the offline-analysis workflow).
//
// Real CAT runs happen on a supercomputer's compute nodes; the analysis
// happens wherever is convenient.  This module serializes everything the
// analysis stages need -- event names, per-repetition normalized
// measurement vectors, the expectation basis -- into a versioned JSON
// archive, and re-runs the analysis from a loaded archive via
// analyze_measurements().
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "cat/benchmark.hpp"
#include "core/json.hpp"
#include "core/pipeline.hpp"
#include "pmu/machine.hpp"
#include "vpapi/collector.hpp"
#include "vpapi/sampling.hpp"

namespace catalyst::core {

/// Hard ceiling on the length of any ArchiveError message.  Archive load
/// errors quote fragments of the (attacker-supplied, possibly multi-GB)
/// input; in a long-running daemon an unbounded quote would balloon error
/// strings, wire ERROR frames, and logs.  256 bytes keeps the quoted
/// context useful while bounding every error to a log line.
inline constexpr std::size_t kMaxArchiveErrorBytes = 256;

/// Truncates `text` to at most `max_bytes` bytes for embedding in an error
/// message; longer inputs end with "...(<total> bytes)" so the true size is
/// still visible.  Control bytes are replaced with '.' (error strings end
/// up in logs and wire frames, never re-parsed).
std::string bounded_excerpt(const std::string& text,
                            std::size_t max_bytes = 96);

/// Typed archive rejection.  For truncated or otherwise malformed JSON,
/// `offset()` is the byte offset at which the input stopped making sense
/// (std::string::npos for structural problems in well-formed JSON).
/// Derives from json::JsonError so callers catching low-level JSON errors
/// keep working.  The stored message is capped at kMaxArchiveErrorBytes no
/// matter what the throw site concatenated -- a malformed multi-GB
/// submission can never echo itself back through what().
class ArchiveError : public json::JsonError {
 public:
  explicit ArchiveError(const std::string& what,
                        std::size_t offset = std::string::npos)
      : json::JsonError(bounded_excerpt(what, kMaxArchiveErrorBytes),
                        offset) {}
};

/// Everything needed to analyze a collection offline.
///
/// Format versions: "catalyst-measurements-v1" is the original archive;
/// "catalyst-measurements-v2" adds the optional payloads -- robustness
/// (quarantined events + the resilient driver's CollectionReport) and
/// collection mode (the mode knob + the sampling/strobed sample trace).
/// The loader accepts both; the writer emits v2 exactly when any optional
/// payload is present, so default counting-mode archives stay
/// byte-identical to v1.
struct MeasurementArchive {
  std::string format_version;  ///< "catalyst-measurements-v{1,2}".
  std::string machine_name;
  std::string benchmark_name;
  std::vector<std::string> slot_names;
  std::vector<std::string> basis_labels;
  linalg::Matrix expectation;  ///< slots x basis dims.
  std::vector<std::string> event_names;
  /// measurements[e][r][k]: normalized reading (event, repetition, slot).
  std::vector<std::vector<std::vector<double>>> measurements;
  /// v2: events the resilient driver quarantined (their rows are absent
  /// from `measurements`), and the full per-event collection report.
  std::vector<std::string> quarantined;
  std::optional<vpapi::CollectionReport> collection_report;
  /// v2: how the measurements were collected.  counting (the default) is
  /// never serialized; sampling/strobed archives carry the mode and the
  /// per-run sample trace the measurements were reconstructed from.
  vpapi::CollectionMode collection_mode = vpapi::CollectionMode::counting;
  std::optional<vpapi::SampleTrace> sample_trace;
};

/// Builds an archive from a pipeline run (uses the result's stage-1..3
/// artifacts; the analysis stages are NOT stored -- they are recomputed on
/// load, which is the point).
MeasurementArchive make_archive(const pmu::Machine& machine,
                                const cat::Benchmark& benchmark,
                                const PipelineResult& result);

/// Serializes an archive to JSON (pretty-printed when `indent` > 0).
std::string save_archive(const MeasurementArchive& archive, int indent = 0);

/// Parses an archive; throws ArchiveError (naming the byte offset) on
/// truncated/malformed input and std::invalid_argument on version/shape
/// problems in otherwise well-formed JSON.
MeasurementArchive load_archive(const std::string& json_text);

/// Runs the analysis stages on an archive.
PipelineResult analyze_archive(const MeasurementArchive& archive,
                               const std::vector<MetricSignature>& signatures,
                               const PipelineOptions& options = {});

/// Small file helpers used by the CLI (throw std::runtime_error on I/O
/// failure).
std::string read_text_file(const std::string& path);
void write_text_file(const std::string& path, const std::string& contents);

/// Crash-safe file replacement: writes to `path + ".tmp"` and renames over
/// `path`, so readers only ever observe a missing file or a complete one.
/// The checkpointing campaign driver writes every batch this way.
void write_text_file_atomic(const std::string& path,
                            const std::string& contents);

// --- JSON (de)serialization of the collection report ------------------------
// Shared by v2 archives and campaign checkpoints.

json::Value collection_report_to_json(const vpapi::CollectionReport& report);
vpapi::CollectionReport collection_report_from_json(const json::Value& v);

// --- JSON (de)serialization of sample traces --------------------------------
// Carried by v2 archives of sampling/strobed campaigns.

json::Value sample_trace_to_json(const vpapi::SampleTrace& trace);
vpapi::SampleTrace sample_trace_from_json(const json::Value& v);

}  // namespace catalyst::core
