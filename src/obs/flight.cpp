#include "obs/flight.hpp"

#include <cinttypes>
#include <cstdio>
#include <utility>

#include "obs/export.hpp"

namespace catalyst::obs {

FlightRecorder& FlightRecorder::instance() {
  static FlightRecorder recorder;
  return recorder;
}

FlightRecorder::FlightRecorder(std::size_t capacity)
    : capacity_(capacity > 0 ? capacity : 1) {}

void FlightRecorder::record(FlightRecord rec) {
  const sync::LockGuard lock(mutex_);
  const std::size_t slot = static_cast<std::size_t>(recorded_ % capacity_);
  if (slot < ring_.size()) {
    ring_[slot] = std::move(rec);
  } else {
    ring_.push_back(std::move(rec));
  }
  ++recorded_;
}

std::vector<FlightRecord> FlightRecorder::snapshot() const {
  const sync::LockGuard lock(mutex_);
  std::vector<FlightRecord> out;
  out.reserve(ring_.size());
  // Oldest surviving summary is recorded_ - ring_.size() (F3); walk the
  // ring from there in record() order.
  const std::uint64_t first = recorded_ - ring_.size();
  for (std::uint64_t n = first; n < recorded_; ++n) {
    out.push_back(ring_[static_cast<std::size_t>(n % capacity_)]);
  }
  return out;
}

std::uint64_t FlightRecorder::recorded() const {
  const sync::LockGuard lock(mutex_);
  return recorded_;
}

void FlightRecorder::clear() {
  const sync::LockGuard lock(mutex_);
  ring_.clear();
  recorded_ = 0;
}

std::string to_flight_json(const std::vector<FlightRecord>& records,
                           std::uint64_t recorded, std::size_t capacity) {
  std::string out = "{\n";
  out += "  \"format\": \"";
  out += kFlightRecorderFormat;
  out += "\",\n";
  char buf[96];
  std::snprintf(buf, sizeof buf, "  \"capacity\": %zu,\n", capacity);
  out += buf;
  std::snprintf(buf, sizeof buf, "  \"recorded\": %" PRIu64 ",\n", recorded);
  out += buf;
  out += "  \"records\": [";
  bool first = true;
  for (const FlightRecord& r : records) {
    if (!first) out += ",";
    first = false;
    out += "\n    {";
    std::snprintf(buf, sizeof buf, "\"request_id\": %" PRIu64 ", ",
                  r.request_id);
    out += buf;
    std::snprintf(buf, sizeof buf, "\"session_id\": %" PRIu64 ", ",
                  r.session_id);
    out += buf;
    std::snprintf(buf, sizeof buf, "\"trace_id\": %" PRIu64 ", ", r.trace_id);
    out += buf;
    std::snprintf(buf, sizeof buf, "\"bytes\": %" PRIu64 ",\n     ", r.bytes);
    out += buf;
    out += "\"category\": \"" + json_escape(r.category) + "\", ";
    out += "\"verdict\": \"" + json_escape(r.verdict) + "\",\n     ";
    std::snprintf(buf, sizeof buf, "\"enqueued_ns\": %" PRId64 ", ",
                  r.enqueued_ns);
    out += buf;
    std::snprintf(buf, sizeof buf, "\"started_ns\": %" PRId64 ", ",
                  r.started_ns);
    out += buf;
    std::snprintf(buf, sizeof buf, "\"finished_ns\": %" PRId64 ",\n     ",
                  r.finished_ns);
    out += buf;
    std::snprintf(buf, sizeof buf, "\"faults\": %" PRIu64 ", ", r.faults);
    out += buf;
    std::snprintf(buf, sizeof buf, "\"retries\": %" PRIu64 "}", r.retries);
    out += buf;
  }
  out += first ? "]\n" : "\n  ]\n";
  out += "}\n";
  return out;
}

}  // namespace catalyst::obs
