#include "obs/export.hpp"

#include <algorithm>
#include <cinttypes>
#include <cmath>
#include <cstdio>
#include <map>

#include "pmu/measure.hpp"

namespace catalyst::obs {
namespace {

// Numbers are written with enough digits to round-trip; JSON has no
// inf/nan, so non-finite values degrade to null.
std::string json_number(double v) {
  if (!std::isfinite(v)) return "null";
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  return buf;
}

std::string quoted(std::string_view s) {
  return "\"" + json_escape(s) + "\"";
}

/// Splits a packed "k=v;k=v;" args string into an "args" JSON object body.
/// Values that look like numbers or booleans are emitted bare.
std::string args_to_json(const char* packed) {
  std::string out;
  std::string_view rest(packed);
  bool first = true;
  while (!rest.empty()) {
    const std::size_t semi = rest.find(';');
    const std::string_view pair =
        semi == std::string_view::npos ? rest : rest.substr(0, semi);
    rest = semi == std::string_view::npos ? std::string_view()
                                          : rest.substr(semi + 1);
    const std::size_t eq = pair.find('=');
    if (eq == std::string_view::npos || eq == 0) continue;
    const std::string_view key = pair.substr(0, eq);
    const std::string_view val = pair.substr(eq + 1);
    if (!first) out += ",";
    first = false;
    out += quoted(key);
    out += ":";
    if (val == "true" || val == "false") {
      out += std::string(val);
      continue;
    }
    char* end = nullptr;
    const std::string val_str(val);
    const double num = std::strtod(val_str.c_str(), &end);
    if (!val_str.empty() && end != nullptr && *end == '\0' &&
        std::isfinite(num)) {
      out += json_number(num);
    } else {
      out += quoted(val);
    }
  }
  return out;
}

void append_histogram_json(std::string& out, const HistogramSnapshot& h,
                           const char* indent) {
  out += indent;
  out += quoted(h.name) + ": {";
  char buf[160];
  const double mean =
      h.total_count > 0 ? h.sum / static_cast<double>(h.total_count) : 0.0;
  std::snprintf(buf, sizeof buf, "\"count\": %" PRIu64 ", ", h.total_count);
  out += buf;
  out += "\"sum\": " + json_number(h.sum) + ", ";
  out += "\"min\": " + json_number(h.min) + ", ";
  out += "\"max\": " + json_number(h.max) + ", ";
  out += "\"mean\": " + json_number(mean) + "}";
}

/// True when the packed "k=v;" args string carries `key` = `value` as a
/// whole pair (substring search alone would let trace id 12 match 123).
bool has_packed_arg(const char* packed, std::string_view key,
                    std::string_view value) {
  std::string_view rest(packed);
  while (!rest.empty()) {
    const std::size_t semi = rest.find(';');
    const std::string_view pair =
        semi == std::string_view::npos ? rest : rest.substr(0, semi);
    rest = semi == std::string_view::npos ? std::string_view()
                                          : rest.substr(semi + 1);
    const std::size_t eq = pair.find('=');
    if (eq == std::string_view::npos) continue;
    if (pair.substr(0, eq) == key && pair.substr(eq + 1) == value) return true;
  }
  return false;
}

}  // namespace

std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string config_hash(const std::string& config) {
  char buf[20];
  std::snprintf(buf, sizeof buf, "%016" PRIx64, pmu::fnv1a(config));
  return buf;
}

std::string to_chrome_trace(const std::vector<SpanRecord>& spans,
                            const MetricsSnapshot& metrics) {
  // Normalize so the earliest span starts at ts=0; Chrome/Perfetto want
  // microseconds and cope badly with huge absolute steady-clock epochs.
  std::int64_t t0 = 0;
  bool have_t0 = false;
  for (const SpanRecord& s : spans) {
    if (!have_t0 || s.start_ns < t0) {
      t0 = s.start_ns;
      have_t0 = true;
    }
  }

  std::string out = "{\n  \"traceEvents\": [\n";
  bool first = true;
  for (const SpanRecord& s : spans) {
    if (!first) out += ",\n";
    first = false;
    const double ts_us = static_cast<double>(s.start_ns - t0) / 1000.0;
    const double dur_us =
        static_cast<double>(s.end_ns >= s.start_ns ? s.end_ns - s.start_ns
                                                   : 0) /
        1000.0;
    char head[128];
    std::snprintf(head, sizeof head,
                  "    {\"ph\": \"X\", \"pid\": 1, \"tid\": %u, ",
                  s.thread_id);
    out += head;
    out += "\"name\": " + quoted(s.name) + ", ";
    out += "\"ts\": " + json_number(ts_us) + ", ";
    out += "\"dur\": " + json_number(dur_us) + ", ";
    out += "\"args\": {" + args_to_json(s.args) + "}}";
  }
  out += "\n  ],\n";
  out += "  \"displayTimeUnit\": \"ms\",\n";
  out += "  \"otherData\": {\n    \"counters\": {";
  bool first_counter = true;
  for (const auto& [name, value] : metrics.counters) {
    if (!first_counter) out += ",";
    first_counter = false;
    char buf[32];
    std::snprintf(buf, sizeof buf, ": %" PRIu64, value);
    out += "\n      " + quoted(name) + buf;
  }
  out += first_counter ? "},\n" : "\n    },\n";
  out += "    \"histograms\": {";
  bool first_hist = true;
  for (const HistogramSnapshot& h : metrics.histograms) {
    if (!first_hist) out += ",";
    first_hist = false;
    out += "\n";
    append_histogram_json(out, h, "      ");
  }
  out += first_hist ? "}\n" : "\n    }\n";
  out += "  }\n}\n";
  return out;
}

std::string to_run_manifest(const RunManifest& m) {
  std::string out = "{\n";
  out += "  \"format\": " + quoted(kRunManifestFormat) + ",\n";
  out += "  \"tool\": " + quoted(m.tool) + ",\n";
  out += "  \"category\": " + quoted(m.category) + ",\n";
  out += "  \"machine\": " + quoted(m.machine) + ",\n";
  out += "  \"git_sha\": " + quoted(m.git_sha) + ",\n";
  out += "  \"config\": " + quoted(m.config) + ",\n";
  out += "  \"config_hash\": " + quoted(m.config_hash) + ",\n";
  out += "  \"tau\": " + json_number(m.tau) + ",\n";
  out += "  \"alpha\": " + json_number(m.alpha) + ",\n";
  char buf[64];
  std::snprintf(buf, sizeof buf, "  \"repetitions\": %" PRIu64 ",\n",
                m.repetitions);
  out += buf;

  out += "  \"stages\": [";
  bool first = true;
  for (const StageTiming& st : m.stages) {
    if (!first) out += ",";
    first = false;
    out += "\n    {\"name\": " + quoted(st.name) + ", \"wall_ns\": ";
    std::snprintf(buf, sizeof buf, "%" PRId64 "}", st.wall_ns);
    out += buf;
  }
  out += first ? "],\n" : "\n  ],\n";

  out += "  \"funnel\": {";
  first = true;
  for (const auto& [name, value] : m.funnel) {
    if (!first) out += ",";
    first = false;
    std::snprintf(buf, sizeof buf, ": %" PRIu64, value);
    out += "\n    " + quoted(name) + buf;
  }
  out += first ? "},\n" : "\n  },\n";

  out += "  \"counters\": {";
  first = true;
  for (const auto& [name, value] : m.metrics.counters) {
    if (!first) out += ",";
    first = false;
    std::snprintf(buf, sizeof buf, ": %" PRIu64, value);
    out += "\n    " + quoted(name) + buf;
  }
  out += first ? "},\n" : "\n  },\n";

  out += "  \"histograms\": {";
  first = true;
  for (const HistogramSnapshot& h : m.metrics.histograms) {
    if (!first) out += ",";
    first = false;
    out += "\n";
    append_histogram_json(out, h, "    ");
  }
  out += first ? "},\n" : "\n  },\n";

  std::snprintf(buf, sizeof buf, "  \"spans_published\": %" PRIu64 ",\n",
                m.spans_published);
  out += buf;
  std::snprintf(buf, sizeof buf, "  \"spans_dropped\": %" PRIu64 "\n",
                m.spans_dropped);
  out += buf;
  out += "}\n";
  return out;
}

std::string to_metrics_json(const MetricsSnapshot& metrics) {
  std::string out = "{\n";
  out += "  \"format\": ";
  out += quoted(kMetricsFormat);
  out += ",\n";
  char buf[96];

  out += "  \"counters\": {";
  bool first = true;
  for (const auto& [name, value] : metrics.counters) {
    if (!first) out += ",";
    first = false;
    std::snprintf(buf, sizeof buf, ": %" PRIu64, value);
    out += "\n    " + quoted(name) + buf;
  }
  out += first ? "},\n" : "\n  },\n";

  out += "  \"gauges\": {";
  first = true;
  for (const auto& [name, value] : metrics.gauges) {
    if (!first) out += ",";
    first = false;
    std::snprintf(buf, sizeof buf, ": %" PRId64, value);
    out += "\n    " + quoted(name) + buf;
  }
  out += first ? "},\n" : "\n  },\n";

  out += "  \"histograms\": [";
  first = true;
  for (const HistogramSnapshot& h : metrics.histograms) {
    if (!first) out += ",";
    first = false;
    out += "\n    {\"name\": " + quoted(h.name) + ",";
    std::snprintf(buf, sizeof buf, " \"count\": %" PRIu64 ",", h.total_count);
    out += buf;
    out += " \"sum\": " + json_number(h.sum) + ",";
    out += " \"min\": " + json_number(h.min) + ",";
    out += " \"max\": " + json_number(h.max) + ",\n     ";
    std::snprintf(buf, sizeof buf, "\"num_buckets\": %zu, ", kNumBuckets);
    out += buf;
    std::snprintf(buf, sizeof buf, "\"bucket_bias\": %d,\n     ", kBucketBias);
    out += buf;
    out += "\"buckets\": [";
    bool first_bucket = true;
    for (std::size_t i = 0; i < h.buckets.size(); ++i) {
      if (h.buckets[i] == 0) continue;
      if (!first_bucket) out += ", ";
      first_bucket = false;
      std::snprintf(buf, sizeof buf, "[%zu, %" PRIu64 "]", i, h.buckets[i]);
      out += buf;
    }
    out += "]}";
  }
  out += first ? "]\n" : "\n  ]\n";
  out += "}\n";
  return out;
}

std::string to_prometheus_text(const MetricsSnapshot& metrics) {
  // "a.b_c" -> "catalyst_a_b_c": dots become underscores, everything else
  // in our names (snake.case identifiers) is already legal.
  const auto mangle = [](std::string_view name) {
    std::string out = "catalyst_";
    for (const char c : name) out += c == '.' ? '_' : c;
    return out;
  };
  std::string out;
  char buf[96];
  for (const auto& [name, value] : metrics.counters) {
    const std::string m = mangle(name);
    out += "# TYPE " + m + " counter\n";
    std::snprintf(buf, sizeof buf, " %" PRIu64 "\n", value);
    out += m + buf;
  }
  for (const auto& [name, value] : metrics.gauges) {
    const std::string m = mangle(name);
    out += "# TYPE " + m + " gauge\n";
    std::snprintf(buf, sizeof buf, " %" PRId64 "\n", value);
    out += m + buf;
  }
  for (const HistogramSnapshot& h : metrics.histograms) {
    const std::string m = mangle(h.name);
    out += "# TYPE " + m + " histogram\n";
    std::uint64_t cumulative = 0;
    for (std::size_t i = 0; i < h.buckets.size(); ++i) {
      if (h.buckets[i] == 0) continue;
      cumulative += h.buckets[i];
      const double bound = histogram_upper_bound(i);
      if (std::isfinite(bound)) {
        std::snprintf(buf, sizeof buf, "_bucket{le=\"%.17g\"} %" PRIu64 "\n",
                      bound, cumulative);
        out += m + buf;
      }
    }
    std::snprintf(buf, sizeof buf, "_bucket{le=\"+Inf\"} %" PRIu64 "\n",
                  h.total_count);
    out += m + buf;
    out += m + "_sum " + json_number(h.sum) + "\n";
    std::snprintf(buf, sizeof buf, "_count %" PRIu64 "\n", h.total_count);
    out += m + buf;
  }
  return out;
}

std::string trace_fragment_json(const std::vector<SpanRecord>& spans,
                                std::uint64_t trace_id,
                                std::size_t* matched) {
  char id[24];
  std::snprintf(id, sizeof id, "%" PRIu64, trace_id);
  std::vector<SpanRecord> fragment;
  for (const SpanRecord& s : spans) {
    if (has_packed_arg(s.args, "trace", id)) fragment.push_back(s);
  }
  if (matched != nullptr) *matched = fragment.size();
  return to_chrome_trace(fragment, MetricsSnapshot{});
}

std::vector<StageTiming> aggregate_stage_timings(
    const std::vector<SpanRecord>& spans) {
  constexpr std::string_view kPrefix = "stage.";
  struct Agg {
    std::int64_t wall_ns = 0;
    std::int64_t first_start = 0;
  };
  std::map<std::string, Agg> by_name;
  for (const SpanRecord& s : spans) {
    const std::string_view name(s.name);
    if (name.substr(0, kPrefix.size()) != kPrefix) continue;
    const std::string stage(name.substr(kPrefix.size()));
    auto [it, inserted] = by_name.try_emplace(stage);
    const std::int64_t dur = s.end_ns >= s.start_ns ? s.end_ns - s.start_ns : 0;
    if (inserted || s.start_ns < it->second.first_start) {
      it->second.first_start = s.start_ns;
    }
    it->second.wall_ns += dur;
  }
  std::vector<std::pair<std::string, Agg>> ordered(by_name.begin(),
                                                   by_name.end());
  std::sort(ordered.begin(), ordered.end(),
            [](const auto& a, const auto& b) {
              if (a.second.first_start != b.second.first_start) {
                return a.second.first_start < b.second.first_start;
              }
              return a.first < b.first;
            });
  std::vector<StageTiming> out;
  out.reserve(ordered.size());
  for (auto& [name, agg] : ordered) out.push_back({name, agg.wall_ns});
  return out;
}

std::string format_stats(const MetricsSnapshot& metrics,
                         const std::vector<StageTiming>& stages,
                         std::uint64_t spans_published,
                         std::uint64_t spans_dropped) {
  std::string out = "== catalyst::obs stats ==\n";
  char buf[256];

  out += "stage timings:\n";
  if (stages.empty()) out += "  (none recorded)\n";
  std::int64_t total_ns = 0;
  for (const StageTiming& st : stages) total_ns += st.wall_ns;
  for (const StageTiming& st : stages) {
    const double ms = static_cast<double>(st.wall_ns) / 1e6;
    const double pct = total_ns > 0 ? 100.0 * static_cast<double>(st.wall_ns) /
                                          static_cast<double>(total_ns)
                                    : 0.0;
    std::snprintf(buf, sizeof buf, "  %-20s %12.3f ms  %5.1f%%\n",
                  st.name.c_str(), ms, pct);
    out += buf;
  }

  out += "counters:\n";
  if (metrics.counters.empty()) out += "  (none)\n";
  for (const auto& [name, value] : metrics.counters) {
    std::snprintf(buf, sizeof buf, "  %-32s %" PRIu64 "\n", name.c_str(),
                  value);
    out += buf;
  }

  out += "histograms:\n";
  if (metrics.histograms.empty()) out += "  (none)\n";
  for (const HistogramSnapshot& h : metrics.histograms) {
    const double mean =
        h.total_count > 0 ? h.sum / static_cast<double>(h.total_count) : 0.0;
    std::snprintf(buf, sizeof buf,
                  "  %-32s count=%" PRIu64 " mean=%.6g min=%.6g max=%.6g\n",
                  h.name.c_str(), h.total_count, mean, h.min, h.max);
    out += buf;
  }

  std::snprintf(buf, sizeof buf,
                "spans: published=%" PRIu64 " dropped=%" PRIu64 "\n",
                spans_published, spans_dropped);
  out += buf;
  return out;
}

}  // namespace catalyst::obs
