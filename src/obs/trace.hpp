// catalyst/obs -- structured tracing for the whole analysis pipeline.
//
// A Span is an RAII wall-time interval with a name and packed key=value
// attributes.  Completed spans land in a fixed-capacity, lock-free-ish ring
// buffer (seqlock-validated slots, wait-free publish) owned by the process-
// wide Tracer; exporters (obs/export.hpp) turn a snapshot into Chrome
// trace_event JSON (load in chrome://tracing or Perfetto) or a compact run
// manifest.
//
// Overhead contract:
//   * compile time: -DCATALYST_OBS=OFF defines CATALYST_OBS_DISABLED and the
//     whole API (Span, enabled(), count(), observe()) collapses to inline
//     no-ops -- the enabled/disabled variants live in distinct inline
//     namespaces so mixed translation units can never ODR-collide;
//   * run time: when compiled in but not enabled (no CATALYST_TRACE=1, no
//     --trace-out), a Span costs one relaxed atomic load; when enabled, the
//     bench/obs_overhead budget is <2% of pipeline wall time.
//
// Determinism contract: tracing never perturbs results.  Spans touch no
// RNG, no measurement state, and no fault draws; timestamps come from the
// injectable faults::Clock, so tests running under FakeClock see fully
// deterministic virtual time.
#pragma once

#include <atomic>
#include <cinttypes>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <string_view>
#include <type_traits>
#include <vector>

#include "faults/faults.hpp"

namespace catalyst::obs {

/// One completed span.  Trivially copyable on purpose: ring-buffer readers
/// validate a seqlock around a raw copy, so a torn read must be memcpy-safe
/// (no heap-owning members).
struct SpanRecord {
  static constexpr std::size_t kNameCapacity = 64;
  static constexpr std::size_t kArgsCapacity = 192;

  char name[kNameCapacity];  ///< NUL-terminated, truncated if longer.
  /// "key=value;key=value;" packed attribute string (exporters split it).
  char args[kArgsCapacity];
  std::int64_t start_ns = 0;
  std::int64_t end_ns = 0;
  std::uint32_t thread_id = 0;  ///< Small sequential id, first-use order.
};
static_assert(std::is_trivially_copyable_v<SpanRecord>,
              "SpanRecord must survive a torn (seqlock-rejected) copy");

/// Per-stage wall time, aggregated from spans; carried on PipelineResult
/// (empty when tracing is off) and rendered by the Markdown report and the
/// run manifest.
struct StageTiming {
  std::string name;
  std::int64_t wall_ns = 0;
};

/// Fixed-capacity MPMC span sink.  publish() is wait-free (one fetch_add +
/// two release stores); snapshot() copies every slot under seqlock
/// validation, skipping slots that are mid-write.  When more spans are
/// published than the capacity holds, the oldest are overwritten (counted
/// in dropped()).
///
/// Seqlock protocol invariants (this is the one subsystem that keeps raw
/// ordering-bearing atomics instead of sync::Mutex -- publish() sits on the
/// per-span hot path and must never block a worker):
///   I1. Slot ownership: publish ticket t (from the cursor fetch_add) owns
///       slot t % capacity exclusively; two writers never race on one slot
///       because each ticket is handed out exactly once.
///   I2. Seq word states: 0 = never written; odd (2t+1) = ticket t's write
///       in progress; even >= 2 (2t+2) = ticket t's record complete.  The
///       seq value encodes WHICH ticket wrote the slot, so a reader that
///       sees the same even value before and after its copy knows the
///       record was neither mid-write nor overwritten in between.
///   I3. Ordering: the pre-write store (2t+1) and post-write store (2t+2)
///       are release; readers load seq with acquire before and after a raw
///       memcpy of the record.  acquire/release pairing makes the record
///       bytes visible whenever the even seq value is.
///   I4. Torn reads are safe, never surfaced: SpanRecord is trivially
///       copyable (static_assert above), so a discarded torn copy cannot
///       touch heap state; validation (I2) guarantees a torn copy is
///       always discarded.
///   I5. clear() is NOT part of the protocol: it is documented single-
///       threaded (tests only) and may not run concurrently with
///       publishers or readers.
class TraceBuffer {
 public:
  static constexpr std::size_t kDefaultCapacity = 65536;

  explicit TraceBuffer(std::size_t capacity = kDefaultCapacity);

  void publish(const SpanRecord& rec) noexcept;
  /// Validated copy of all completed spans, oldest first (by publish order).
  std::vector<SpanRecord> snapshot() const;
  /// Total spans ever published (including overwritten ones).
  // catalyst-lint: begin-protocol(seqlock)
  std::uint64_t published() const noexcept {
    return cursor_.load(std::memory_order_acquire);
  }
  // catalyst-lint: end-protocol(seqlock)
  /// Spans lost to ring wrap-around.
  std::uint64_t dropped() const noexcept;
  std::size_t capacity() const noexcept { return capacity_; }
  /// Forgets every span (not thread-safe against concurrent publishers).
  void clear() noexcept;

 private:
  struct Slot {
    /// Seqlock word: 0 = never written, odd = write in progress,
    /// 2*ticket+2 = record for publish ticket `ticket` is complete.
    /// Full protocol invariants: see the TraceBuffer class comment (I1-I5).
    std::atomic<std::uint64_t> seq{0};
    SpanRecord rec{};
  };

  std::size_t capacity_;
  std::unique_ptr<Slot[]> slots_;
  std::atomic<std::uint64_t> cursor_{0};
};

/// Small sequential id for the calling thread (stable within the thread's
/// lifetime; assigned on first use).
std::uint32_t this_thread_id() noexcept;

/// Process-wide tracing state: the enabled flag, the time source, and the
/// span ring buffer.  CATALYST_TRACE=1 in the environment enables tracing
/// at first use; the CLI's --trace-out/--stats flags enable it explicitly.
class Tracer {
 public:
  static Tracer& instance();

  bool runtime_enabled() const noexcept {
    return enabled_.load(std::memory_order_relaxed);
  }
  void enable(bool on = true) noexcept {
    enabled_.store(on, std::memory_order_relaxed);
  }

  /// Installs a time source (tests inject faults::FakeClock for virtual,
  /// deterministic timestamps).  nullptr restores the built-in RealClock.
  void set_clock(faults::Clock* clock) noexcept;
  std::int64_t now_ns();

  TraceBuffer& buffer() noexcept { return buffer_; }
  const TraceBuffer& buffer() const noexcept { return buffer_; }

  /// Clears recorded spans (tests; not safe against concurrent publishers).
  void reset() noexcept { buffer_.clear(); }

 private:
  Tracer();

  std::atomic<bool> enabled_{false};
  std::atomic<faults::Clock*> clock_;
  faults::RealClock real_clock_;
  TraceBuffer buffer_;
};

namespace detail {

/// Appends "key=value;" to a packed args buffer, truncating at capacity.
void append_arg(char* args, std::size_t capacity, const char* key,
                const char* value) noexcept;

template <typename T>
void format_arg(char* args, std::size_t capacity, const char* key,
                const T& value) {
  if constexpr (std::is_same_v<T, bool>) {
    append_arg(args, capacity, key, value ? "true" : "false");
  } else if constexpr (std::is_floating_point_v<T>) {
    char buf[32];
    std::snprintf(buf, sizeof buf, "%.6g", static_cast<double>(value));
    append_arg(args, capacity, key, buf);
  } else if constexpr (std::is_integral_v<T> && std::is_signed_v<T>) {
    char buf[24];
    std::snprintf(buf, sizeof buf, "%" PRId64,
                  static_cast<std::int64_t>(value));
    append_arg(args, capacity, key, buf);
  } else if constexpr (std::is_integral_v<T>) {
    char buf[24];
    std::snprintf(buf, sizeof buf, "%" PRIu64,
                  static_cast<std::uint64_t>(value));
    append_arg(args, capacity, key, buf);
  } else {
    // Strings (std::string, string_view, char*): copy through a bounded
    // buffer so embedded ';'/'=' cannot corrupt the packed format.
    const std::string_view sv(value);
    char buf[96];
    std::size_t n = sv.size() < sizeof buf - 1 ? sv.size() : sizeof buf - 1;
    for (std::size_t i = 0; i < n; ++i) {
      const char c = sv[i];
      buf[i] = (c == ';' || c == '=' || c == '\n') ? '_' : c;
    }
    buf[n] = '\0';
    append_arg(args, capacity, key, buf);
  }
}

}  // namespace detail

#if defined(CATALYST_OBS_DISABLED)

// Compile-time-disabled API: every call is an inline no-op the optimizer
// deletes.  The inline namespace differs from the live variant so a program
// mixing CATALYST_OBS_DISABLED and enabled translation units (e.g. the
// obs_disabled_test binary against the regular library) never folds the two
// Span definitions together.
inline namespace noop {

constexpr bool enabled() noexcept { return false; }

class Span {
 public:
  explicit Span(const char* /*name*/) noexcept {}
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;
  ~Span() = default;

  template <typename T>
  void arg(const char* /*key*/, const T& /*value*/) noexcept {}
  void end() noexcept {}
  std::int64_t elapsed_ns() const noexcept { return 0; }
  std::int64_t duration_ns() const noexcept { return 0; }
  bool active() const noexcept { return false; }
};

inline void count(std::string_view /*counter*/,
                  std::uint64_t /*delta*/ = 1) noexcept {}
inline void observe(std::string_view /*histogram*/, double /*value*/) noexcept {
}
inline void gauge(std::string_view /*gauge_name*/,
                  std::int64_t /*value*/) noexcept {}

}  // namespace noop

#else

inline namespace live {

/// True when tracing is active for this process (CATALYST_TRACE=1 or an
/// explicit Tracer::enable()).  One relaxed atomic load.
inline bool enabled() noexcept { return Tracer::instance().runtime_enabled(); }

/// RAII span: measures from construction to end()/destruction and publishes
/// into the Tracer's ring buffer.  A nullptr name or disabled tracer makes
/// the span inert (arg()/end() are cheap no-ops).
class Span {
 public:
  explicit Span(const char* name) noexcept : active_(name != nullptr &&
                                                     obs::enabled()) {
    if (!active_) return;
    Tracer& t = Tracer::instance();
    std::snprintf(rec_.name, sizeof rec_.name, "%s", name);
    rec_.args[0] = '\0';
    rec_.thread_id = this_thread_id();
    rec_.start_ns = t.now_ns();
  }
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;
  ~Span() { end(); }

  template <typename T>
  void arg(const char* key, const T& value) {
    if (!active_) return;
    detail::format_arg(rec_.args, sizeof rec_.args, key, value);
  }

  /// Publishes now instead of at scope exit (idempotent).
  void end() noexcept {
    if (!active_) return;
    active_ = false;
    Tracer& t = Tracer::instance();
    rec_.end_ns = t.now_ns();
    t.buffer().publish(rec_);
  }

  /// Wall time since construction (0 for inert or ended spans).
  std::int64_t elapsed_ns() const {
    if (!active_) return 0;
    return Tracer::instance().now_ns() - rec_.start_ns;
  }
  /// Recorded duration of an end()ed span (0 while active or inert) --
  /// lets instrumented code reuse the span's own measurement, e.g. for
  /// PipelineResult::stage_timings.
  std::int64_t duration_ns() const noexcept {
    return rec_.end_ns >= rec_.start_ns && rec_.end_ns != 0
               ? rec_.end_ns - rec_.start_ns
               : 0;
  }
  bool active() const noexcept { return active_; }

 private:
  bool active_ = false;
  SpanRecord rec_{};
};

void count(std::string_view counter, std::uint64_t delta = 1);
void observe(std::string_view histogram, double value);
/// Sets a point-in-time gauge (queue depth, inflight sessions, ...).
void gauge(std::string_view gauge_name, std::int64_t value);

}  // namespace live

#endif  // CATALYST_OBS_DISABLED

}  // namespace catalyst::obs
