#include "obs/metrics.hpp"

#include <cmath>
#include <limits>

#include "obs/trace.hpp"

namespace catalyst::obs {

std::size_t histogram_bucket(double value) noexcept {
  if (!(value > 0.0)) return 0;  // <= 0 and NaN land in the zero bucket
  // ceil, not floor+1: an exact power of two is its bucket's (inclusive)
  // upper bound, so histogram_bucket(histogram_upper_bound(i)) == i.
  const int exp2 = static_cast<int>(std::ceil(std::log2(value)));
  const int idx = exp2 + kBucketBias;
  if (idx < 1) return 1;
  if (idx >= static_cast<int>(kNumBuckets)) return kNumBuckets - 1;
  return static_cast<std::size_t>(idx);
}

double histogram_upper_bound(std::size_t i) noexcept {
  if (i == 0) return 0.0;
  if (i >= kNumBuckets - 1) return std::numeric_limits<double>::infinity();
  return std::ldexp(1.0, static_cast<int>(i) - kBucketBias);
}

std::uint64_t MetricsSnapshot::counter(std::string_view name) const noexcept {
  for (const auto& [n, v] : counters) {
    if (n == name) return v;
  }
  return 0;
}

std::int64_t MetricsSnapshot::gauge(std::string_view name) const noexcept {
  for (const auto& [n, v] : gauges) {
    if (n == name) return v;
  }
  return 0;
}

const HistogramSnapshot* MetricsSnapshot::histogram(
    std::string_view name) const noexcept {
  for (const auto& h : histograms) {
    if (h.name == name) return &h;
  }
  return nullptr;
}

MetricsSnapshot MetricsSnapshot::delta_since(
    const MetricsSnapshot& earlier) const {
  MetricsSnapshot out;
  out.counters.reserve(counters.size());
  for (const auto& [name, now] : counters) {
    const std::uint64_t before = earlier.counter(name);
    out.counters.emplace_back(name, now >= before ? now - before : now);
  }
  out.gauges = gauges;  // point-in-time: the later poll is the answer
  out.histograms.reserve(histograms.size());
  for (const HistogramSnapshot& h : histograms) {
    HistogramSnapshot d = h;
    if (const HistogramSnapshot* before = earlier.histogram(h.name)) {
      if (h.total_count >= before->total_count) {
        d.total_count = h.total_count - before->total_count;
        d.sum = h.sum - before->sum;
        for (std::size_t i = 0; i < kNumBuckets; ++i) {
          d.buckets[i] = h.buckets[i] >= before->buckets[i]
                             ? h.buckets[i] - before->buckets[i]
                             : h.buckets[i];
        }
      }
    }
    out.histograms.push_back(std::move(d));
  }
  return out;
}

Metrics& Metrics::instance() {
  static Metrics metrics;
  return metrics;
}

void Metrics::add(std::string_view counter, std::uint64_t delta) {
  const sync::LockGuard lock(mutex_);
  const auto it = counters_.find(counter);
  if (it != counters_.end()) {
    it->second += delta;
  } else {
    counters_.emplace(std::string(counter), delta);
  }
}

void Metrics::set_gauge(std::string_view gauge, std::int64_t value) {
  const sync::LockGuard lock(mutex_);
  const auto it = gauges_.find(gauge);
  if (it != gauges_.end()) {
    it->second = value;
  } else {
    gauges_.emplace(std::string(gauge), value);
  }
}

Metrics::Histogram& Metrics::histogram_locked(std::string_view name) {
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    it = histograms_.emplace(std::string(name), Histogram{}).first;
  }
  return it->second;
}

void Metrics::observe(std::string_view histogram, double value) {
  const sync::LockGuard lock(mutex_);
  Histogram& h = histogram_locked(histogram);
  if (h.total_count == 0 || value < h.min) h.min = value;
  if (h.total_count == 0 || value > h.max) h.max = value;
  ++h.total_count;
  h.sum += value;
  ++h.buckets[histogram_bucket(value)];
}

MetricsSnapshot Metrics::snapshot() const {
  const sync::LockGuard lock(mutex_);
  MetricsSnapshot snap;
  snap.counters.reserve(counters_.size());
  for (const auto& [name, v] : counters_) snap.counters.emplace_back(name, v);
  snap.gauges.reserve(gauges_.size());
  for (const auto& [name, v] : gauges_) snap.gauges.emplace_back(name, v);
  snap.histograms.reserve(histograms_.size());
  for (const auto& [name, h] : histograms_) {
    HistogramSnapshot hs;
    hs.name = name;
    hs.total_count = h.total_count;
    hs.sum = h.sum;
    hs.min = h.min;
    hs.max = h.max;
    hs.buckets = h.buckets;
    snap.histograms.push_back(std::move(hs));
  }
  return snap;
}

void Metrics::reset() {
  const sync::LockGuard lock(mutex_);
  counters_.clear();
  gauges_.clear();
  histograms_.clear();
}

#if !defined(CATALYST_OBS_DISABLED)
inline namespace live {

void count(std::string_view counter, std::uint64_t delta) {
  if (!enabled()) return;
  Metrics::instance().add(counter, delta);
}

void observe(std::string_view histogram, double value) {
  if (!enabled()) return;
  Metrics::instance().observe(histogram, value);
}

void gauge(std::string_view gauge_name, std::int64_t value) {
  if (!enabled()) return;
  Metrics::instance().set_gauge(gauge_name, value);
}

}  // namespace live
#endif  // !CATALYST_OBS_DISABLED

}  // namespace catalyst::obs
