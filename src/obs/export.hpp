// catalyst/obs -- exporters: Chrome trace_event JSON and the run manifest.
//
// Two artifact formats leave this layer:
//
//   * Chrome trace JSON ("trace_event" format): load in chrome://tracing or
//     https://ui.perfetto.dev.  One complete ("ph":"X") event per span,
//     timestamps normalized so the earliest span starts at 0, counters
//     attached under "otherData".
//
//   * Run manifest ("catalyst-run-manifest-v1"): compact provenance record
//     of one pipeline run -- git SHA, config hash, tau/alpha, per-stage wall
//     times, stage funnel counts, counters -- the metadata the per-PR
//     BENCH_*.json trajectory embeds so results stay comparable across
//     commits (scripts/run_bench.sh).
//
// JSON is emitted directly (this library sits below catalyst::core and so
// cannot use core/json); the subset written is plain ASCII objects, arrays,
// strings, and finite numbers.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace catalyst::obs {

/// Everything the run manifest records about one pipeline invocation.
struct RunManifest {
  std::string tool;      ///< e.g. "catalyst analyze".
  std::string category;  ///< e.g. "branch".
  std::string machine;   ///< e.g. "saphira-cpu".
  std::string git_sha;   ///< From CATALYST_GIT_SHA; "unknown" when unset.
  std::string config;       ///< Human-readable config string.
  std::string config_hash;  ///< hex fnv1a of `config`.
  double tau = 0.0;
  double alpha = 0.0;
  std::uint64_t repetitions = 0;
  std::vector<StageTiming> stages;
  /// Stage funnel: ("measured", n), ("noise_kept", n), ... in funnel order.
  std::vector<std::pair<std::string, std::uint64_t>> funnel;
  MetricsSnapshot metrics;
  std::uint64_t spans_published = 0;
  std::uint64_t spans_dropped = 0;
};

/// The manifest's "format" field.
inline constexpr const char* kRunManifestFormat = "catalyst-run-manifest-v1";

/// The metrics exposition's "format" field (JSON form).
inline constexpr const char* kMetricsFormat = "catalyst-metrics-v1";

/// What a CATALYST_OBS=OFF daemon answers to a STATS scrape: still a valid
/// catalyst-metrics-v1 document (schema checkers and `catalyst_client top`
/// parse it like any other), but explicitly flagged so a scraper can tell
/// "no load" apart from "observability compiled out".
inline constexpr const char* kMetricsCompiledOutJson =
    "{\n  \"format\": \"catalyst-metrics-v1\",\n  \"compiled_out\": true,\n"
    "  \"counters\": {},\n  \"gauges\": {},\n  \"histograms\": []\n}\n";

/// JSON string escaping for the emitted subset (quotes, backslash, control
/// characters; non-ASCII bytes pass through untouched).
std::string json_escape(std::string_view s);

/// Hex fnv1a-64 of a configuration string (the manifest's config_hash).
std::string config_hash(const std::string& config);

/// Chrome trace_event JSON of a span snapshot (plus counters as otherData).
std::string to_chrome_trace(const std::vector<SpanRecord>& spans,
                            const MetricsSnapshot& metrics);

/// Run-manifest JSON (pretty-printed, 2-space indent).
std::string to_run_manifest(const RunManifest& manifest);

/// JSON metrics exposition ("catalyst-metrics-v1"): counters, gauges, and
/// histograms with their non-empty buckets as [index, count] pairs plus the
/// bucket geometry (num_buckets/bucket_bias), so a scraper on the far end
/// of a STATS frame can recompute percentiles without sharing this header.
std::string to_metrics_json(const MetricsSnapshot& metrics);

/// Prometheus text exposition (version 0.0.4): counters and gauges as
/// single samples, histograms as cumulative le-bucket series with _sum and
/// _count.  Names are mangled "a.b_c" -> "catalyst_a_b_c".
std::string to_prometheus_text(const MetricsSnapshot& metrics);

/// Chrome trace JSON of just the spans stamped with `trace_id` (a packed
/// "trace=<id>" arg) -- one request's end-to-end fragment.  Returns the
/// number of matching spans through `matched` when non-null.
std::string trace_fragment_json(const std::vector<SpanRecord>& spans,
                                std::uint64_t trace_id,
                                std::size_t* matched = nullptr);

/// Sums span wall time per name over spans named "stage.*", ordered by each
/// stage's first start time; the "stage." prefix is stripped.
std::vector<StageTiming> aggregate_stage_timings(
    const std::vector<SpanRecord>& spans);

/// Human-readable --stats block: stage timings, counters, histograms, span
/// accounting.
std::string format_stats(const MetricsSnapshot& metrics,
                         const std::vector<StageTiming>& stages,
                         std::uint64_t spans_published,
                         std::uint64_t spans_dropped);

}  // namespace catalyst::obs
