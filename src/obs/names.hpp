// catalyst/obs -- the single registry of metric/gauge/histogram names.
//
// Every obs::count() / obs::observe() / obs::gauge() call site must name
// its series through one of these constants (catalyst_lint enforces this
// with the metric-name-literal rule): scrapers, dashboards, and the
// exposition schema checker key on exact strings, so a typo'd inline
// literal would silently fork a series.  Names are lowercase dotted
// snake.case -- "<subsystem>.<what>[_<unit>]" -- and, once shipped in an
// exposition, are append-only (renaming breaks external scrape configs the
// same way renumbering a wire enum would break clients).
#pragma once

#include <string_view>

namespace catalyst::obs::names {

// -- pipeline stage funnel (counters) ---------------------------------------
inline constexpr std::string_view kPipelineEventsMeasured =
    "pipeline.events_measured";
inline constexpr std::string_view kPipelineEventsDetrended =
    "pipeline.events_detrended";
inline constexpr std::string_view kPipelineEventsNoiseKept =
    "pipeline.events_noise_kept";
inline constexpr std::string_view kPipelineEventsNoiseDropped =
    "pipeline.events_noise_dropped";
inline constexpr std::string_view kPipelineEventsProjected =
    "pipeline.events_projected";
inline constexpr std::string_view kPipelineEventsSelected =
    "pipeline.events_selected";
inline constexpr std::string_view kPipelineMetricsSolved =
    "pipeline.metrics_solved";

// -- collector resilience (counters) ----------------------------------------
inline constexpr std::string_view kCollectRetries = "collect.retries";
inline constexpr std::string_view kCollectStartRetries =
    "collect.start_retries";
inline constexpr std::string_view kCollectWrapsCorrected =
    "collect.wraps_corrected";
inline constexpr std::string_view kCollectQuarantined = "collect.quarantined";
/// Per-fault-kind counters are "collect.faults.<kind>"; the prefix is the
/// registered constant, the kind suffix comes from faults::to_string.
inline constexpr std::string_view kCollectFaultsPrefix = "collect.faults.";

// -- campaign batching (counters) -------------------------------------------
inline constexpr std::string_view kCampaignBatches = "campaign.batches";
inline constexpr std::string_view kCampaignBatchesResumed =
    "campaign.batches_resumed";

// -- qrcp diagnostics (histograms) ------------------------------------------
inline constexpr std::string_view kQrcpPivotScore = "qrcp.pivot_score";

// -- service: session/frame plumbing (counters) -----------------------------
inline constexpr std::string_view kServiceFramesReceived =
    "service.frames_received";
inline constexpr std::string_view kServiceErrorsSent = "service.errors_sent";
inline constexpr std::string_view kServiceMalformedFrames =
    "service.malformed_frames";
inline constexpr std::string_view kServiceSessionsExpired =
    "service.sessions_expired";
inline constexpr std::string_view kServiceSlowLorisDrops =
    "service.slow_loris_drops";
inline constexpr std::string_view kServiceIdleDrops = "service.idle_drops";
inline constexpr std::string_view kServiceStatsServed = "service.stats_served";
inline constexpr std::string_view kServiceTracesServed =
    "service.traces_served";

// -- service: request lifecycle (counters) ----------------------------------
inline constexpr std::string_view kServiceRequestsAccepted =
    "service.requests_accepted";
inline constexpr std::string_view kServiceRequestsCancelled =
    "service.requests_cancelled";
inline constexpr std::string_view kServiceQuotaRejections =
    "service.quota_rejections";
inline constexpr std::string_view kServiceLoadShed = "service.load_shed";
inline constexpr std::string_view kServiceAnalysesOk = "service.analyses_ok";
inline constexpr std::string_view kServiceAnalysesCancelled =
    "service.analyses_cancelled";
inline constexpr std::string_view kServiceAnalysesFailed =
    "service.analyses_failed";

// -- service: checkpointing (counters) --------------------------------------
inline constexpr std::string_view kServiceRequestsCheckpointed =
    "service.requests_checkpointed";
inline constexpr std::string_view kServiceRequestsRestored =
    "service.requests_restored";
inline constexpr std::string_view kServiceCheckpointWriteFailed =
    "service.checkpoint_write_failed";
inline constexpr std::string_view kServiceCheckpointRestoreFailed =
    "service.checkpoint_restore_failed";

// -- service: server loop (counters) ----------------------------------------
inline constexpr std::string_view kServiceSessionsAccepted =
    "service.sessions_accepted";
inline constexpr std::string_view kServiceSessionsClosed =
    "service.sessions_closed";
inline constexpr std::string_view kServiceSessionsTurnedAway =
    "service.sessions_turned_away";
inline constexpr std::string_view kServiceShutdowns = "service.shutdowns";

// -- service: latency (histograms) ------------------------------------------
inline constexpr std::string_view kServiceRequestNs = "service.request_ns";

// -- service: live pressure (gauges) ----------------------------------------
inline constexpr std::string_view kServiceQueueDepth = "service.queue_depth";
inline constexpr std::string_view kServiceInflightRequests =
    "service.inflight_requests";
inline constexpr std::string_view kServiceSessionsOpen =
    "service.sessions_open";
inline constexpr std::string_view kServiceWorkersBusy =
    "service.workers_busy";

}  // namespace catalyst::obs::names
