#include "obs/trace.hpp"

#include <algorithm>
#include <cstdlib>

namespace catalyst::obs {

TraceBuffer::TraceBuffer(std::size_t capacity)
    : capacity_(capacity == 0 ? 1 : capacity),
      slots_(new Slot[capacity == 0 ? 1 : capacity]) {}

void TraceBuffer::publish(const SpanRecord& rec) noexcept {
  const std::uint64_t ticket =
      cursor_.fetch_add(1, std::memory_order_relaxed);
  Slot& slot = slots_[ticket % capacity_];
  // Seqlock: odd marks the slot mid-write; readers who observe different
  // values before and after their copy discard it.
  slot.seq.store(2 * ticket + 1, std::memory_order_release);
  slot.rec = rec;
  slot.seq.store(2 * ticket + 2, std::memory_order_release);
}

std::vector<SpanRecord> TraceBuffer::snapshot() const {
  struct Numbered {
    std::uint64_t ticket;
    SpanRecord rec;
  };
  std::vector<Numbered> taken;
  taken.reserve(std::min<std::uint64_t>(published(), capacity_));
  for (std::size_t i = 0; i < capacity_; ++i) {
    const Slot& slot = slots_[i];
    const std::uint64_t before = slot.seq.load(std::memory_order_acquire);
    if (before == 0 || (before & 1) != 0) continue;  // empty or mid-write
    SpanRecord copy = slot.rec;
    const std::uint64_t after = slot.seq.load(std::memory_order_acquire);
    if (after != before) continue;  // overwritten while copying
    taken.push_back({before / 2 - 1, copy});
  }
  std::sort(taken.begin(), taken.end(),
            [](const Numbered& a, const Numbered& b) {
              return a.ticket < b.ticket;
            });
  std::vector<SpanRecord> out;
  out.reserve(taken.size());
  for (auto& n : taken) out.push_back(n.rec);
  return out;
}

std::uint64_t TraceBuffer::dropped() const noexcept {
  const std::uint64_t total = published();
  return total > capacity_ ? total - capacity_ : 0;
}

void TraceBuffer::clear() noexcept {
  for (std::size_t i = 0; i < capacity_; ++i) {
    slots_[i].seq.store(0, std::memory_order_relaxed);
  }
  cursor_.store(0, std::memory_order_release);
}

std::uint32_t this_thread_id() noexcept {
  static std::atomic<std::uint32_t> next{1};
  thread_local const std::uint32_t id =
      next.fetch_add(1, std::memory_order_relaxed);
  return id;
}

Tracer::Tracer() : clock_(&real_clock_), buffer_(TraceBuffer::kDefaultCapacity) {
  const char* env = std::getenv("CATALYST_TRACE");
  if (env != nullptr && env[0] != '\0' && env[0] != '0') {
    enabled_.store(true, std::memory_order_relaxed);
  }
}

Tracer& Tracer::instance() {
  static Tracer tracer;
  return tracer;
}

void Tracer::set_clock(faults::Clock* clock) noexcept {
  clock_.store(clock != nullptr ? clock : &real_clock_,
               std::memory_order_release);
}

std::int64_t Tracer::now_ns() {
  return clock_.load(std::memory_order_acquire)->now().count();
}

namespace detail {

void append_arg(char* args, std::size_t capacity, const char* key,
                const char* value) noexcept {
  const std::size_t used = std::strlen(args);
  if (used >= capacity) return;
  std::snprintf(args + used, capacity - used, "%s=%s;", key, value);
}

}  // namespace detail

}  // namespace catalyst::obs
