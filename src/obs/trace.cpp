#include "obs/trace.hpp"

#include <algorithm>
#include <cstdlib>

namespace catalyst::obs {

TraceBuffer::TraceBuffer(std::size_t capacity)
    : capacity_(capacity == 0 ? 1 : capacity),
      slots_(new Slot[capacity == 0 ? 1 : capacity]) {}

// The writer/reader halves of the seqlock protocol documented on the
// TraceBuffer class (invariants I1-I5 in trace.hpp).  The protocol fence
// below is what licenses ordering-bearing atomics here: catalyst-lint
// forbids acquire/release/seq_cst atomics outside src/sync unless they sit
// inside a documented begin-protocol/end-protocol region.
// catalyst-lint: begin-protocol(seqlock)
void TraceBuffer::publish(const SpanRecord& rec) noexcept {
  const std::uint64_t ticket =
      cursor_.fetch_add(1, std::memory_order_relaxed);
  Slot& slot = slots_[ticket % capacity_];
  // Seqlock writer (I2/I3): odd marks the slot mid-write; readers who
  // observe different values before and after their copy discard it.
  slot.seq.store(2 * ticket + 1, std::memory_order_release);
  slot.rec = rec;
  slot.seq.store(2 * ticket + 2, std::memory_order_release);
}

std::vector<SpanRecord> TraceBuffer::snapshot() const {
  struct Numbered {
    std::uint64_t ticket;
    SpanRecord rec;
  };
  std::vector<Numbered> taken;
  taken.reserve(std::min<std::uint64_t>(published(), capacity_));
  for (std::size_t i = 0; i < capacity_; ++i) {
    const Slot& slot = slots_[i];
    // Seqlock reader (I2/I3): acquire-load seq, raw-copy the record (safe
    // even if torn, I4), acquire-load seq again; any change means the copy
    // may be torn and is discarded.
    const std::uint64_t before = slot.seq.load(std::memory_order_acquire);
    if (before == 0 || (before & 1) != 0) continue;  // empty or mid-write
    SpanRecord copy = slot.rec;
    const std::uint64_t after = slot.seq.load(std::memory_order_acquire);
    if (after != before) continue;  // overwritten while copying
    taken.push_back({before / 2 - 1, copy});
  }
  std::sort(taken.begin(), taken.end(),
            [](const Numbered& a, const Numbered& b) {
              return a.ticket < b.ticket;
            });
  std::vector<SpanRecord> out;
  out.reserve(taken.size());
  for (auto& n : taken) out.push_back(n.rec);
  return out;
}

std::uint64_t TraceBuffer::dropped() const noexcept {
  const std::uint64_t total = published();
  return total > capacity_ ? total - capacity_ : 0;
}

void TraceBuffer::clear() noexcept {
  // Single-threaded by contract (I5): relaxed resets, one release on the
  // cursor so a later publisher starting fresh sees the zeroed slots.
  for (std::size_t i = 0; i < capacity_; ++i) {
    slots_[i].seq.store(0, std::memory_order_relaxed);
  }
  cursor_.store(0, std::memory_order_release);
}
// catalyst-lint: end-protocol(seqlock)

std::uint32_t this_thread_id() noexcept {
  static std::atomic<std::uint32_t> next{1};
  thread_local const std::uint32_t id =
      next.fetch_add(1, std::memory_order_relaxed);
  return id;
}

Tracer::Tracer() : clock_(&real_clock_), buffer_(TraceBuffer::kDefaultCapacity) {
  const char* env = std::getenv("CATALYST_TRACE");
  if (env != nullptr && env[0] != '\0' && env[0] != '0') {
    enabled_.store(true, std::memory_order_relaxed);
  }
}

Tracer& Tracer::instance() {
  static Tracer tracer;
  return tracer;
}

// Clock swap protocol: the clock pointer is published with release and
// consumed with acquire so a thread that observes the new clock also
// observes its fully-constructed state.  Swappers must keep the old clock
// alive until no publisher can still be timing against it (tests swap only
// while quiescent).
// catalyst-lint: begin-protocol(clock-swap)
void Tracer::set_clock(faults::Clock* clock) noexcept {
  clock_.store(clock != nullptr ? clock : &real_clock_,
               std::memory_order_release);
}

std::int64_t Tracer::now_ns() {
  return clock_.load(std::memory_order_acquire)->now().count();
}
// catalyst-lint: end-protocol(clock-swap)

namespace detail {

void append_arg(char* args, std::size_t capacity, const char* key,
                const char* value) noexcept {
  const std::size_t used = std::strlen(args);
  if (used >= capacity) return;
  std::snprintf(args + used, capacity - used, "%s=%s;", key, value);
}

}  // namespace detail

}  // namespace catalyst::obs
