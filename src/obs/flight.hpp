// catalyst/obs -- flight recorder: a fixed-size in-memory ring of recent
// request summaries, dumped as JSON on demand (catalystd wires it to
// SIGUSR1 and to the crash path) for post-hoc visibility into a daemon
// without a debugger attached.
//
// Ring invariants:
//   F1. Capacity is fixed at construction; record() never allocates ring
//       slots after that (the summary strings themselves may).
//   F2. Summary n (0-based, in record() order) lives in slot n % capacity;
//       once more than `capacity` summaries have been recorded, each new
//       one overwrites the oldest.
//   F3. snapshot() returns the surviving summaries oldest-first;
//       recorded() counts every summary ever recorded, so
//       recorded() - snapshot().size() is the number lost to wrap-around.
//   F4. All access is serialized on one mutex: record() runs once per
//       *request* (not per reading or per span), so this is not a hot
//       path and the registry-style locking keeps it trivially correct.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "sync/annotations.hpp"
#include "sync/mutex.hpp"

namespace catalyst::obs {

/// One completed (or aborted) service request, as remembered by the ring.
struct FlightRecord {
  std::uint64_t request_id = 0;
  std::uint64_t session_id = 0;
  std::uint64_t trace_id = 0;  ///< 0 = client sent no trace id.
  std::uint64_t bytes = 0;     ///< Submission payload size.
  std::string category;
  /// Terminal verdict: "ok", "cancelled", "deadline", "failed", ...
  std::string verdict;
  std::int64_t enqueued_ns = 0;
  std::int64_t started_ns = 0;
  std::int64_t finished_ns = 0;
  std::uint64_t faults = 0;   ///< Collector faults absorbed by the run.
  std::uint64_t retries = 0;  ///< Collector retries spent by the run.
};

/// The dump's "format" field.
inline constexpr const char* kFlightRecorderFormat =
    "catalyst-flight-recorder-v1";

class FlightRecorder {
 public:
  static constexpr std::size_t kDefaultCapacity = 256;

  static FlightRecorder& instance();

  explicit FlightRecorder(std::size_t capacity = kDefaultCapacity);

  void record(FlightRecord rec) CATALYST_EXCLUDES(mutex_);
  /// Surviving summaries, oldest first (F3).
  std::vector<FlightRecord> snapshot() const CATALYST_EXCLUDES(mutex_);
  /// Total summaries ever recorded (including overwritten ones).
  std::uint64_t recorded() const CATALYST_EXCLUDES(mutex_);
  std::size_t capacity() const noexcept { return capacity_; }
  /// Forgets everything (tests).
  void clear() CATALYST_EXCLUDES(mutex_);

 private:
  mutable sync::Mutex mutex_{"obs.flight"};
  std::size_t capacity_;
  std::uint64_t recorded_ CATALYST_GUARDED_BY(mutex_) = 0;
  std::vector<FlightRecord> ring_ CATALYST_GUARDED_BY(mutex_);
};

/// JSON dump of a flight-recorder snapshot ("catalyst-flight-recorder-v1").
std::string to_flight_json(const std::vector<FlightRecord>& records,
                           std::uint64_t recorded, std::size_t capacity);

}  // namespace catalyst::obs
