// catalyst/obs -- process-wide metrics registry: named monotonic counters,
// point-in-time gauges, and fixed-bucket (power-of-two) histograms.
//
// Instrumented code reports through the free functions obs::count() /
// obs::observe() / obs::gauge() (declared in obs/trace.hpp), which are
// no-ops unless tracing is enabled -- and compile out entirely under
// CATALYST_OBS=OFF.  Exporters and the CLI's --stats read an immutable
// MetricsSnapshot; live scrapers (the catalystd STATS frame) diff two
// snapshots with MetricsSnapshot::delta_since for rate computation.
//
// Updates take a mutex: every call site is a per-stage / per-retry event,
// not a per-reading hot path, so contention is negligible and the registry
// stays trivially correct at any thread count.
#pragma once

#include <array>
#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "sync/annotations.hpp"
#include "sync/mutex.hpp"

namespace catalyst::obs {

/// Power-of-two histogram geometry: bucket 0 holds v <= 0; bucket i >= 1
/// holds 2^(i-1-kBucketBias) < v <= 2^(i-kBucketBias).  With the bias below
/// the buckets span ~1e-6 .. ~4e12, covering RNMSE-scale ratios through
/// hour-scale nanosecond timings.
inline constexpr std::size_t kNumBuckets = 64;
inline constexpr int kBucketBias = 20;

/// Bucket index for a value (pure function; exposed for tests/exporters).
std::size_t histogram_bucket(double value) noexcept;
/// Inclusive upper bound of bucket i (+inf for the last, 0 for bucket 0).
double histogram_upper_bound(std::size_t i) noexcept;

struct HistogramSnapshot {
  std::string name;
  std::uint64_t total_count = 0;
  double sum = 0.0;
  double min = 0.0;
  double max = 0.0;
  std::array<std::uint64_t, kNumBuckets> buckets{};
};

struct MetricsSnapshot {
  /// Sorted by name (deterministic export order).
  std::vector<std::pair<std::string, std::uint64_t>> counters;
  /// Gauges are last-write point-in-time values (queue depth, inflight
  /// sessions); unlike counters they may go down, hence signed.
  std::vector<std::pair<std::string, std::int64_t>> gauges;
  std::vector<HistogramSnapshot> histograms;

  /// Counter value by name; 0 when absent.
  std::uint64_t counter(std::string_view name) const noexcept;
  /// Gauge value by name; 0 when absent.
  std::int64_t gauge(std::string_view name) const noexcept;
  const HistogramSnapshot* histogram(std::string_view name) const noexcept;

  /// Activity between `earlier` and this snapshot: counters and histogram
  /// counts/sums/buckets are subtracted (clamped at zero, so a registry
  /// reset between the two polls degrades to "current values" instead of
  /// wrapping); gauges are point-in-time and carried over unchanged, as
  /// are histogram min/max (extrema cannot be un-observed).  Series absent
  /// from `earlier` appear whole.
  MetricsSnapshot delta_since(const MetricsSnapshot& earlier) const;
};

/// The process-wide registry behind obs::count()/obs::observe().
class Metrics {
 public:
  static Metrics& instance();

  void add(std::string_view counter, std::uint64_t delta)
      CATALYST_EXCLUDES(mutex_);
  void observe(std::string_view histogram, double value)
      CATALYST_EXCLUDES(mutex_);
  /// Sets a gauge to an absolute value (last write wins).
  void set_gauge(std::string_view gauge, std::int64_t value)
      CATALYST_EXCLUDES(mutex_);

  MetricsSnapshot snapshot() const CATALYST_EXCLUDES(mutex_);
  void reset() CATALYST_EXCLUDES(mutex_);

 private:
  struct Histogram {
    std::uint64_t total_count = 0;
    double sum = 0.0;
    double min = 0.0;
    double max = 0.0;
    std::array<std::uint64_t, kNumBuckets> buckets{};
  };

  /// Upserts the named histogram (locked-context helper for observe()).
  Histogram& histogram_locked(std::string_view name)
      CATALYST_REQUIRES(mutex_);

  mutable sync::Mutex mutex_{"obs.metrics"};
  std::map<std::string, std::uint64_t, std::less<>> counters_
      CATALYST_GUARDED_BY(mutex_);
  std::map<std::string, std::int64_t, std::less<>> gauges_
      CATALYST_GUARDED_BY(mutex_);
  std::map<std::string, Histogram, std::less<>> histograms_
      CATALYST_GUARDED_BY(mutex_);
};

}  // namespace catalyst::obs
