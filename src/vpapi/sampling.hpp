// catalyst/vpapi -- time-sliced sampling and strobed collection.
//
// Grouped counting reads every counter at every kernel boundary
// (start/read/reset per slot) -- the per-phase ground truth, but a luxury
// real campaigns rarely have.  Production samplers instead snapshot the
// running counters on a timer and attribute the deltas to program phases
// afterwards; gator's counter-strobing prototype refines this with an
// alternating long/short period pair (perf's period/alt-period), buying
// occasional fine-grained boundary resolution without the overhead of a
// uniformly short period.
//
// This module reproduces that collection style against the simulated PMU:
//
//   * Each (repetition, scheduled run) unit plays the kernel sequence on a
//     VIRTUAL timeline -- kernel k occupies
//     [k, k+1) x kernel_span_ns -- and records integer-quantized cumulative
//     counter snapshots at the schedule's sample times.  Virtual time is
//     arithmetic, not wall time: sample values and timestamps are pure
//     functions of (machine seed, event, run id, schedule), so traces are
//     byte-identical across worker-thread counts.  Wall-clock pacing, when
//     wanted, goes through an injectable faults::Clock (never a raw
//     std::chrono clock -- catalyst-lint: clock-in-sampling).
//
//   * The sample schedule is DITHERED per run: a deterministic per-run
//     phase offset (keyed like noise) shifts every sample time, so phase-
//     attribution error varies across repetitions and surfaces in the
//     pipeline's repetition-based RNMSE filter instead of hiding as a
//     systematic bias -- the same fix the multiplexer's phase rotation
//     applies to slice apportioning.
//
//   * Per-phase synthesis reconstructs per-kernel measurements from a
//     trace alone: the cumulative count at each nominal kernel boundary is
//     linearly interpolated between the bracketing samples, and phase k's
//     value is the difference of consecutive boundary estimates.  With
//     periods well under the kernel span the reconstruction converges to
//     the counting-mode readings; as the period grows past the span,
//     boundary smearing degrades the values -- the trade-off the
//     collection-modes oracle sweep (bench/ablation_collection_modes)
//     quantifies against planted ground truth.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "faults/faults.hpp"
#include "pmu/machine.hpp"
#include "vpapi/collector.hpp"

namespace catalyst::vpapi {

/// How a campaign turns kernel executions into measurements.
enum class CollectionMode : std::uint8_t {
  counting = 0,  ///< Read counters at every kernel boundary (the default).
  sampling = 1,  ///< Periodic snapshots at a uniform virtual-time period.
  strobed = 2,   ///< Alternating long/short periods (gator's prototype).
};

const char* to_string(CollectionMode mode) noexcept;
/// Parses "counting" / "sampling" / "strobed"; throws std::invalid_argument.
CollectionMode collection_mode_from_string(const std::string& name);

/// The virtual-time sample schedule.  All spans are nanoseconds of virtual
/// time; the defaults put four uniform samples in every kernel span.
struct SampleSchedule {
  std::uint64_t kernel_span_ns = 1'000'000;  ///< Virtual duration per kernel.
  std::uint64_t period_ns = 250'000;   ///< Sampling period / strobed long.
  std::uint64_t short_period_ns = 50'000;  ///< Strobed alternating short.
  /// Shift each run's sample times by a deterministic per-run offset in
  /// [0, period_ns).  On: attribution error decorrelates across
  /// repetitions (the RNMSE filter sees it).  Off: every run samples at
  /// identical times -- useful for pinning exact traces in tests.
  bool dither = true;

  /// Structural validation (positive spans, short <= long); throws
  /// std::invalid_argument.
  void validate() const;
};

/// One snapshot: virtual timestamp and the cumulative (since run start)
/// quantized readings of the run's events, in run-event order.
struct SamplePoint {
  std::uint64_t t_ns = 0;
  std::vector<double> values;
};

/// The sample trace of one (repetition, scheduled run) unit.
struct RunTrace {
  std::uint64_t repetition = 0;  ///< Repetition the unit belongs to.
  std::uint64_t run_id = 0;      ///< Noise coordinate of the run.
  std::vector<std::string> events;  ///< This run's events, slot order.
  std::vector<SamplePoint> samples;  ///< Time order; last is the run total.
};

/// A whole sweep's trace: every unit's samples plus the schedule that
/// produced them, ordered by (repetition, run) regardless of worker-thread
/// interleaving.
struct SampleTrace {
  CollectionMode mode = CollectionMode::counting;
  SampleSchedule schedule;
  std::size_t kernels = 0;  ///< Kernel slots per run.
  std::vector<RunTrace> runs;
};

/// Sample times for one run of `total_ns` virtual nanoseconds: strictly
/// increasing, all in (0, total_ns], and always ending with total_ns (the
/// closing snapshot doubles as the run's aggregate totals).  `offset_ns`
/// is the dither phase.  Exposed for the determinism tests.
std::vector<std::uint64_t> sample_times(const SampleSchedule& schedule,
                                        CollectionMode mode,
                                        std::uint64_t offset_ns,
                                        std::uint64_t total_ns);

/// The deterministic dither offset of run `run_id` (0 when
/// schedule.dither is off): a uniform draw keyed on (machine seed, mode,
/// run id), scaled to [0, period_ns).
std::uint64_t dither_offset(const pmu::Machine& machine,
                            const SampleSchedule& schedule,
                            CollectionMode mode, std::uint64_t run_id);

/// Per-phase synthesis for one run: measurements[e][k] reconstructed from
/// the trace's cumulative samples by boundary interpolation (see file
/// header).  `kernels` must match the trace's kernel count.  Throws
/// std::invalid_argument on an empty or inconsistent trace.
std::vector<std::vector<double>> reconstruct_run_phases(
    const RunTrace& run, std::uint64_t kernel_span_ns, std::size_t kernels);

/// collect() rebuilt on snapshots: same event-set schedule, same run-id
/// noise coordinates, but per-kernel values come from the per-phase
/// synthesis of each unit's sample trace instead of boundary reads.
struct SampledCollectionResult {
  CollectionResult data;  ///< Reconstructed measurements, collect() layout.
  SampleTrace trace;
};

/// Measures `event_names` over `activities` x `repetitions` in the given
/// mode.  counting delegates to collect() (empty trace).  `clock` paces
/// virtual time for real campaigns (one sleep per kernel span); nullptr
/// skips pacing -- values never depend on the clock.  `repetition_offset`
/// shifts run ids exactly like collect_resilient's, so checkpointed
/// sampling campaigns resume bit-identically.
SampledCollectionResult collect_sampled(
    const pmu::Machine& machine, const std::vector<std::string>& event_names,
    const std::vector<pmu::Activity>& activities, std::size_t repetitions,
    CollectionMode mode, const SampleSchedule& schedule = {}, int threads = 1,
    faults::Clock* clock = nullptr, std::size_t repetition_offset = 0);

}  // namespace catalyst::vpapi
