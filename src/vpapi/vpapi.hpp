// catalyst/vpapi -- a PAPI-flavoured access layer over the simulated PMU.
//
// The paper collects event data "the PAPI way": create an event set, add up
// to `physical_counters` events, start, run the benchmark, stop, read.
// Because there are orders of magnitude more events than counters, the full
// event list must be multiplexed over many repeated benchmark runs -- the
// exact constraint that makes the paper's automated analysis necessary.
//
// Like PAPI, the session also supports *derived events* (presets): named
// linear combinations of raw events (PAPI_DP_OPS-style).  Adding a preset
// to an event set allocates one physical counter per distinct constituent
// raw event; raw events already counted in the set are shared rather than
// double-allocated, exactly as PAPI schedules preset constituents.
//
// The API mirrors PAPI's shape (integer event sets, status codes, explicit
// start/stop) without copying its C interface verbatim; it is a C++ layer
// with RAII ownership of event sets inside a Session.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "faults/faults.hpp"
#include "pmu/pmu.hpp"

namespace catalyst::vpapi {

/// PAPI-style status codes.
enum class Status {
  ok = 0,
  no_such_event,    ///< Name is neither a raw event nor a registered preset.
  conflict,         ///< Not enough physical counters left in the set.
  already_added,    ///< Event already in the set.
  is_running,       ///< Operation illegal while the set is running.
  not_running,      ///< stop/read require a started set.
  no_such_eventset, ///< Bad event-set handle.
  invalid_preset,   ///< Preset references unknown raw events / bad shape.
  transient,        ///< Transient failure (EBUSY/ECNFLCT-style); retryable.
};

/// Human-readable form of a status code.
std::string to_string(Status s);

/// One term of a derived event: coefficient x raw event.
struct DerivedTerm {
  std::string event_name;
  double coefficient = 0.0;
};

/// A derived event (preset): a named linear combination of raw events.
struct DerivedEvent {
  std::string name;
  std::string description;
  std::vector<DerivedTerm> terms;
};

/// A measurement session against one simulated machine.
///
/// Lifecycle per event set:
///   create_eventset -> add_event* -> start -> run_kernel* -> stop -> read
/// `run_kernel` stands in for "the instrumented code executed"; it accrues
/// counts for every counter of each *running* set, applying the machine's
/// per-event noise for the given (repetition, kernel) coordinates.
class Session {
 public:
  explicit Session(const pmu::Machine& machine);

  const pmu::Machine& machine() const noexcept { return *machine_; }

  // --- Event queries -------------------------------------------------------
  /// True for raw events and registered presets alike.
  bool query_event(const std::string& name) const;
  /// Raw events of the machine (presets are listed separately).
  std::vector<std::string> enumerate_events() const;
  /// Registered preset names.
  std::vector<std::string> enumerate_presets() const;
  /// Description of a raw event or preset; empty if unknown.
  std::string event_description(const std::string& name) const;

  // --- Presets ----------------------------------------------------------------
  /// Registers a derived event.  Fails with invalid_preset when the preset
  /// has no terms or references unknown raw events, with already_added when
  /// the name is taken (by a raw event or another preset).
  Status register_preset(const DerivedEvent& preset);

  // --- Event sets -----------------------------------------------------------
  /// Creates an empty event set and returns its handle.
  int create_eventset();

  /// Enables PAPI-style time-division multiplexing on a (non-running,
  /// still raw-counter-feasible) event set: more counters than the machine
  /// physically has may then be allocated; each run_kernel time-slice
  /// counts only `physical_counters` of them (round-robin) and the reading
  /// is scaled by the inverse duty cycle.  Readings become ESTIMATES whose
  /// error shrinks with the number of kernels run -- the multiplexing noise
  /// that motivates collecting each event group in its own run when
  /// accuracy matters (as the CAT collector does).
  Status enable_multiplexing(int set);

  /// True if multiplexing was enabled on the set.
  bool is_multiplexed(int set) const;

  /// Rotates the multiplex schedule so the set behaves as if `start_slice`
  /// time-slices had already elapsed: the round-robin window of the next
  /// run_kernel starts where slice `start_slice` of a continuous schedule
  /// would.  Fixes the naive multiplexer's residual apportioning bias: with
  /// the cursor pinned at 0 every repetition, the FIRST groups in rotation
  /// order collect ceil(slices/groups) slices and the last only
  /// floor(slices/groups) -- every repetition, for the same events --
  /// whenever the per-repetition slice count is not a multiple of the group
  /// count.  Callers that re-create the set per repetition (see
  /// collect_multiplexed) pass a per-repetition phase so the favoured group
  /// rotates and the extra slices spread evenly across events.
  /// Fails with is_running on a started set; a no-op for sets that are not
  /// oversubscribed.
  Status set_multiplex_phase(int set, std::uint64_t start_slice);

  /// Time-slices each added event's counter was live, in list_events order
  /// (presets report the minimum over their constituent raw events).  The
  /// apportioning regression tests read this to prove the slice shares are
  /// fair; zero for sets never run.
  std::vector<std::uint64_t> slice_counts(int set) const;

  /// Destroys a (non-running) event set.
  Status destroy_eventset(int set);

  /// Adds a raw event or preset.  Presets allocate counters for their
  /// constituent raw events, sharing counters with constituents already in
  /// the set.
  Status add_event(int set, const std::string& name);
  Status remove_event(int set, const std::string& name);

  /// Names currently in the set, in add order (presets by preset name).
  std::vector<std::string> list_events(int set) const;

  /// Physical counters currently allocated in the set.
  std::size_t counters_in_use(int set) const;

  Status start(int set);
  Status stop(int set);
  Status reset(int set);

  /// Accrues counts on all running sets for one kernel execution.
  ///
  /// When `ideals` is given and holds a row for a counted event (with
  /// `kernel_index` inside its kernel range), the event's repetition-
  /// invariant ideal value is taken from the table instead of being
  /// re-evaluated from `activity`; the reading is bit-identical either way
  /// (see pmu::measure_from_ideal).  Collection sweeps that revisit the same
  /// kernel sequence across repetitions build the table once and pass it
  /// here.
  void run_kernel(const pmu::Activity& activity, std::uint64_t repetition,
                  std::uint64_t kernel_index,
                  const pmu::IdealTable* ideals = nullptr);

  /// Reads accumulated values, one per added event in list_events order;
  /// preset entries return their linear combination.  Returns
  /// Status::transient when a dropped/stuck-counter fault hit any slot of
  /// the set since the last reset -- the typed error a resilient caller
  /// retries (see collect_resilient).
  Status read(int set, std::vector<double>& values) const;

  // --- Fault injection (see faults/faults.hpp) -----------------------------
  /// Arms (or, with nullptr, disarms) fault injection for this session.
  /// The plan must outlive the session.  With no plan armed every path
  /// below is bit-identical to a fault-free session.
  void set_fault_context(const faults::FaultPlan* plan);

  /// Sets the (run, attempt) coordinates folded into every fault decision.
  /// The resilient driver bumps `attempt` before each retry so transient
  /// faults get an independent draw while the underlying NOISE stream --
  /// keyed on (event, run, kernel) only -- reproduces the identical
  /// reading on success.
  void set_fault_coordinates(std::uint64_t run, std::uint64_t attempt);

  const faults::FaultPlan* fault_plan() const noexcept { return fault_plan_; }

  /// Every fault injected since the last clear_fault_log(), in injection
  /// order.  The resilient driver drains this to attribute retries and
  /// build its CollectionReport.
  const std::vector<faults::FaultRecord>& fault_log() const noexcept {
    return fault_log_;
  }
  void clear_fault_log() { fault_log_.clear(); }

 private:
  struct Slot {
    std::size_t machine_index = 0;  ///< Raw event backing this counter.
    double count = 0.0;
    int refs = 0;                   ///< Items referencing this slot.
    std::uint64_t slices = 0;       ///< Time-slices this slot was counting.
  };
  struct Part {
    std::size_t machine_index = 0;
    double coefficient = 1.0;
  };
  struct Item {
    std::string name;
    std::vector<Part> parts;  ///< Raw item: single part with coefficient 1.
  };
  struct EventSet {
    std::vector<Slot> slots;
    std::vector<Item> items;
    /// machine index -> index into `slots` (-1 = no slot), sized to the
    /// machine's event count on first add_event; makes find_slot O(1)
    /// instead of a scan over the allocated slots (hot in read() for
    /// multiplexed sets, where every event of the machine owns a slot).
    std::vector<std::int32_t> slot_of;
    bool running = false;
    bool ever_started = false;
    bool destroyed = false;
    bool multiplexed = false;
    /// A dropped/stuck-counter fault hit a slot since the last reset; read()
    /// reports Status::transient until the set is reset.
    bool transient_read = false;
    std::size_t mux_cursor = 0;      ///< Round-robin slice position.
    std::uint64_t slices_total = 0;  ///< run_kernel calls while running.
  };

  EventSet* get(int set);
  const EventSet* get(int set) const;
  const DerivedEvent* find_preset(const std::string& name) const;
  static Slot* find_slot(EventSet& es, std::size_t machine_index);
  static const Slot* find_slot(const EventSet& es, std::size_t machine_index);

  /// Applies reading faults (drop/stuck/wrap/spike) to one slot measurement;
  /// returns the possibly-corrupted reading and marks the set's transient
  /// flag for drop/stuck.  Only called when a plan is armed.
  double apply_reading_faults(EventSet& es, const Slot& slot, double reading,
                              std::uint64_t kernel_index);

  const pmu::Machine* machine_;
  std::vector<EventSet> sets_;
  std::vector<DerivedEvent> presets_;

  // Fault-injection state (inert unless set_fault_context armed a plan).
  const faults::FaultPlan* fault_plan_ = nullptr;
  /// Per machine-event-index rates, resolved once from the plan (including
  /// per-event overrides) so the read hot path never does a name lookup.
  std::vector<faults::FaultRates> fault_rates_;
  std::uint64_t fault_run_ = 0;
  std::uint64_t fault_attempt_ = 0;
  std::vector<faults::FaultRecord> fault_log_;
};

}  // namespace catalyst::vpapi
