// catalyst/vpapi -- multiplexed whole-machine data collection.
//
// There are hundreds to thousands of raw events and only a handful of
// physical counters, so measuring "every event over every kernel" requires
// scheduling events into counter-sized groups and re-running the benchmark
// once per group.  This is exactly how CAT gathers its data, and the
// grouping is why run-to-run noise shows up *between* events measured in
// different runs -- the effect the paper's repetition-based RNMSE filter
// targets.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "vpapi/vpapi.hpp"

namespace catalyst::vpapi {

/// One benchmark repetition's worth of measurements.
/// values[e][k] = reading of event e on kernel slot k.
struct RepetitionData {
  std::vector<std::vector<double>> values;
};

/// Full collection result across repetitions.
struct CollectionResult {
  std::vector<std::string> event_names;      ///< Row labels of `repetitions`.
  std::vector<RepetitionData> repetitions;   ///< One per benchmark repetition.
  std::size_t runs_per_repetition = 0;       ///< Benchmark re-runs needed.
};

/// Splits `event_names` into groups no larger than the machine's physical
/// counter budget (simple greedy first-fit, preserving order).
std::vector<std::vector<std::string>> schedule_groups(
    const pmu::Machine& machine, const std::vector<std::string>& event_names);

/// Measures every named event over the kernel sequence `activities`,
/// `repetitions` times, multiplexing event groups across re-runs of the
/// whole sequence.  Each (repetition, group) pair is a distinct run and so
/// sees distinct noise; kernel slots within a run share the run.
///
/// `threads` > 1 simulates the independent (repetition, group) runs
/// concurrently on that many OS threads.  Because every reading's noise is
/// a pure function of its (event, repetition-run, kernel) coordinates, the
/// result is bit-identical to the serial collection regardless of thread
/// count or scheduling.  The (event, kernel) ideal-value table is computed
/// once up front and shared read-only by all units.
///
/// Throws std::invalid_argument on unknown event names.  Exceptions raised
/// inside worker threads are captured and rethrown on the calling thread
/// (the first one wins; remaining units are abandoned).
CollectionResult collect(const pmu::Machine& machine,
                         const std::vector<std::string>& event_names,
                         const std::vector<pmu::Activity>& activities,
                         std::size_t repetitions, int threads = 1);

/// Convenience: collect() over all events of the machine.
CollectionResult collect_all(const pmu::Machine& machine,
                             const std::vector<pmu::Activity>& activities,
                             std::size_t repetitions, int threads = 1);

/// The alternative CAT deliberately avoids: ONE time-division-multiplexed
/// event set holding every event, one benchmark run per repetition.  Far
/// fewer runs (1 instead of ceil(events/counters)), but each reading is a
/// duty-cycle extrapolation from the slices its counter happened to be
/// live -- an estimation error that scales with how bursty the kernel
/// sequence is.  Provided so the methodology benches can quantify the
/// trade-off against grouped collection.
///
/// Per-kernel readings are obtained by reading the running set after every
/// kernel and differencing consecutive totals.
CollectionResult collect_multiplexed(
    const pmu::Machine& machine, const std::vector<std::string>& event_names,
    const std::vector<pmu::Activity>& activities, std::size_t repetitions);

}  // namespace catalyst::vpapi
