// catalyst/vpapi -- multiplexed whole-machine data collection.
//
// There are hundreds to thousands of raw events and only a handful of
// physical counters, so measuring "every event over every kernel" requires
// scheduling events into counter-sized groups and re-running the benchmark
// once per group.  This is exactly how CAT gathers its data, and the
// grouping is why run-to-run noise shows up *between* events measured in
// different runs -- the effect the paper's repetition-based RNMSE filter
// targets.
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "vpapi/vpapi.hpp"

namespace catalyst::vpapi {

/// One benchmark repetition's worth of measurements.
/// values[e][k] = reading of event e on kernel slot k.
struct RepetitionData {
  std::vector<std::vector<double>> values;
};

/// Full collection result across repetitions.
struct CollectionResult {
  std::vector<std::string> event_names;      ///< Row labels of `repetitions`.
  std::vector<RepetitionData> repetitions;   ///< One per benchmark repetition.
  std::size_t runs_per_repetition = 0;       ///< Benchmark re-runs needed.
};

/// Splits `event_names` into groups no larger than the machine's physical
/// counter budget (simple greedy chunking, preserving order).  Kept as the
/// constraint-blind reference scheduler; the collectors below use the
/// slot-mask-aware bin packer in vpapi/scheduler.hpp, which produces these
/// exact groups whenever no event carries a slot constraint.
std::vector<std::vector<std::string>> schedule_groups(
    const pmu::Machine& machine, const std::vector<std::string>& event_names);

/// Measures every named event over the kernel sequence `activities`,
/// `repetitions` times, multiplexing event groups across re-runs of the
/// whole sequence.  Each (repetition, group) pair is a distinct run and so
/// sees distinct noise; kernel slots within a run share the run.
///
/// `threads` > 1 simulates the independent (repetition, group) runs
/// concurrently on that many OS threads.  Because every reading's noise is
/// a pure function of its (event, repetition-run, kernel) coordinates, the
/// result is bit-identical to the serial collection regardless of thread
/// count or scheduling.  The (event, kernel) ideal-value table is computed
/// once up front and shared read-only by all units.
///
/// `plan` (optional) arms fault injection on every session.  This NON-
/// resilient driver treats any injected failure as fatal: a transient
/// add_event/start or an untrustworthy read throws instead of silently
/// recording corrupt data.  Use collect_resilient to survive faults.
///
/// Throws std::invalid_argument on unknown event names.  Exceptions raised
/// inside worker threads are captured and rethrown on the calling thread
/// (the first one wins, remaining units are abandoned, and all partially
/// collected output is discarded before the rethrow -- no torn rows).
CollectionResult collect(const pmu::Machine& machine,
                         const std::vector<std::string>& event_names,
                         const std::vector<pmu::Activity>& activities,
                         std::size_t repetitions, int threads = 1,
                         const faults::FaultPlan* plan = nullptr);

/// Convenience: collect() over all events of the machine.
CollectionResult collect_all(const pmu::Machine& machine,
                             const std::vector<pmu::Activity>& activities,
                             std::size_t repetitions, int threads = 1);

/// The alternative CAT deliberately avoids: ONE time-division-multiplexed
/// event set holding every event, one benchmark run per repetition.  Far
/// fewer runs (1 instead of ceil(events/counters)), but each reading is a
/// duty-cycle extrapolation from the slices its counter happened to be
/// live -- an estimation error that scales with how bursty the kernel
/// sequence is.  Provided so the methodology benches can quantify the
/// trade-off against grouped collection.
///
/// Per-kernel readings are obtained by reading the running set after every
/// kernel and differencing consecutive totals.
CollectionResult collect_multiplexed(
    const pmu::Machine& machine, const std::vector<std::string>& event_names,
    const std::vector<pmu::Activity>& activities, std::size_t repetitions);

// --- resilient collection ---------------------------------------------------
//
// Real HPM campaigns fail in stereotyped ways (see faults/faults.hpp); the
// resilient driver survives them: transient failures are retried with capped
// exponential backoff, wrapped counters are corrected by width-aware delta
// decoding, kernels whose readings fail a plausibility screen are re-run,
// and an event that still fails after `max_retries` is QUARANTINED --
// recorded in the CollectionReport and excluded from the returned data --
// instead of aborting the whole campaign.

/// How an event came out of a resilient campaign.
enum class EventDisposition {
  clean = 0,   ///< No fault ever touched the event.
  recovered,   ///< Faults were injected but retry/correction absorbed them.
  quarantined, ///< Exhausted max_retries somewhere; excluded from the data.
};
std::string to_string(EventDisposition d);

/// Per-event tally of what the resilient driver saw and did.
struct EventReport {
  std::string name;
  std::uint64_t read_attempts = 0;  ///< Kernel read attempts that included it.
  std::uint64_t retries = 0;        ///< Attempts beyond the first, any cause.
  /// Injected faults attributed to this event, indexed by FaultKind.
  std::array<std::uint64_t, faults::kNumFaultKinds> faults{};
  std::uint64_t wraps_corrected = 0;  ///< Counter spans added back in place.
  EventDisposition disposition = EventDisposition::clean;

  std::uint64_t total_faults() const noexcept;
};

/// Structured outcome of a resilient campaign: one entry per requested
/// event (input order), plus campaign-level totals.
struct CollectionReport {
  std::vector<EventReport> events;
  std::uint64_t total_retries = 0;   ///< All retries, incl. add/start/read.
  std::uint64_t start_retries = 0;   ///< Set-level start_busy retries.
  std::vector<std::string> quarantined;  ///< Names, input order.

  const EventReport* find(const std::string& name) const;
  /// "172 events: 170 clean, 1 recovered, 1 quarantined; 12 retries".
  std::string summary() const;
};

/// Tuning of the retry/quarantine machinery.
struct ResilienceOptions {
  /// Extra attempts after the first, per add_event call and per kernel
  /// reading, before the offending event is quarantined.
  std::size_t max_retries = 8;
  faults::Backoff backoff;
  /// Retry pacing.  nullptr = no pacing (tests and simulated collection);
  /// the CLI installs a RealClock for real campaigns.  Never sleep via
  /// std::this_thread directly (catalyst-lint: sleep-in-retry).
  faults::Clock* clock = nullptr;
  int threads = 1;  ///< Worker threads over (repetition, group) units.
};

/// collect() + the recovery machinery above.
struct ResilientCollectionResult {
  /// Same layout as collect()'s result, minus quarantined events' rows.
  CollectionResult data;
  CollectionReport report;
};

/// Resilient counterpart of collect().  With `plan` null or disabled the
/// returned data is bit-identical to collect(machine, event_names,
/// activities, repetitions) -- the recovery machinery only reacts to
/// injected faults, and readings are pure functions of their coordinates.
///
/// `repetition_offset` shifts the absolute repetition indices: batch b of a
/// checkpointed campaign passes its global first-repetition index so that
/// run ids -- and therefore noise and fault draws -- are bit-identical to
/// an uninterrupted campaign (see core/io.hpp checkpointing).
ResilientCollectionResult collect_resilient(
    const pmu::Machine& machine, const std::vector<std::string>& event_names,
    const std::vector<pmu::Activity>& activities, std::size_t repetitions,
    const faults::FaultPlan* plan = nullptr,
    const ResilienceOptions& options = {},
    std::size_t repetition_offset = 0);

}  // namespace catalyst::vpapi
