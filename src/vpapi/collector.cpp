#include "vpapi/collector.hpp"

#include "core/contract.hpp"

#include <atomic>
#include <mutex>
#include <stdexcept>
#include <thread>

namespace catalyst::vpapi {

std::vector<std::vector<std::string>> schedule_groups(
    const pmu::Machine& machine, const std::vector<std::string>& event_names) {
  const std::size_t budget = machine.physical_counters();
  std::vector<std::vector<std::string>> groups;
  for (const auto& name : event_names) {
    if (groups.empty() || groups.back().size() >= budget) {
      groups.emplace_back();
    }
    groups.back().push_back(name);
  }
  return groups;
}

namespace {

// Runs one (repetition, group) unit: a fresh session measuring the group's
// events over the full kernel sequence, writing results into the
// caller-owned slices of `data` starting at `event_offset`.  `ideals` is the
// sweep-wide (event, kernel) ideal-value table; it is immutable and shared
// by every unit (and worker thread) of the collection.
void run_unit(const pmu::Machine& machine,
              const std::vector<std::string>& group,
              const std::vector<pmu::Activity>& activities,
              const pmu::IdealTable& ideals, std::uint64_t run_id,
              std::size_t event_offset, RepetitionData& data) {
  Session session(machine);
  const int set = session.create_eventset();
  for (const auto& name : group) {
    const Status s = session.add_event(set, name);
    if (s != Status::ok) {
      throw std::runtime_error("collect: add_event failed: " + to_string(s));
    }
  }
  // Read counters per kernel slot: start/run/stop/read/reset around each
  // kernel, the way CAT instruments its microkernels.
  std::vector<std::vector<double>> per_kernel(group.size());
  for (auto& v : per_kernel) v.reserve(activities.size());
  std::vector<double> vals;
  for (std::size_t k = 0; k < activities.size(); ++k) {
    session.start(set);
    session.run_kernel(activities[k], run_id, k, &ideals);
    session.stop(set);
    session.read(set, vals);
    session.reset(set);
    for (std::size_t e = 0; e < vals.size(); ++e) {
      per_kernel[e].push_back(vals[e]);
    }
  }
  for (std::size_t e = 0; e < group.size(); ++e) {
    data.values[event_offset + e] = std::move(per_kernel[e]);
  }
}

// Resolves event names to machine indices, throwing on unknown names.
std::vector<std::size_t> resolve_events(
    const pmu::Machine& machine, const std::vector<std::string>& event_names,
    const char* caller) {
  std::vector<std::size_t> indices;
  indices.reserve(event_names.size());
  for (const auto& name : event_names) {
    const auto idx = machine.find(name);
    if (!idx) {
      throw std::invalid_argument(std::string(caller) + ": unknown event " +
                                  name);
    }
    indices.push_back(*idx);
  }
  return indices;
}

}  // namespace

CollectionResult collect(const pmu::Machine& machine,
                         const std::vector<std::string>& event_names,
                         const std::vector<pmu::Activity>& activities,
                         std::size_t repetitions, int threads) {
  CATALYST_REQUIRE_AS(repetitions != 0, std::invalid_argument,
                      "collect: need at least one repetition");
  CATALYST_REQUIRE_AS(threads >= 1, std::invalid_argument,
                      "collect: need at least one thread");
  const std::vector<std::size_t> event_indices =
      resolve_events(machine, event_names, "collect");
  CollectionResult result;
  result.event_names = event_names;
  const auto groups = schedule_groups(machine, event_names);
  result.runs_per_repetition = groups.size();

  // An event's ideal reading over a kernel is repetition-invariant, so the
  // (event, kernel) table is evaluated once and shared by all
  // repetitions x groups units below instead of being recomputed inside
  // every time slice.  The table is immutable from here on, so worker
  // threads read it without synchronization.
  const pmu::IdealTable ideals(machine, activities, event_indices);

  // Flatten event offsets per group.
  std::vector<std::size_t> group_offset(groups.size(), 0);
  for (std::size_t g = 1; g < groups.size(); ++g) {
    group_offset[g] = group_offset[g - 1] + groups[g - 1].size();
  }

  result.repetitions.resize(repetitions);
  for (auto& rep : result.repetitions) {
    rep.values.resize(event_names.size());
  }

  // Work list: all (repetition, group) units; each writes a disjoint slice
  // of the result, so workers need no synchronization beyond the cursor.
  const std::size_t total_units = repetitions * groups.size();
  auto do_unit = [&](std::size_t unit) {
    const std::size_t rep = unit / groups.size();
    const std::size_t g = unit % groups.size();
    const std::uint64_t run_id = rep * groups.size() + g;
    run_unit(machine, groups[g], activities, ideals, run_id, group_offset[g],
             result.repetitions[rep]);
  };

  if (threads == 1 || total_units < 2) {
    for (std::size_t unit = 0; unit < total_units; ++unit) do_unit(unit);
    return result;
  }

  // A throw from a worker must reach the caller, not std::terminate: the
  // first exception is captured, the remaining units are abandoned, and the
  // exception is rethrown after the join.
  std::atomic<std::size_t> cursor{0};
  std::atomic<bool> failed{false};
  std::exception_ptr first_error;
  std::mutex error_mutex;
  std::vector<std::thread> pool;
  const int nt = std::min<int>(threads, static_cast<int>(total_units));
  pool.reserve(static_cast<std::size_t>(nt));
  for (int t = 0; t < nt; ++t) {
    pool.emplace_back([&] {
      for (;;) {
        const std::size_t unit = cursor.fetch_add(1);
        if (unit >= total_units ||
            failed.load(std::memory_order_relaxed)) {
          break;
        }
        try {
          do_unit(unit);
        } catch (...) {
          const std::lock_guard<std::mutex> lock(error_mutex);
          if (!first_error) first_error = std::current_exception();
          failed.store(true, std::memory_order_relaxed);
        }
      }
    });
  }
  for (auto& th : pool) th.join();
  if (first_error) std::rethrow_exception(first_error);
  return result;
}

CollectionResult collect_all(const pmu::Machine& machine,
                             const std::vector<pmu::Activity>& activities,
                             std::size_t repetitions, int threads) {
  return collect(machine, machine.event_names(), activities, repetitions,
                 threads);
}

CollectionResult collect_multiplexed(
    const pmu::Machine& machine, const std::vector<std::string>& event_names,
    const std::vector<pmu::Activity>& activities, std::size_t repetitions) {
  CATALYST_REQUIRE_AS(repetitions != 0, std::invalid_argument,
                      "collect_multiplexed: need at least one repetition");
  const std::vector<std::size_t> event_indices =
      resolve_events(machine, event_names, "collect_multiplexed");
  const pmu::IdealTable ideals(machine, activities, event_indices);
  CollectionResult result;
  result.event_names = event_names;
  result.runs_per_repetition = 1;

  for (std::size_t rep = 0; rep < repetitions; ++rep) {
    Session session(machine);
    const int set = session.create_eventset();
    Status s = session.enable_multiplexing(set);
    if (s != Status::ok) {
      throw std::runtime_error("collect_multiplexed: " + to_string(s));
    }
    for (const auto& name : event_names) {
      s = session.add_event(set, name);
      if (s != Status::ok) {
        throw std::invalid_argument("collect_multiplexed: add_event '" +
                                    name + "': " + to_string(s));
      }
    }
    RepetitionData data;
    data.values.assign(event_names.size(), {});
    for (auto& v : data.values) v.reserve(activities.size());
    std::vector<double> prev(event_names.size(), 0.0);
    std::vector<double> now;
    session.start(set);
    for (std::size_t k = 0; k < activities.size(); ++k) {
      session.run_kernel(activities[k], rep, k, &ideals);
      session.read(set, now);
      // The multiplexed set keeps running across kernels (stopping would
      // reset the duty-cycle schedule); per-kernel values are consecutive
      // differences of the extrapolated totals.
      for (std::size_t e = 0; e < event_names.size(); ++e) {
        data.values[e].push_back(now[e] - prev[e]);
      }
      // read() clears its output before filling, so the buffers can just
      // trade places instead of copying every total per kernel.
      std::swap(prev, now);
    }
    session.stop(set);
    result.repetitions.push_back(std::move(data));
  }
  return result;
}

}  // namespace catalyst::vpapi
