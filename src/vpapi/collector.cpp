#include "vpapi/collector.hpp"

#include "core/contract.hpp"

#include <algorithm>
#include <array>
#include <cmath>
#include <sstream>
#include <stdexcept>
#include <unordered_map>

#include "core/parallel.hpp"
#include "obs/names.hpp"
#include "obs/trace.hpp"
#include "sync/annotations.hpp"
#include "sync/mutex.hpp"
#include "vpapi/scheduler.hpp"

namespace catalyst::vpapi {

std::vector<std::vector<std::string>> schedule_groups(
    const pmu::Machine& machine, const std::vector<std::string>& event_names) {
  const std::size_t budget = machine.physical_counters();
  std::vector<std::vector<std::string>> groups;
  for (const auto& name : event_names) {
    if (groups.empty() || groups.back().size() >= budget) {
      groups.emplace_back();
    }
    groups.back().push_back(name);
  }
  return groups;
}

namespace {

// Runs one (repetition, group) unit: a fresh session measuring the group's
// events over the full kernel sequence, writing results into the
// caller-owned rows of `data` named by `dest_rows` (constrained events may
// be packed out of input order, so a run's rows need not be contiguous).
// `ideals` is the sweep-wide (event, kernel) ideal-value table; it is
// immutable and shared by every unit (and worker thread) of the collection.
void run_unit(const pmu::Machine& machine,
              const std::vector<std::string>& group,
              const std::vector<pmu::Activity>& activities,
              const pmu::IdealTable& ideals, std::uint64_t run_id,
              const std::vector<std::size_t>& dest_rows, RepetitionData& data,
              const faults::FaultPlan* plan) {
  Session session(machine);
  if (plan != nullptr) {
    session.set_fault_context(plan);
    session.set_fault_coordinates(run_id, 0);
  }
  const int set = session.create_eventset();
  for (const auto& name : group) {
    const Status s = session.add_event(set, name);
    if (s != Status::ok) {
      throw std::runtime_error("collect: add_event '" + name +
                               "' failed: " + to_string(s));
    }
  }
  // Read counters per kernel slot: start/run/stop/read/reset around each
  // kernel, the way CAT instruments its microkernels.  Every status is
  // checked: an unchecked transient read() used to leave `vals` holding the
  // PREVIOUS kernel's readings, silently duplicating rows into the result.
  std::vector<std::vector<double>> per_kernel(group.size());
  for (auto& v : per_kernel) v.reserve(activities.size());
  std::vector<double> vals;
  for (std::size_t k = 0; k < activities.size(); ++k) {
    Status s = session.start(set);
    if (s != Status::ok) {
      throw std::runtime_error("collect: start failed: " + to_string(s));
    }
    session.run_kernel(activities[k], run_id, k, &ideals);
    session.stop(set);
    s = session.read(set, vals);
    if (s != Status::ok) {
      throw std::runtime_error("collect: read failed: " + to_string(s));
    }
    session.reset(set);
    for (std::size_t e = 0; e < vals.size(); ++e) {
      per_kernel[e].push_back(vals[e]);
    }
  }
  for (std::size_t e = 0; e < group.size(); ++e) {
    data.values[dest_rows[e]] = std::move(per_kernel[e]);
  }
}

// Maps every scheduled run's members back to their row in `event_names`
// (the schedule preserves within-run input order, but constrained events
// can be packed into earlier runs than chunking would put them).
std::vector<std::vector<std::size_t>> schedule_rows(
    const EventSetSchedule& schedule,
    const std::vector<std::string>& event_names) {
  std::unordered_map<std::string, std::size_t> index;
  index.reserve(event_names.size());
  for (std::size_t e = 0; e < event_names.size(); ++e) {
    index.emplace(event_names[e], e);
  }
  std::vector<std::vector<std::size_t>> rows(schedule.runs.size());
  for (std::size_t g = 0; g < schedule.runs.size(); ++g) {
    rows[g].reserve(schedule.runs[g].events.size());
    for (const auto& name : schedule.runs[g].events) {
      rows[g].push_back(index.at(name));
    }
  }
  return rows;
}

// Resolves event names to machine indices, throwing on unknown names.
std::vector<std::size_t> resolve_events(
    const pmu::Machine& machine, const std::vector<std::string>& event_names,
    const char* caller) {
  std::vector<std::size_t> indices;
  indices.reserve(event_names.size());
  for (const auto& name : event_names) {
    const auto idx = machine.find(name);
    if (!idx) {
      throw std::invalid_argument(std::string(caller) + ": unknown event " +
                                  name);
    }
    indices.push_back(*idx);
  }
  return indices;
}

}  // namespace

CollectionResult collect(const pmu::Machine& machine,
                         const std::vector<std::string>& event_names,
                         const std::vector<pmu::Activity>& activities,
                         std::size_t repetitions, int threads,
                         const faults::FaultPlan* plan) {
  CATALYST_REQUIRE_AS(repetitions != 0, std::invalid_argument,
                      "collect: need at least one repetition");
  CATALYST_REQUIRE_AS(threads >= 1, std::invalid_argument,
                      "collect: need at least one thread");
  const std::vector<std::size_t> event_indices =
      resolve_events(machine, event_names, "collect");
  CollectionResult result;
  result.event_names = event_names;
  // Bin-packed, constraint-aware run schedule; identical to the naive
  // chunking when no event carries a slot mask (see vpapi/scheduler.hpp).
  const EventSetSchedule schedule = schedule_event_sets(machine, event_names);
  const std::vector<ScheduledRun>& groups = schedule.runs;
  result.runs_per_repetition = groups.size();

  // An event's ideal reading over a kernel is repetition-invariant, so the
  // (event, kernel) table is evaluated once and shared by all
  // repetitions x groups units below instead of being recomputed inside
  // every time slice.  The table is immutable from here on, so worker
  // threads read it without synchronization.
  const pmu::IdealTable ideals(machine, activities, event_indices);

  const std::vector<std::vector<std::size_t>> group_rows =
      schedule_rows(schedule, event_names);

  result.repetitions.resize(repetitions);
  for (auto& rep : result.repetitions) {
    rep.values.resize(event_names.size());
  }

  obs::Span collect_span("vpapi.collect");
  collect_span.arg("events", event_names.size());
  collect_span.arg("repetitions", repetitions);
  collect_span.arg("groups", groups.size());

  // Work list: all (repetition, group) units; each writes a disjoint slice
  // of the result, so workers need no synchronization beyond the cursor.
  const std::size_t total_units = repetitions * groups.size();
  auto do_unit = [&](std::size_t unit) {
    const std::size_t rep = unit / groups.size();
    const std::size_t g = unit % groups.size();
    const std::uint64_t run_id = rep * groups.size() + g;
    obs::Span unit_span("collect.unit");
    unit_span.arg("rep", rep);
    unit_span.arg("group", g);
    run_unit(machine, groups[g].events, activities, ideals, run_id,
             group_rows[g], result.repetitions[rep], plan);
  };

  try {
    core::parallel_for(total_units, threads, do_unit);
  } catch (...) {
    // Sibling units may have landed complete rows before the failure was
    // noticed; discard everything so no partial campaign data can outlive
    // the error (the regression tests assert no torn rows escape).
    result.repetitions.clear();
    throw;
  }
  return result;
}

CollectionResult collect_all(const pmu::Machine& machine,
                             const std::vector<pmu::Activity>& activities,
                             std::size_t repetitions, int threads) {
  return collect(machine, machine.event_names(), activities, repetitions,
                 threads);
}

// --- resilient collection ---------------------------------------------------

std::string to_string(EventDisposition d) {
  switch (d) {
    case EventDisposition::clean: return "clean";
    case EventDisposition::recovered: return "recovered";
    case EventDisposition::quarantined: return "quarantined";
  }
  return "unknown";
}

std::uint64_t EventReport::total_faults() const noexcept {
  std::uint64_t sum = 0;
  for (const std::uint64_t f : faults) sum += f;
  return sum;
}

const EventReport* CollectionReport::find(const std::string& name) const {
  for (const auto& e : events) {
    if (e.name == name) return &e;
  }
  return nullptr;
}

std::string CollectionReport::summary() const {
  std::size_t clean = 0;
  std::size_t recovered = 0;
  for (const auto& e : events) {
    if (e.disposition == EventDisposition::clean) ++clean;
    if (e.disposition == EventDisposition::recovered) ++recovered;
  }
  std::ostringstream os;
  os << events.size() << " events: " << clean << " clean, " << recovered
     << " recovered, " << quarantined.size() << " quarantined; "
     << total_retries << " retries";
  return os.str();
}

namespace {

/// Everything one resilient (repetition, group) unit produced; merged into
/// the campaign-wide result and report under the caller's lock.
struct UnitOutcome {
  /// Group-local complete kernel rows; empty vector = no trustworthy data
  /// for that event in this unit (it was quarantined).
  std::vector<std::vector<double>> rows;
  std::vector<char> quarantined;  ///< Group-local quarantine verdicts.
  std::vector<std::uint64_t> read_attempts;
  std::vector<std::uint64_t> retries;
  std::vector<std::uint64_t> wraps_corrected;
  std::vector<std::array<std::uint64_t, faults::kNumFaultKinds>> fault_counts;
  std::uint64_t start_retries = 0;
  std::uint64_t total_retries = 0;
};

/// One resilient (repetition, group) unit.  Every decision in here is a
/// pure function of (plan seed, event, run_id, kernel, attempt), so the
/// outcome is identical no matter which worker thread runs the unit.
UnitOutcome run_unit_resilient(const pmu::Machine& machine,
                               const std::vector<std::string>& group,
                               const std::vector<pmu::Activity>& activities,
                               const pmu::IdealTable& ideals,
                               std::uint64_t run_id,
                               const faults::FaultPlan* plan,
                               const ResilienceOptions& opts) {
  const std::size_t n = group.size();
  UnitOutcome out;
  out.rows.resize(n);
  out.quarantined.assign(n, 0);
  out.read_attempts.assign(n, 0);
  out.retries.assign(n, 0);
  out.wraps_corrected.assign(n, 0);
  out.fault_counts.assign(n, {});

  obs::Span unit_span("collect.unit");
  unit_span.arg("run", run_id);
  unit_span.arg("events", n);

  Session session(machine);
  if (plan != nullptr) session.set_fault_context(plan);
  const int set = session.create_eventset();

  auto pace = [&](std::uint64_t attempt) {
    if (opts.clock == nullptr) return;
    obs::Span backoff_span("collect.backoff");
    const std::chrono::nanoseconds d = opts.backoff.delay(attempt);
    backoff_span.arg("attempt", attempt);
    backoff_span.arg("ns", d.count());
    opts.clock->sleep_for(d);
  };

  // Machine event index -> group-local index, for fault attribution.
  std::vector<std::size_t> machine_index(n);
  std::unordered_map<std::size_t, std::size_t> local_of;
  local_of.reserve(n);
  for (std::size_t e = 0; e < n; ++e) {
    const auto idx = machine.find(group[e]);
    CATALYST_REQUIRE_AS(idx.has_value(), std::invalid_argument,
                        "collect_resilient: unknown event " + group[e]);
    machine_index[e] = *idx;
    local_of.emplace(*idx, e);
  }

  // Tallies the session's fault log into the per-event counters; when
  // `suspect` is given, events hit by a data-destroying fault (drop, stuck,
  // spike) on kernel `kernel` are flagged -- the culprits to quarantine if
  // this kernel exhausts its retries.
  auto drain_faults = [&](std::uint64_t kernel, std::vector<char>* suspect) {
    for (const auto& rec : session.fault_log()) {
      if (rec.event_index == static_cast<std::size_t>(-1)) continue;
      const auto it = local_of.find(rec.event_index);
      if (it == local_of.end()) continue;
      ++out.fault_counts[it->second][static_cast<std::size_t>(rec.kind)];
      if (suspect != nullptr && rec.kernel == kernel &&
          (rec.kind == faults::FaultKind::dropped_reading ||
           rec.kind == faults::FaultKind::stuck ||
           rec.kind == faults::FaultKind::spike)) {
        (*suspect)[it->second] = 1;
      }
    }
    session.clear_fault_log();
  };

  // --- add phase: transient EBUSY/ECNFLCT failures are retried per event --
  std::vector<std::size_t> in_set;  // group-local indices, add order
  in_set.reserve(n);
  for (std::size_t e = 0; e < n; ++e) {
    bool added = false;
    for (std::uint64_t attempt = 0; attempt <= opts.max_retries; ++attempt) {
      // Inert span (nullptr name) on the first attempt: only actual RETRIES
      // show up in the trace, so a fault-free run stays span-quiet here.
      obs::Span retry_span(attempt > 0 ? "collect.add_retry" : nullptr);
      retry_span.arg("event", group[e]);
      retry_span.arg("attempt", attempt);
      session.set_fault_coordinates(run_id, attempt);
      const Status s = session.add_event(set, group[e]);
      drain_faults(0, nullptr);
      if (s == Status::ok) {
        added = true;
        out.retries[e] += attempt;
        out.total_retries += attempt;
        break;
      }
      if (s != Status::transient) {
        throw std::runtime_error("collect_resilient: add_event '" + group[e] +
                                 "' failed: " + to_string(s));
      }
      pace(attempt);
    }
    if (added) {
      in_set.push_back(e);
    } else {
      out.quarantined[e] = 1;
      out.retries[e] += opts.max_retries;
      out.total_retries += opts.max_retries;
    }
  }
  for (const std::size_t e : in_set) out.rows[e].reserve(activities.size());

  // --- kernel loop: retry, unwrap, screen, quarantine ----------------------
  std::vector<double> vals;
  for (std::size_t k = 0; k < activities.size() && !in_set.empty(); ++k) {
    bool kernel_done = false;
    while (!kernel_done && !in_set.empty()) {
      std::vector<char> suspect(n, 0);
      bool success = false;
      for (std::uint64_t attempt = 0; attempt <= opts.max_retries; ++attempt) {
        // As above: span only the retries, not the happy path.
        obs::Span retry_span(attempt > 0 ? "collect.retry" : nullptr);
        retry_span.arg("kernel", k);
        retry_span.arg("attempt", attempt);
        session.set_fault_coordinates(run_id, attempt);
        Status s = session.start(set);
        if (s == Status::transient) {
          ++out.start_retries;
          ++out.total_retries;
          pace(attempt);
          continue;
        }
        if (s != Status::ok) {
          throw std::runtime_error("collect_resilient: start failed: " +
                                   to_string(s));
        }
        session.run_kernel(activities[k], run_id, k, &ideals);
        session.stop(set);
        s = session.read(set, vals);
        for (const std::size_t e : in_set) ++out.read_attempts[e];
        drain_faults(k, &suspect);
        session.reset(set);
        if (s == Status::transient) {
          for (const std::size_t e : in_set) ++out.retries[e];
          ++out.total_retries;
          pace(attempt);
          continue;
        }
        if (s != Status::ok) {
          throw std::runtime_error("collect_resilient: read failed: " +
                                   to_string(s));
        }
        // Width-aware delta decoding: a negative per-kernel delta means the
        // register wrapped between the surrounding reads; adding spans back
        // recovers the true reading exactly, no re-run needed.  Values the
        // plausibility screen rejects (spikes, non-finite) force a re-run.
        bool implausible = false;
        if (plan != nullptr) {
          for (std::size_t i = 0; i < vals.size(); ++i) {
            double v = vals[i];
            if (v < 0.0) {
              v = faults::unwrap_reading(plan->counter_width_bits, v,
                                         &out.wraps_corrected[in_set[i]]);
            }
            if (!std::isfinite(v) || v > plan->plausible_max) {
              implausible = true;
            }
            vals[i] = v;
          }
        }
        if (implausible) {
          for (const std::size_t e : in_set) ++out.retries[e];
          ++out.total_retries;
          pace(attempt);
          continue;
        }
        success = true;
        break;
      }
      if (success) {
        CATALYST_INVARIANT(vals.size() == in_set.size(),
                           "collect_resilient: reading/set size mismatch");
        for (std::size_t i = 0; i < vals.size(); ++i) {
          out.rows[in_set[i]].push_back(vals[i]);
        }
        kernel_done = true;
        continue;
      }
      // Retries exhausted on this kernel: quarantine the culprits (events a
      // data-destroying fault hit here) and re-run the kernel without them.
      // With no identifiable culprit (persistent set-level start failure)
      // the whole remaining group is quarantined and the unit abandoned.
      std::vector<std::size_t> keep;
      keep.reserve(in_set.size());
      bool any_culprit = false;
      for (const std::size_t e : in_set) {
        if (suspect[e] != 0) any_culprit = true;
      }
      for (const std::size_t e : in_set) {
        if (any_culprit && suspect[e] == 0) {
          keep.push_back(e);
          continue;
        }
        out.quarantined[e] = 1;
        out.rows[e].clear();  // discard the partial row: no torn data
        const Status s = session.remove_event(set, group[e]);
        CATALYST_INVARIANT(s == Status::ok,
                           "collect_resilient: remove_event failed");
      }
      in_set = std::move(keep);
    }
  }
  // Partial rows can only belong to quarantined events, and were cleared.
  for (std::size_t e = 0; e < n; ++e) {
    CATALYST_ENSURE(out.rows[e].size() == activities.size() ||
                        (out.rows[e].empty() && out.quarantined[e] != 0),
                    "collect_resilient: torn row escaped a unit");
  }
  return out;
}

}  // namespace

ResilientCollectionResult collect_resilient(
    const pmu::Machine& machine, const std::vector<std::string>& event_names,
    const std::vector<pmu::Activity>& activities, std::size_t repetitions,
    const faults::FaultPlan* plan, const ResilienceOptions& options,
    std::size_t repetition_offset) {
  CATALYST_REQUIRE_AS(repetitions != 0, std::invalid_argument,
                      "collect_resilient: need at least one repetition");
  CATALYST_REQUIRE_AS(options.threads >= 1, std::invalid_argument,
                      "collect_resilient: need at least one thread");
  const std::vector<std::size_t> event_indices =
      resolve_events(machine, event_names, "collect_resilient");
  const EventSetSchedule schedule = schedule_event_sets(machine, event_names);
  const std::vector<ScheduledRun>& groups = schedule.runs;
  const pmu::IdealTable ideals(machine, activities, event_indices);

  obs::Span collect_span("vpapi.collect_resilient");
  collect_span.arg("events", event_names.size());
  collect_span.arg("repetitions", repetitions);
  collect_span.arg("groups", groups.size());
  collect_span.arg("faults", plan != nullptr && plan->enabled());

  const std::vector<std::vector<std::size_t>> group_rows =
      schedule_rows(schedule, event_names);

  // Campaign-wide accumulators, merged per unit under `mutex`.  Every count
  // is additive and the quarantine verdicts are a set union, so the merged
  // state is independent of unit completion order -- the report and data
  // are bit-identical at any thread count.  All mutation funnels through
  // merge_unit(), whose CATALYST_REQUIRES annotation turns an unlocked
  // access into a `check.sh thread_safety` build error; scoping the state
  // inside the struct also gives the exception guarantee for free (a
  // worker throw destroys the partial campaign data with the struct -- no
  // torn rows escape).
  struct MergeState {
    sync::Mutex mutex{"vpapi.collect.merge"};
    CollectionReport report CATALYST_GUARDED_BY(mutex);
    std::vector<char> quarantined CATALYST_GUARDED_BY(mutex);
    std::vector<RepetitionData> reps CATALYST_GUARDED_BY(mutex);

    MergeState(const std::vector<std::string>& names, std::size_t n_reps) {
      report.events.resize(names.size());
      for (std::size_t e = 0; e < names.size(); ++e) {
        report.events[e].name = names[e];
      }
      quarantined.assign(names.size(), 0);
      reps.resize(n_reps);
      for (auto& r : reps) r.values.resize(names.size());
    }

    void merge_unit(const std::vector<std::size_t>& rows,
                    std::size_t rep_index, UnitOutcome&& out)
        CATALYST_REQUIRES(mutex) {
      for (std::size_t i = 0; i < rows.size(); ++i) {
        const std::size_t e = rows[i];
        EventReport& er = report.events[e];
        er.read_attempts += out.read_attempts[i];
        er.retries += out.retries[i];
        er.wraps_corrected += out.wraps_corrected[i];
        for (std::size_t f = 0; f < faults::kNumFaultKinds; ++f) {
          er.faults[f] += out.fault_counts[i][f];
        }
        if (out.quarantined[i] != 0) quarantined[e] = 1;
        reps[rep_index].values[e] = std::move(out.rows[i]);
      }
      report.start_retries += out.start_retries;
      report.total_retries += out.total_retries;
    }
  } merge(event_names, repetitions);

  auto do_unit = [&](std::size_t unit) {
    const std::size_t rep = unit / groups.size();
    const std::size_t g = unit % groups.size();
    const std::uint64_t run_id =
        (repetition_offset + rep) * groups.size() + g;
    UnitOutcome out = run_unit_resilient(machine, groups[g].events,
                                         activities, ideals, run_id, plan,
                                         options);
    const sync::LockGuard lock(merge.mutex);
    merge.merge_unit(group_rows[g], rep, std::move(out));
  };

  const std::size_t total_units = repetitions * groups.size();
  core::parallel_for(total_units, options.threads, do_unit);

  // Single-threaded from here (workers joined); move the merged state out
  // under the lock so the analysis stays exact.
  CollectionReport report;
  std::vector<char> quarantined;
  std::vector<RepetitionData> reps;
  {
    const sync::LockGuard lock(merge.mutex);
    report = std::move(merge.report);
    quarantined = std::move(merge.quarantined);
    reps = std::move(merge.reps);
  }

  // Dispositions + final data with quarantined events' rows removed.
  for (std::size_t e = 0; e < event_names.size(); ++e) {
    EventReport& er = report.events[e];
    if (quarantined[e] != 0) {
      er.disposition = EventDisposition::quarantined;
      report.quarantined.push_back(event_names[e]);
    } else if (er.total_faults() > 0 || er.retries > 0 ||
               er.wraps_corrected > 0) {
      er.disposition = EventDisposition::recovered;
    }
  }

  // Campaign-level observability rollup.  Counted once here, not per unit:
  // the totals are already order-independent sums, so this keeps metrics off
  // the merge lock entirely.
  if (obs::enabled()) {
    obs::count(obs::names::kCollectRetries, report.total_retries);
    obs::count(obs::names::kCollectStartRetries, report.start_retries);
    std::uint64_t wraps = 0;
    std::array<std::uint64_t, faults::kNumFaultKinds> by_kind{};
    for (const EventReport& er : report.events) {
      wraps += er.wraps_corrected;
      for (std::size_t f = 0; f < faults::kNumFaultKinds; ++f) {
        by_kind[f] += er.faults[f];
      }
    }
    obs::count(obs::names::kCollectWrapsCorrected, wraps);
    obs::count(obs::names::kCollectQuarantined, report.quarantined.size());
    for (std::size_t f = 0; f < faults::kNumFaultKinds; ++f) {
      if (by_kind[f] == 0) continue;
      obs::count(std::string(obs::names::kCollectFaultsPrefix) +
                     faults::to_string(static_cast<faults::FaultKind>(f)),
                 by_kind[f]);
    }
  }

  ResilientCollectionResult result;
  result.report = std::move(report);
  result.data.runs_per_repetition = groups.size();
  for (std::size_t e = 0; e < event_names.size(); ++e) {
    if (quarantined[e] == 0) result.data.event_names.push_back(event_names[e]);
  }
  result.data.repetitions.resize(repetitions);
  for (std::size_t r = 0; r < repetitions; ++r) {
    auto& dst = result.data.repetitions[r].values;
    dst.reserve(result.data.event_names.size());
    for (std::size_t e = 0; e < event_names.size(); ++e) {
      if (quarantined[e] != 0) continue;
      CATALYST_ENSURE(reps[r].values[e].size() == activities.size(),
                      "collect_resilient: kept event '" + event_names[e] +
                          "' has an incomplete row");
      dst.push_back(std::move(reps[r].values[e]));
    }
  }
  return result;
}

CollectionResult collect_multiplexed(
    const pmu::Machine& machine, const std::vector<std::string>& event_names,
    const std::vector<pmu::Activity>& activities, std::size_t repetitions) {
  CATALYST_REQUIRE_AS(repetitions != 0, std::invalid_argument,
                      "collect_multiplexed: need at least one repetition");
  const std::vector<std::size_t> event_indices =
      resolve_events(machine, event_names, "collect_multiplexed");
  const pmu::IdealTable ideals(machine, activities, event_indices);
  CollectionResult result;
  result.event_names = event_names;
  result.runs_per_repetition = 1;

  for (std::size_t rep = 0; rep < repetitions; ++rep) {
    Session session(machine);
    const int set = session.create_eventset();
    Status s = session.enable_multiplexing(set);
    if (s != Status::ok) {
      throw std::runtime_error("collect_multiplexed: " + to_string(s));
    }
    for (const auto& name : event_names) {
      s = session.add_event(set, name);
      if (s != Status::ok) {
        throw std::invalid_argument("collect_multiplexed: add_event '" +
                                    name + "': " + to_string(s));
      }
    }
    // Continue the round-robin schedule across repetitions instead of
    // restarting it at slot 0: with the cursor pinned, the same leading
    // groups would collect the ceil(slices/groups) share in EVERY
    // repetition whenever kernels % groups != 0, a systematic duty-cycle
    // bias against the trailing group that no amount of repetition
    // averages away (see Session::set_multiplex_phase).
    session.set_multiplex_phase(set, rep * activities.size());
    RepetitionData data;
    data.values.assign(event_names.size(), {});
    for (auto& v : data.values) v.reserve(activities.size());
    std::vector<double> prev(event_names.size(), 0.0);
    std::vector<double> now;
    session.start(set);
    for (std::size_t k = 0; k < activities.size(); ++k) {
      session.run_kernel(activities[k], rep, k, &ideals);
      session.read(set, now);
      // The multiplexed set keeps running across kernels (stopping would
      // reset the duty-cycle schedule); per-kernel values are consecutive
      // differences of the extrapolated totals.
      for (std::size_t e = 0; e < event_names.size(); ++e) {
        data.values[e].push_back(now[e] - prev[e]);
      }
      // read() clears its output before filling, so the buffers can just
      // trade places instead of copying every total per kernel.
      std::swap(prev, now);
    }
    session.stop(set);
    result.repetitions.push_back(std::move(data));
  }
  return result;
}

}  // namespace catalyst::vpapi
