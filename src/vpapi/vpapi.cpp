#include "vpapi/vpapi.hpp"

#include <algorithm>

namespace catalyst::vpapi {

std::string to_string(Status s) {
  switch (s) {
    case Status::ok: return "ok";
    case Status::no_such_event: return "no such event";
    case Status::conflict: return "event set full (counter conflict)";
    case Status::already_added: return "event already in set";
    case Status::is_running: return "event set is running";
    case Status::not_running: return "event set has no data";
    case Status::no_such_eventset: return "no such event set";
    case Status::invalid_preset: return "invalid preset definition";
    case Status::transient: return "transient failure (busy/conflict)";
  }
  return "unknown status";
}

Session::Session(const pmu::Machine& machine) : machine_(&machine) {}

void Session::set_fault_context(const faults::FaultPlan* plan) {
  fault_plan_ = plan;
  fault_rates_.clear();
  if (plan == nullptr || !plan->enabled()) {
    fault_plan_ = nullptr;
    return;
  }
  // Resolve per-event overrides to machine indices once; the read engine
  // then costs one vector lookup per slot measurement.
  fault_rates_.reserve(machine_->num_events());
  for (const auto& event : machine_->events()) {
    fault_rates_.push_back(plan->rates_for(event.name));
  }
}

void Session::set_fault_coordinates(std::uint64_t run, std::uint64_t attempt) {
  fault_run_ = run;
  fault_attempt_ = attempt;
}

bool Session::query_event(const std::string& name) const {
  return machine_->find(name).has_value() || find_preset(name) != nullptr;
}

std::vector<std::string> Session::enumerate_events() const {
  return machine_->event_names();
}

std::vector<std::string> Session::enumerate_presets() const {
  std::vector<std::string> names;
  names.reserve(presets_.size());
  for (const auto& p : presets_) names.push_back(p.name);
  return names;
}

std::string Session::event_description(const std::string& name) const {
  if (auto idx = machine_->find(name)) {
    return machine_->event(*idx).description;
  }
  if (const DerivedEvent* p = find_preset(name)) return p->description;
  return {};
}

const DerivedEvent* Session::find_preset(const std::string& name) const {
  for (const auto& p : presets_) {
    if (p.name == name) return &p;
  }
  return nullptr;
}

Status Session::register_preset(const DerivedEvent& preset) {
  if (preset.name.empty() || preset.terms.empty()) {
    return Status::invalid_preset;
  }
  if (machine_->find(preset.name) || find_preset(preset.name)) {
    return Status::already_added;
  }
  for (const auto& t : preset.terms) {
    if (!machine_->find(t.event_name)) return Status::invalid_preset;
  }
  presets_.push_back(preset);
  return Status::ok;
}

int Session::create_eventset() {
  sets_.emplace_back();
  return static_cast<int>(sets_.size() - 1);
}

Session::EventSet* Session::get(int set) {
  if (set < 0 || static_cast<std::size_t>(set) >= sets_.size()) return nullptr;
  EventSet* es = &sets_[static_cast<std::size_t>(set)];
  return es->destroyed ? nullptr : es;
}

const Session::EventSet* Session::get(int set) const {
  if (set < 0 || static_cast<std::size_t>(set) >= sets_.size()) return nullptr;
  const EventSet* es = &sets_[static_cast<std::size_t>(set)];
  return es->destroyed ? nullptr : es;
}

Session::Slot* Session::find_slot(EventSet& es, std::size_t machine_index) {
  if (machine_index >= es.slot_of.size()) return nullptr;
  const std::int32_t i = es.slot_of[machine_index];
  return i < 0 ? nullptr : &es.slots[static_cast<std::size_t>(i)];
}

const Session::Slot* Session::find_slot(const EventSet& es,
                                        std::size_t machine_index) {
  if (machine_index >= es.slot_of.size()) return nullptr;
  const std::int32_t i = es.slot_of[machine_index];
  return i < 0 ? nullptr : &es.slots[static_cast<std::size_t>(i)];
}

Status Session::enable_multiplexing(int set) {
  EventSet* es = get(set);
  if (!es) return Status::no_such_eventset;
  if (es->running) return Status::is_running;
  es->multiplexed = true;
  return Status::ok;
}

bool Session::is_multiplexed(int set) const {
  const EventSet* es = get(set);
  return es != nullptr && es->multiplexed;
}

Status Session::set_multiplex_phase(int set, std::uint64_t start_slice) {
  EventSet* es = get(set);
  if (!es) return Status::no_such_eventset;
  if (es->running) return Status::is_running;
  const std::size_t n_slots = es->slots.size();
  const std::size_t window = machine_->physical_counters();
  if (!es->multiplexed || n_slots <= window) {
    es->mux_cursor = 0;  // not oversubscribed: every slot counts every slice
    return Status::ok;
  }
  es->mux_cursor = static_cast<std::size_t>(
      (start_slice % n_slots) * window % n_slots);
  return Status::ok;
}

std::vector<std::uint64_t> Session::slice_counts(int set) const {
  const EventSet* es = get(set);
  if (!es) return {};
  std::vector<std::uint64_t> counts;
  counts.reserve(es->items.size());
  for (const auto& item : es->items) {
    std::uint64_t slices = 0;
    bool first = true;
    for (const auto& part : item.parts) {
      const Slot* slot = find_slot(*es, part.machine_index);
      if (slot == nullptr) continue;
      slices = first ? slot->slices : std::min(slices, slot->slices);
      first = false;
    }
    counts.push_back(slices);
  }
  return counts;
}

Status Session::destroy_eventset(int set) {
  EventSet* es = get(set);
  if (!es) return Status::no_such_eventset;
  if (es->running) return Status::is_running;
  es->destroyed = true;
  return Status::ok;
}

Status Session::add_event(int set, const std::string& name) {
  EventSet* es = get(set);
  if (!es) return Status::no_such_eventset;
  if (es->running) return Status::is_running;
  for (const auto& item : es->items) {
    if (item.name == name) return Status::already_added;
  }

  // Resolve the name to its constituent (raw event, coefficient) parts.
  std::vector<Part> parts;
  if (auto idx = machine_->find(name)) {
    parts.push_back({*idx, 1.0});
  } else if (const DerivedEvent* p = find_preset(name)) {
    for (const auto& t : p->terms) {
      auto raw = machine_->find(t.event_name);
      if (!raw) return Status::invalid_preset;  // registry was validated,
                                                // but stay defensive
      parts.push_back({*raw, t.coefficient});
    }
  } else {
    return Status::no_such_event;
  }

  // Count the new counters this item needs (constituents may share slots
  // with events already in the set, and a preset may reference the same
  // raw event twice).
  std::vector<std::size_t> new_raws;
  for (const auto& part : parts) {
    if (find_slot(*es, part.machine_index)) continue;
    if (std::find(new_raws.begin(), new_raws.end(), part.machine_index) ==
        new_raws.end()) {
      new_raws.push_back(part.machine_index);
    }
  }
  if (!es->multiplexed &&
      es->slots.size() + new_raws.size() > machine_->physical_counters()) {
    return Status::conflict;
  }
  // Transient EBUSY/ECNFLCT-style programming failure, injected only after
  // every real validation passed so a fault can never mask a genuine error.
  // Nothing was mutated yet, so the caller can simply retry.
  if (fault_plan_ != nullptr) {
    const double rate = fault_plan_->rates_for(name).add_event_busy;
    if (faults::fires(*fault_plan_, pmu::fnv1a(name),
                      faults::FaultKind::add_event_busy, fault_run_, 0,
                      fault_attempt_, rate)) {
      fault_log_.push_back({faults::FaultKind::add_event_busy,
                            parts.front().machine_index, fault_run_, 0,
                            fault_attempt_});
      return Status::transient;
    }
  }
  if (es->slot_of.size() < machine_->num_events()) {
    es->slot_of.assign(machine_->num_events(), -1);
    for (std::size_t i = 0; i < es->slots.size(); ++i) {
      es->slot_of[es->slots[i].machine_index] = static_cast<std::int32_t>(i);
    }
  }
  for (std::size_t raw : new_raws) {
    es->slot_of[raw] = static_cast<std::int32_t>(es->slots.size());
    es->slots.push_back(Slot{raw, 0.0, 0, 0});
  }
  for (const auto& part : parts) {
    find_slot(*es, part.machine_index)->refs += 1;
  }
  es->items.push_back(Item{name, std::move(parts)});
  return Status::ok;
}

Status Session::remove_event(int set, const std::string& name) {
  EventSet* es = get(set);
  if (!es) return Status::no_such_eventset;
  if (es->running) return Status::is_running;
  auto it = std::find_if(es->items.begin(), es->items.end(),
                         [&](const Item& item) { return item.name == name; });
  if (it == es->items.end()) return Status::no_such_event;
  for (const auto& part : it->parts) {
    Slot* slot = find_slot(*es, part.machine_index);
    slot->refs -= 1;
  }
  es->items.erase(it);
  // Free counters no longer referenced by any item, then rebuild the O(1)
  // lookup table (slot indices shift after the erase).
  std::erase_if(es->slots, [](const Slot& s) { return s.refs <= 0; });
  std::fill(es->slot_of.begin(), es->slot_of.end(), -1);
  for (std::size_t i = 0; i < es->slots.size(); ++i) {
    es->slot_of[es->slots[i].machine_index] = static_cast<std::int32_t>(i);
  }
  return Status::ok;
}

std::vector<std::string> Session::list_events(int set) const {
  const EventSet* es = get(set);
  std::vector<std::string> names;
  if (!es) return names;
  names.reserve(es->items.size());
  for (const auto& item : es->items) names.push_back(item.name);
  return names;
}

std::size_t Session::counters_in_use(int set) const {
  const EventSet* es = get(set);
  return es ? es->slots.size() : 0;
}

Status Session::start(int set) {
  EventSet* es = get(set);
  if (!es) return Status::no_such_eventset;
  if (es->running) return Status::is_running;
  if (fault_plan_ != nullptr) {
    // Set-level transient start failure (the set id stands in for the event
    // hash; start is not tied to a single event).
    const std::uint64_t h =
        pmu::mix64(static_cast<std::uint64_t>(set) + 0x57A27);
    if (faults::fires(*fault_plan_, h, faults::FaultKind::start_busy,
                      fault_run_, 0, fault_attempt_,
                      fault_plan_->rates.start_busy)) {
      fault_log_.push_back({faults::FaultKind::start_busy,
                            static_cast<std::size_t>(-1), fault_run_, 0,
                            fault_attempt_});
      return Status::transient;
    }
  }
  es->running = true;
  es->ever_started = true;
  return Status::ok;
}

Status Session::stop(int set) {
  EventSet* es = get(set);
  if (!es) return Status::no_such_eventset;
  if (!es->running) return Status::not_running;
  es->running = false;
  return Status::ok;
}

Status Session::reset(int set) {
  EventSet* es = get(set);
  if (!es) return Status::no_such_eventset;
  for (auto& slot : es->slots) {
    slot.count = 0.0;
    slot.slices = 0;
  }
  es->slices_total = 0;
  es->transient_read = false;
  return Status::ok;
}

void Session::run_kernel(const pmu::Activity& activity,
                         std::uint64_t repetition,
                         std::uint64_t kernel_index,
                         const pmu::IdealTable* ideals) {
  // The reading is the same either way; the table only skips re-evaluating
  // the repetition-invariant linear functional.
  const bool table_usable =
      ideals != nullptr && kernel_index < ideals->num_kernels();
  auto measure = [&](EventSet& es, const Slot& slot) {
    const auto& event = machine_->event(slot.machine_index);
    const double ideal = table_usable && ideals->has(slot.machine_index)
                             ? ideals->ideal(slot.machine_index, kernel_index)
                             : event.ideal(activity);
    const double reading = pmu::measure_from_ideal(*machine_, event, ideal,
                                                   repetition, kernel_index);
    // With no plan armed the reading is untouched -- bit-identical to a
    // fault-free session.
    return fault_plan_ == nullptr
               ? reading
               : apply_reading_faults(es, slot, reading, kernel_index);
  };
  for (auto& es : sets_) {
    if (es.destroyed || !es.running) continue;
    const std::size_t n_slots = es.slots.size();
    if (!es.multiplexed || n_slots <= machine_->physical_counters()) {
      for (auto& slot : es.slots) {
        slot.count += measure(es, slot);
        ++slot.slices;
      }
      ++es.slices_total;
      continue;
    }
    // Time-sliced counting: only a rotating window of physical_counters
    // slots is live for this kernel; the others miss this slice and their
    // reading must later be extrapolated.
    const std::size_t window = machine_->physical_counters();
    for (std::size_t w = 0; w < window; ++w) {
      Slot& slot = es.slots[(es.mux_cursor + w) % n_slots];
      slot.count += measure(es, slot);
      ++slot.slices;
    }
    es.mux_cursor = (es.mux_cursor + window) % n_slots;
    ++es.slices_total;
  }
}

double Session::apply_reading_faults(EventSet& es, const Slot& slot,
                                     double reading,
                                     std::uint64_t kernel_index) {
  const faults::FaultRates& fr = fault_rates_[slot.machine_index];
  if (!fr.any()) return reading;
  const auto& event = machine_->event(slot.machine_index);
  const std::uint64_t h =
      event.name_hash != 0 ? event.name_hash : pmu::fnv1a(event.name);
  using faults::FaultKind;
  auto hit = [&](FaultKind kind, double rate) {
    if (!faults::fires(*fault_plan_, h, kind, fault_run_, kernel_index,
                       fault_attempt_, rate)) {
      return false;
    }
    fault_log_.push_back(
        {kind, slot.machine_index, fault_run_, kernel_index, fault_attempt_});
    return true;
  };
  // Drop and stuck make the whole read untrustworthy (typed transient error
  // from read()); wrap and spike corrupt the value but let the read
  // "succeed" -- the resilient driver must catch those from the data alone.
  if (hit(FaultKind::dropped_reading, fr.dropped_reading)) {
    es.transient_read = true;
    return reading;
  }
  if (hit(FaultKind::stuck, fr.stuck)) {
    es.transient_read = true;
    return 0.0;  // the frozen register does not advance: zero delta
  }
  if (hit(FaultKind::wrap, fr.wrap)) {
    reading = faults::wrap_reading(*fault_plan_, reading);
  }
  if (hit(FaultKind::spike, fr.spike)) {
    reading += fault_plan_->spike_magnitude;
  }
  return reading;
}

Status Session::read(int set, std::vector<double>& values) const {
  const EventSet* es = get(set);
  if (!es) return Status::no_such_eventset;
  if (!es->ever_started) return Status::not_running;
  if (es->transient_read) return Status::transient;
  values.clear();
  values.reserve(es->items.size());
  for (const auto& item : es->items) {
    double v = 0.0;
    for (const auto& part : item.parts) {
      const Slot* slot = find_slot(*es, part.machine_index);
      double count = slot->count;
      // Multiplexed slots were counting only part of the time: scale by
      // the inverse duty cycle to estimate the full-run value (PAPI's
      // multiplex estimation).
      if (es->multiplexed && slot->slices > 0 &&
          slot->slices < es->slices_total) {
        count *= static_cast<double>(es->slices_total) /
                 static_cast<double>(slot->slices);
      }
      v += part.coefficient * count;
    }
    values.push_back(v);
  }
  return Status::ok;
}

}  // namespace catalyst::vpapi
