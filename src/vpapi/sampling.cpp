#include "vpapi/sampling.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <stdexcept>
#include <unordered_map>

#include "core/contract.hpp"
#include "core/parallel.hpp"
#include "obs/trace.hpp"
#include "pmu/measure.hpp"
#include "vpapi/scheduler.hpp"

namespace catalyst::vpapi {

const char* to_string(CollectionMode mode) noexcept {
  switch (mode) {
    case CollectionMode::counting: return "counting";
    case CollectionMode::sampling: return "sampling";
    case CollectionMode::strobed: return "strobed";
  }
  return "unknown";
}

CollectionMode collection_mode_from_string(const std::string& name) {
  if (name == "counting") return CollectionMode::counting;
  if (name == "sampling") return CollectionMode::sampling;
  if (name == "strobed") return CollectionMode::strobed;
  throw std::invalid_argument("unknown collection mode '" + name +
                              "' (counting|sampling|strobed)");
}

void SampleSchedule::validate() const {
  CATALYST_REQUIRE_AS(kernel_span_ns > 0, std::invalid_argument,
                      "SampleSchedule: kernel_span_ns must be positive");
  CATALYST_REQUIRE_AS(period_ns > 0, std::invalid_argument,
                      "SampleSchedule: period_ns must be positive");
  CATALYST_REQUIRE_AS(short_period_ns > 0, std::invalid_argument,
                      "SampleSchedule: short_period_ns must be positive");
  CATALYST_REQUIRE_AS(short_period_ns <= period_ns, std::invalid_argument,
                      "SampleSchedule: the strobed short period must not "
                      "exceed the long period");
}

std::vector<std::uint64_t> sample_times(const SampleSchedule& schedule,
                                        CollectionMode mode,
                                        std::uint64_t offset_ns,
                                        std::uint64_t total_ns) {
  std::vector<std::uint64_t> times;
  if (total_ns == 0) return times;
  if (mode != CollectionMode::counting) {
    // Strobed alternates long, short, long, ... (perf's period/alt-period);
    // plain sampling is the degenerate all-long schedule.
    std::uint64_t t = offset_ns;
    bool long_next = true;
    while (true) {
      t += (mode == CollectionMode::strobed && !long_next)
               ? schedule.short_period_ns
               : schedule.period_ns;
      long_next = !long_next;
      if (t >= total_ns) break;
      times.push_back(t);
    }
  }
  // The closing snapshot at the run's end is unconditional: it carries the
  // aggregate totals and anchors the last boundary exactly.
  times.push_back(total_ns);
  return times;
}

std::uint64_t dither_offset(const pmu::Machine& machine,
                            const SampleSchedule& schedule,
                            CollectionMode mode, std::uint64_t run_id) {
  if (!schedule.dither) return 0;
  // Keyed like a noise draw: (machine seed, stream tag, mode, run id) so
  // the offset reproduces in isolation and never collides with the reading
  // streams (distinct tag).
  static const std::uint64_t kStreamTag =
      pmu::fnv1a("catalyst.sampling.dither");
  const std::uint64_t key =
      machine.noise_seed() ^ kStreamTag ^
      pmu::mix64(run_id * 3u + static_cast<std::uint64_t>(mode));
  const double u = pmu::uniform_from_key(pmu::mix64(key));
  return static_cast<std::uint64_t>(
      u * static_cast<double>(schedule.period_ns));
}

std::vector<std::vector<double>> reconstruct_run_phases(
    const RunTrace& run, std::uint64_t kernel_span_ns, std::size_t kernels) {
  CATALYST_REQUIRE_AS(kernel_span_ns > 0 && kernels > 0,
                      std::invalid_argument,
                      "reconstruct_run_phases: empty kernel geometry");
  CATALYST_REQUIRE_AS(!run.samples.empty(), std::invalid_argument,
                      "reconstruct_run_phases: trace has no samples");
  const std::size_t n = run.events.size();
  const std::uint64_t total_ns = kernel_span_ns * kernels;
  CATALYST_REQUIRE_AS(run.samples.back().t_ns == total_ns,
                      std::invalid_argument,
                      "reconstruct_run_phases: trace does not close at the "
                      "run's end");
  std::uint64_t prev_t = 0;
  for (const SamplePoint& s : run.samples) {
    CATALYST_REQUIRE_AS(s.values.size() == n, std::invalid_argument,
                        "reconstruct_run_phases: sample width mismatch");
    CATALYST_REQUIRE_AS(s.t_ns > prev_t || (&s == &run.samples.front() &&
                                            s.t_ns > 0),
                        std::invalid_argument,
                        "reconstruct_run_phases: non-increasing sample "
                        "times");
    prev_t = s.t_ns;
  }

  // Cumulative count at each nominal kernel boundary, linearly
  // interpolated between the bracketing samples (the run start is an
  // implicit (t=0, v=0) sample).  Phase k's value is the difference of
  // consecutive boundary estimates; since the cumulative samples are
  // non-decreasing, so is the interpolant, and every phase value is >= 0.
  std::vector<std::vector<double>> out(n, std::vector<double>(kernels, 0.0));
  std::vector<double> prev_boundary(n, 0.0);
  std::vector<double> boundary(n, 0.0);
  std::size_t si = 0;
  for (std::size_t k = 1; k <= kernels; ++k) {
    const std::uint64_t boundary_t = kernel_span_ns * k;
    while (run.samples[si].t_ns < boundary_t) ++si;  // closes at total_ns
    const std::uint64_t t1 = si == 0 ? 0 : run.samples[si - 1].t_ns;
    const std::uint64_t t2 = run.samples[si].t_ns;
    const double w = static_cast<double>(boundary_t - t1) /
                     static_cast<double>(t2 - t1);
    for (std::size_t e = 0; e < n; ++e) {
      const double v1 = si == 0 ? 0.0 : run.samples[si - 1].values[e];
      const double v2 = run.samples[si].values[e];
      boundary[e] = v1 + (v2 - v1) * w;
      out[e][k - 1] = boundary[e] - prev_boundary[e];
    }
    std::swap(prev_boundary, boundary);
  }
  return out;
}

SampledCollectionResult collect_sampled(
    const pmu::Machine& machine, const std::vector<std::string>& event_names,
    const std::vector<pmu::Activity>& activities, std::size_t repetitions,
    CollectionMode mode, const SampleSchedule& schedule, int threads,
    faults::Clock* clock, std::size_t repetition_offset) {
  CATALYST_REQUIRE_AS(repetitions != 0, std::invalid_argument,
                      "collect_sampled: need at least one repetition");
  CATALYST_REQUIRE_AS(threads >= 1, std::invalid_argument,
                      "collect_sampled: need at least one thread");
  schedule.validate();

  SampledCollectionResult result;
  result.trace.mode = mode;
  result.trace.schedule = schedule;
  result.trace.kernels = activities.size();
  if (mode == CollectionMode::counting) {
    result.data = collect(machine, event_names, activities, repetitions,
                          threads);
    return result;
  }
  CATALYST_REQUIRE_AS(!activities.empty(), std::invalid_argument,
                      "collect_sampled: no kernel activities");

  std::vector<std::size_t> event_indices;
  event_indices.reserve(event_names.size());
  for (const auto& name : event_names) {
    const auto idx = machine.find(name);
    if (!idx) {
      throw std::invalid_argument("collect_sampled: unknown event " + name);
    }
    event_indices.push_back(*idx);
  }
  const pmu::IdealTable ideals(machine, activities, event_indices);
  const EventSetSchedule sched = schedule_event_sets(machine, event_names);
  const std::size_t n_groups = sched.runs.size();
  const std::size_t n_kernels = activities.size();
  const std::uint64_t total_ns = schedule.kernel_span_ns * n_kernels;

  std::unordered_map<std::string, std::size_t> row_of;
  row_of.reserve(event_names.size());
  for (std::size_t e = 0; e < event_names.size(); ++e) {
    row_of.emplace(event_names[e], e);
  }

  result.data.event_names = event_names;
  result.data.runs_per_repetition = n_groups;
  result.data.repetitions.resize(repetitions);
  for (auto& rep : result.data.repetitions) {
    rep.values.resize(event_names.size());
  }
  result.trace.runs.resize(repetitions * n_groups);

  obs::Span collect_span("vpapi.collect_sampled");
  collect_span.arg("mode", to_string(mode));
  collect_span.arg("events", event_names.size());
  collect_span.arg("repetitions", repetitions);
  collect_span.arg("groups", n_groups);

  auto do_unit = [&](std::size_t unit) {
    const std::size_t rep = unit / n_groups;
    const std::size_t g = unit % n_groups;
    const std::uint64_t run_id =
        (repetition_offset + rep) * n_groups + g;
    const std::vector<std::string>& members = sched.runs[g].events;
    const std::size_t n = members.size();

    // Whole-kernel readings at this unit's noise coordinates -- identical
    // to what a counting-mode session would read -- and their prefix sums
    // over the kernel sequence.
    std::vector<std::vector<double>> prefix(n);
    std::vector<std::vector<double>> readings(n);
    for (std::size_t e = 0; e < n; ++e) {
      const std::size_t mi = *machine.find(members[e]);
      const pmu::EventDefinition& event = machine.event(mi);
      readings[e].reserve(n_kernels);
      prefix[e].assign(n_kernels + 1, 0.0);
      for (std::size_t k = 0; k < n_kernels; ++k) {
        const double r = pmu::measure_from_ideal(
            machine, event, ideals.ideal(mi, k), run_id, k);
        readings[e].push_back(r);
        prefix[e][k + 1] = prefix[e][k] + r;
      }
    }

    // Virtual-time pacing: one Clock sleep per kernel span.  Trace values
    // and timestamps are pure arithmetic over the schedule -- the clock
    // only makes real campaigns strobe in wall time (FakeClock in tests).
    if (clock != nullptr) {
      for (std::size_t k = 0; k < n_kernels; ++k) {
        clock->sleep_for(
            std::chrono::nanoseconds(schedule.kernel_span_ns));
      }
    }

    RunTrace trace;
    trace.repetition = repetition_offset + rep;
    trace.run_id = run_id;
    trace.events = members;
    const std::uint64_t offset =
        dither_offset(machine, schedule, mode, run_id);
    const std::vector<std::uint64_t> times =
        sample_times(schedule, mode, offset, total_ns);
    trace.samples.reserve(times.size());
    for (const std::uint64_t t : times) {
      SamplePoint point;
      point.t_ns = t;
      point.values.reserve(n);
      const std::uint64_t k_full = t / schedule.kernel_span_ns;
      const std::size_t k_idx =
          static_cast<std::size_t>(std::min<std::uint64_t>(k_full,
                                                           n_kernels));
      const double frac =
          k_idx >= n_kernels
              ? 0.0
              : static_cast<double>(t - k_full * schedule.kernel_span_ns) /
                    static_cast<double>(schedule.kernel_span_ns);
      for (std::size_t e = 0; e < n; ++e) {
        // Real counters hold integers: the in-flight kernel's partial
        // contribution is truncated, which is exactly the quantization a
        // timer-driven sampler sees.
        const double partial =
            k_idx >= n_kernels ? 0.0 : frac * readings[e][k_idx];
        point.values.push_back(std::floor(prefix[e][k_idx] + partial));
      }
      trace.samples.push_back(std::move(point));
    }

    const std::vector<std::vector<double>> rows =
        reconstruct_run_phases(trace, schedule.kernel_span_ns, n_kernels);
    RepetitionData& dest = result.data.repetitions[rep];
    for (std::size_t e = 0; e < n; ++e) {
      dest.values[row_of.at(members[e])] = rows[e];
    }
    result.trace.runs[unit] = std::move(trace);
  };

  try {
    core::parallel_for(repetitions * n_groups, threads, do_unit);
  } catch (...) {
    // As in collect(): no partial sweep data outlives a worker failure.
    result.data.repetitions.clear();
    result.trace.runs.clear();
    throw;
  }
  return result;
}

}  // namespace catalyst::vpapi
