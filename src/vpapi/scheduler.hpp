// catalyst/vpapi -- the event-set scheduler.
//
// Grouped collection re-runs the whole benchmark once per event group, so
// the number of runs IS the cost model: total kernel executions =
// runs x kernels x repetitions.  With no placement constraints the optimum
// is trivially ceil(events / counters) and the naive in-order chunking
// (schedule_groups) achieves it.  Real PMUs are not that uniform: some
// events are pinned to a fixed counter or a subset of the programmable
// slots (pmu::EventDefinition::slot_mask).  A constraint-blind scheduler
// then either produces an unprogrammable set or -- the next-fit baseline
// below -- burns a fresh run every time the current one's pinned slot is
// taken, leaving other slots idle.
//
// schedule_event_sets() is a first-fit bin packer over (run, slot) cells:
// events are placed in input order into the FIRST run with a free slot the
// event's mask allows (lowest such slot).  For unconstrained event lists
// this degenerates to exactly the naive chunking -- same groups, same
// order, same run ids, bit-identical noise draws -- which is what keeps the
// paper-table outputs byte-stable.  With constraints it backfills the holes
// next-fit leaves behind; the property tests pin a case where that saves
// >= 2 runs.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "pmu/machine.hpp"

namespace catalyst::vpapi {

/// One benchmark re-run: the events measured in it and, parallel to them,
/// the physical slot each one is programmed on.  Slot assignments are what
/// proves the run is feasible under the machine's masks; within a run no
/// slot appears twice.
struct ScheduledRun {
  std::vector<std::string> events;
  std::vector<std::size_t> slots;
};

/// A full schedule for one collection sweep.
struct EventSetSchedule {
  std::vector<ScheduledRun> runs;
  /// What the constraint-respecting next-fit baseline (the "round-robin"
  /// multiplexer generalised to masks) would have needed.  runs.size() <=
  /// baseline_runs always; the gap is the bin-packing win.
  std::size_t baseline_runs = 0;

  /// Total events across all runs (every input event exactly once).
  std::size_t scheduled_events() const;
};

/// First-fit bin packing of `event_names` onto runs of the machine's
/// physical counters, honouring each event's slot_mask.  Placement is in
/// input order, so for fully unconstrained inputs the runs equal
/// schedule_groups() exactly.  Throws std::invalid_argument on unknown
/// event names (masks themselves are validated at build_machine time).
EventSetSchedule schedule_event_sets(
    const pmu::Machine& machine, const std::vector<std::string>& event_names);

/// The baseline cost: next-fit (only the most recent run is considered;
/// a conflict opens a new run).  Exposed for the property tests and the
/// scheduler cost-model docs.
std::size_t next_fit_run_count(const pmu::Machine& machine,
                               const std::vector<std::string>& event_names);

}  // namespace catalyst::vpapi
