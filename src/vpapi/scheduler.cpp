#include "vpapi/scheduler.hpp"

#include <stdexcept>

#include "core/contract.hpp"

namespace catalyst::vpapi {

namespace {

/// The event's allowed-slot mask clipped to the machine's counters; an
/// unconstrained event (mask 0) may use every slot.
std::uint64_t allowed_mask(const pmu::EventDefinition& event,
                           std::size_t counters) {
  const std::uint64_t machine_slots =
      counters >= 64 ? ~std::uint64_t{0}
                     : (std::uint64_t{1} << counters) - 1;
  return event.slot_mask == 0 ? machine_slots
                              : (event.slot_mask & machine_slots);
}

std::size_t resolve(const pmu::Machine& machine, const std::string& name,
                    const char* caller) {
  const auto idx = machine.find(name);
  if (!idx) {
    throw std::invalid_argument(std::string(caller) + ": unknown event " +
                                name);
  }
  return *idx;
}

}  // namespace

std::size_t EventSetSchedule::scheduled_events() const {
  std::size_t n = 0;
  for (const ScheduledRun& run : runs) n += run.events.size();
  return n;
}

EventSetSchedule schedule_event_sets(
    const pmu::Machine& machine, const std::vector<std::string>& event_names) {
  const std::size_t counters = machine.physical_counters();
  CATALYST_REQUIRE_AS(counters >= 1, std::invalid_argument,
                      "schedule_event_sets: machine has no counters");
  EventSetSchedule schedule;
  // free[r] = bitmask of still-open slots in run r.
  std::vector<std::uint64_t> free_slots;
  for (const auto& name : event_names) {
    const std::size_t idx = resolve(machine, name, "schedule_event_sets");
    const std::uint64_t mask = allowed_mask(machine.event(idx), counters);
    CATALYST_INVARIANT(mask != 0,
                       "schedule_event_sets: event '" + name +
                           "' has no schedulable slot (validate_spec missed "
                           "it)");
    bool placed = false;
    for (std::size_t r = 0; r < schedule.runs.size() && !placed; ++r) {
      const std::uint64_t usable = free_slots[r] & mask;
      if (usable == 0) continue;
      // Lowest allowed free slot -- a deterministic tie-break.
      const std::uint64_t bit = usable & (~usable + 1);
      std::size_t slot = 0;
      while ((bit >> slot) != 1) ++slot;
      free_slots[r] &= ~bit;
      schedule.runs[r].events.push_back(name);
      schedule.runs[r].slots.push_back(slot);
      placed = true;
    }
    if (!placed) {
      const std::uint64_t all =
          counters >= 64 ? ~std::uint64_t{0}
                         : (std::uint64_t{1} << counters) - 1;
      const std::uint64_t bit = mask & (~mask + 1);
      std::size_t slot = 0;
      while ((bit >> slot) != 1) ++slot;
      schedule.runs.emplace_back();
      schedule.runs.back().events.push_back(name);
      schedule.runs.back().slots.push_back(slot);
      free_slots.push_back(all & ~bit);
    }
  }
  schedule.baseline_runs = next_fit_run_count(machine, event_names);
  CATALYST_ENSURE(schedule.runs.size() <= schedule.baseline_runs ||
                      event_names.empty(),
                  "schedule_event_sets: packed worse than next-fit");
  return schedule;
}

std::size_t next_fit_run_count(const pmu::Machine& machine,
                               const std::vector<std::string>& event_names) {
  const std::size_t counters = machine.physical_counters();
  CATALYST_REQUIRE_AS(counters >= 1, std::invalid_argument,
                      "next_fit_run_count: machine has no counters");
  std::size_t runs = 0;
  std::uint64_t free_slots = 0;  // of the current (last) run only
  for (const auto& name : event_names) {
    const std::size_t idx = resolve(machine, name, "next_fit_run_count");
    const std::uint64_t mask = allowed_mask(machine.event(idx), counters);
    std::uint64_t usable = free_slots & mask;
    if (usable == 0) {
      ++runs;
      free_slots = counters >= 64 ? ~std::uint64_t{0}
                                  : (std::uint64_t{1} << counters) - 1;
      usable = free_slots & mask;
    }
    const std::uint64_t bit = usable & (~usable + 1);
    free_slots &= ~bit;
  }
  return runs;
}

}  // namespace catalyst::vpapi
