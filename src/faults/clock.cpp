// The single place in the source tree that spends real wall time on retry
// pacing, and (with src/obs) one of the only places allowed to read the raw
// steady clock.  Everything else must take a faults::Clock so tests can
// inject FakeClock (enforced by catalyst-lint's sleep-in-retry and
// raw-timing rules, which allow-list exactly these files).
#include "faults/faults.hpp"

#include <thread>

namespace catalyst::faults {

void RealClock::sleep_for(std::chrono::nanoseconds d) {
  if (d.count() <= 0) return;
  std::this_thread::sleep_for(d);
}

std::chrono::nanoseconds RealClock::now() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
      std::chrono::steady_clock::now().time_since_epoch());
}

}  // namespace catalyst::faults
