// The single place in the source tree that spends real wall time on retry
// pacing.  Everything else must take a faults::Clock so tests can inject
// FakeClock (enforced by catalyst-lint's sleep-in-retry rule, which
// allow-lists exactly this file).
#include "faults/faults.hpp"

#include <thread>

namespace catalyst::faults {

void RealClock::sleep_for(std::chrono::nanoseconds d) {
  if (d.count() <= 0) return;
  std::this_thread::sleep_for(d);
}

}  // namespace catalyst::faults
