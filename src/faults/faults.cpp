#include "faults/faults.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>
#include <stdexcept>

#include "core/contract.hpp"
#include "pmu/measure.hpp"

namespace catalyst::faults {

std::string to_string(FaultKind kind) {
  switch (kind) {
    case FaultKind::wrap: return "wrap";
    case FaultKind::stuck: return "stuck";
    case FaultKind::dropped_reading: return "drop";
    case FaultKind::spike: return "spike";
    case FaultKind::add_event_busy: return "add_event_busy";
    case FaultKind::start_busy: return "start_busy";
  }
  return "unknown";
}

double FaultRates::rate(FaultKind kind) const noexcept {
  switch (kind) {
    case FaultKind::wrap: return wrap;
    case FaultKind::stuck: return stuck;
    case FaultKind::dropped_reading: return dropped_reading;
    case FaultKind::spike: return spike;
    case FaultKind::add_event_busy: return add_event_busy;
    case FaultKind::start_busy: return start_busy;
  }
  return 0.0;
}

bool FaultRates::any() const noexcept {
  return wrap > 0.0 || stuck > 0.0 || dropped_reading > 0.0 || spike > 0.0 ||
         add_event_busy > 0.0 || start_busy > 0.0;
}

const FaultRates& FaultPlan::rates_for(const std::string& event_name) const {
  const auto it = per_event.find(event_name);
  return it == per_event.end() ? rates : it->second;
}

bool FaultPlan::enabled() const noexcept {
  if (rates.any()) return true;
  for (const auto& [name, r] : per_event) {
    if (r.any()) return true;
  }
  return false;
}

FaultPlan FaultPlan::mid_rate(std::uint64_t seed) {
  FaultPlan plan;
  plan.seed = seed;
  plan.rates.dropped_reading = 0.008;  // together ~1% transient read failure
  plan.rates.stuck = 0.002;
  plan.rates.wrap = 0.001;
  plan.rates.spike = 0.001;
  plan.rates.add_event_busy = 0.01;
  plan.rates.start_busy = 0.005;
  return plan;
}

bool fires(const FaultPlan& plan, std::uint64_t event_hash, FaultKind kind,
           std::uint64_t run, std::uint64_t kernel, std::uint64_t attempt,
           double rate) {
  if (rate <= 0.0) return false;
  if (rate >= 1.0) return true;
  // Mirrors the noise-stream keying in pmu/measure.cpp: every coordinate is
  // finalized separately so structured ids (consecutive runs/kernels) do not
  // cancel, and the kind gets its own salt so the per-kind decisions for one
  // reading are independent draws.
  const std::uint64_t key =
      plan.seed ^ event_hash ^ pmu::mix64(run + 1) ^
      pmu::mix64(kernel + 0x20002) ^ pmu::mix64(attempt + 0x30003) ^
      pmu::mix64(static_cast<std::uint64_t>(kind) + 0x40004);
  return pmu::uniform_from_key(key) < rate;
}

double counter_wrap_span(int width_bits) {
  CATALYST_REQUIRE_AS(width_bits > 0 && width_bits <= 53,
                      std::invalid_argument,
                      "counter_wrap_span: width must be in (0, 53]");
  return std::ldexp(1.0, width_bits);
}

double wrap_reading(const FaultPlan& plan, double reading) {
  return reading - counter_wrap_span(plan.counter_width_bits);
}

double unwrap_reading(int width_bits, double reading,
                      std::uint64_t* wraps_corrected) {
  const double span = counter_wrap_span(width_bits);
  while (reading < 0.0) {
    reading += span;
    if (wraps_corrected != nullptr) ++*wraps_corrected;
  }
  return reading;
}

namespace {

/// Rates are probabilities; anything outside [0, 1] is a spec typo, not a
/// plan -- reject it instead of silently clamping.
double parse_rate(const std::string& key, const std::string& val) {
  const double rate = std::stod(val);
  if (!(rate >= 0.0 && rate <= 1.0)) {
    throw std::invalid_argument("parse_fault_plan: rate '" + key +
                                "' must be in [0, 1], got '" + val + "'");
  }
  return rate;
}

}  // namespace

FaultPlan parse_fault_plan(const std::string& spec) {
  FaultPlan plan;
  std::stringstream ss(spec);
  std::string token;
  bool first = true;
  while (std::getline(ss, token, ',')) {
    if (token.empty()) continue;
    if (first && token == "off") {
      first = false;
      continue;  // all-zero plan; further tokens may still adjust it
    }
    if (first && token == "mid") {
      plan = FaultPlan::mid_rate();
      first = false;
      continue;
    }
    first = false;
    const auto eq = token.find('=');
    if (eq == std::string::npos) {
      throw std::invalid_argument("parse_fault_plan: expected key=value, got '" +
                                  token + "'");
    }
    const std::string key = token.substr(0, eq);
    const std::string val = token.substr(eq + 1);
    try {
      if (key == "seed") {
        plan.seed = static_cast<std::uint64_t>(std::stoull(val));
      } else if (key == "width") {
        plan.counter_width_bits = std::stoi(val);
      } else if (key == "wrap") {
        plan.rates.wrap = parse_rate(key, val);
      } else if (key == "stuck") {
        plan.rates.stuck = parse_rate(key, val);
      } else if (key == "drop") {
        plan.rates.dropped_reading = parse_rate(key, val);
      } else if (key == "spike") {
        plan.rates.spike = parse_rate(key, val);
      } else if (key == "add") {
        plan.rates.add_event_busy = parse_rate(key, val);
      } else if (key == "start") {
        plan.rates.start_busy = parse_rate(key, val);
      } else if (key == "plausible_max") {
        plan.plausible_max = std::stod(val);
      } else {
        throw std::invalid_argument("parse_fault_plan: unknown key '" + key +
                                    "'");
      }
    } catch (const std::invalid_argument&) {
      throw;
    } catch (const std::exception&) {
      throw std::invalid_argument("parse_fault_plan: bad value for '" + key +
                                  "': '" + val + "'");
    }
  }
  return plan;
}

std::string describe(const FaultPlan& plan) {
  std::ostringstream os;
  os << "seed=" << plan.seed << " width=" << plan.counter_width_bits
     << " wrap=" << plan.rates.wrap << " stuck=" << plan.rates.stuck
     << " drop=" << plan.rates.dropped_reading
     << " spike=" << plan.rates.spike << " add=" << plan.rates.add_event_busy
     << " start=" << plan.rates.start_busy;
  if (!plan.per_event.empty()) {
    os << " (+" << plan.per_event.size() << " per-event override"
       << (plan.per_event.size() == 1 ? "" : "s") << ")";
  }
  return os.str();
}

std::chrono::nanoseconds Backoff::delay(std::uint64_t attempt) const noexcept {
  // min(cap, base * 2^attempt) without overflowing the shift.
  const std::uint64_t shift = std::min<std::uint64_t>(attempt, 62);
  const double scaled =
      static_cast<double>(base.count()) * std::ldexp(1.0, static_cast<int>(shift));
  const double capped = std::min(scaled, static_cast<double>(cap.count()));
  return std::chrono::nanoseconds(static_cast<std::int64_t>(capped));
}

}  // namespace catalyst::faults
