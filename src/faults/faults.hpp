// catalyst/faults -- deterministic seeded fault injection for the PMU stack.
//
// Real hardware-counter collection fails in stereotyped ways: 48-bit
// counters wrap, counters freeze, reads are dropped by the kernel driver,
// interrupts corrupt a reading with a spurious spike, and event-set
// programming hits transient EBUSY/ECNFLCT conditions.  This layer lets the
// collection stack experience all of those ON DEMAND, reproducibly: every
// fault decision is a pure function of
//   (plan seed, event name hash, fault kind, run id, kernel index, attempt)
// so a campaign replays bit-for-bit at any thread count, and a RETRY of the
// same reading (attempt + 1) sees an independent draw -- exactly the
// property a retrying driver needs for transient faults to clear.
//
// The plan is configuration only (immutable, shared across threads); no
// fault state lives here.  Injection happens inside vpapi::Session (the
// counter read engine) and recovery inside vpapi::collect_resilient.
#pragma once

#include <array>
#include <chrono>
#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "sync/annotations.hpp"
#include "sync/mutex.hpp"

namespace catalyst::faults {

/// The fault taxonomy (see DESIGN.md "Robustness").
enum class FaultKind {
  wrap = 0,         ///< 48-bit counter wraparound: delta reported short by 2^w.
  stuck,            ///< Frozen counter: reading does not advance (reads 0).
  dropped_reading,  ///< Driver dropped the read: typed transient error.
  spike,            ///< Spurious corruption: reading gains a huge spike.
  add_event_busy,   ///< Transient PAPI_EBUSY/ECNFLCT from add_event.
  start_busy,       ///< Transient failure starting the event set.
};
inline constexpr std::size_t kNumFaultKinds = 6;

/// Short stable name ("wrap", "stuck", ...) used in reports.
std::string to_string(FaultKind kind);

/// Per-fault-kind probabilities, each evaluated independently per reading
/// (or per add_event/start call).  All zero = no faults.
struct FaultRates {
  double wrap = 0.0;
  double stuck = 0.0;
  double dropped_reading = 0.0;
  double spike = 0.0;
  double add_event_busy = 0.0;
  double start_busy = 0.0;

  double rate(FaultKind kind) const noexcept;
  bool any() const noexcept;
  bool operator==(const FaultRates&) const = default;
};

/// A complete, immutable fault campaign configuration.
struct FaultPlan {
  std::uint64_t seed = 0;  ///< Decorrelates whole campaigns.
  FaultRates rates;        ///< Default rates for every event.
  /// Per-event overrides (by raw event name); events absent here use
  /// `rates`.  An override with e.g. dropped_reading = 1.0 makes the event
  /// unrecoverable -- the quarantine path's test vector.
  std::unordered_map<std::string, FaultRates> per_event;
  /// Physical counter register width; wrapped deltas are short by 2^width.
  int counter_width_bits = 48;
  /// Plausibility ceiling for the resilient driver's reading screen.  The
  /// simulated machines' largest ideal readings are < 2^40; spikes land far
  /// above this, legitimate readings never do.
  double plausible_max = 35184372088832.0;  // 2^45
  /// Magnitude added to a reading by a spike fault (well above the screen).
  double spike_magnitude = 70368744177664.0;  // 2^46

  const FaultRates& rates_for(const std::string& event_name) const;
  /// True when any rate anywhere (default or override) is non-zero.
  bool enabled() const noexcept;

  /// The canonical mid-rate plan used by the `fault_pipeline` CI job:
  /// ~1% transient read failure and ~0.1% wrap/spike per reading --
  /// realistic rates under which Tables V-VIII must reproduce exactly.
  static FaultPlan mid_rate(std::uint64_t seed = 0xFA01);
};

/// Deterministic fault decision: does `kind` fire for this reading?
/// Pure function of (plan.seed, event_hash, kind, run, kernel, attempt);
/// callers pass the event's fnv1a name hash and the probability they
/// already resolved via rates_for (so per-event overrides apply).
bool fires(const FaultPlan& plan, std::uint64_t event_hash, FaultKind kind,
           std::uint64_t run, std::uint64_t kernel, std::uint64_t attempt,
           double rate);

/// 2^width_bits as a double (exact for width <= 53).
double counter_wrap_span(int width_bits);

/// Applies a wraparound to a reading: the per-kernel delta loses one full
/// counter span, going negative -- the uncorrected value a naive
/// before/after differencing of a wrapped 48-bit register produces.
double wrap_reading(const FaultPlan& plan, double reading);

/// Width-aware delta decoding: a negative delta means the register wrapped
/// between the two reads; add back counter spans until non-negative.
/// Recovers the true reading exactly (readings are integers < 2^53).
/// `wraps_corrected`, when given, is incremented per span added.
double unwrap_reading(int width_bits, double reading,
                      std::uint64_t* wraps_corrected = nullptr);

/// One injected fault, as logged by the session's read engine.
struct FaultRecord {
  FaultKind kind = FaultKind::wrap;
  /// Machine event index the fault hit; SIZE_MAX for set-level faults
  /// (start_busy is not tied to one event).
  std::size_t event_index = static_cast<std::size_t>(-1);
  std::uint64_t run = 0;
  std::uint64_t kernel = 0;
  std::uint64_t attempt = 0;

  bool operator==(const FaultRecord&) const = default;
};

/// Parses a CLI fault spec.  Accepted forms:
///   "off"                     -> disabled plan (all rates zero)
///   "mid"                     -> FaultPlan::mid_rate()
///   "mid,seed=7,drop=0.02"    -> mid-rate base with overrides
///   "wrap=0.001,spike=0.001"  -> zero base with the listed rates
/// Keys: seed, width, wrap, stuck, drop, spike, add, start, plausible_max.
/// Throws std::invalid_argument on unknown keys or malformed numbers.
FaultPlan parse_fault_plan(const std::string& spec);

/// One-line human-readable summary of a plan ("seed=64257 wrap=0.001 ...").
std::string describe(const FaultPlan& plan);

// --- retry pacing ----------------------------------------------------------

/// Capped exponential backoff schedule: attempt n sleeps
/// min(cap, base * 2^n).  Pure arithmetic; sleeping goes through Clock.
struct Backoff {
  std::chrono::nanoseconds base{std::chrono::microseconds(50)};
  std::chrono::nanoseconds cap{std::chrono::milliseconds(5)};

  std::chrono::nanoseconds delay(std::uint64_t attempt) const noexcept;
};

/// Injectable time source for retry pacing and span timestamps.  Production
/// uses RealClock; tests use FakeClock so no wall time is ever spent (and so
/// the backoff schedule and span timings can be asserted exactly).
class Clock {
 public:
  virtual ~Clock() = default;
  virtual void sleep_for(std::chrono::nanoseconds d) = 0;
  /// Monotonic timestamp (obs::Span start/end times come from here).
  virtual std::chrono::nanoseconds now() = 0;
};

/// Actually sleeps / reads the steady clock.  The implementation file is the
/// single allow-listed caller of std::this_thread::sleep_for (catalyst-lint:
/// sleep-in-retry) and one of two allow-listed raw steady_clock readers
/// (catalyst-lint: raw-timing).
class RealClock final : public Clock {
 public:
  void sleep_for(std::chrono::nanoseconds d) override;
  std::chrono::nanoseconds now() override;
};

/// Records every requested delay and returns immediately; now() returns a
/// virtual time that advances by each "slept" delay plus 1us per query, so
/// spans timed against it get deterministic, strictly increasing stamps.
/// Thread-safe: the resilient driver's workers may back off concurrently.
class FakeClock final : public Clock {
 public:
  void sleep_for(std::chrono::nanoseconds d) override
      CATALYST_EXCLUDES(mutex_) {
    const sync::LockGuard lock(mutex_);
    delays_.push_back(d);
    virtual_now_ += d;
  }
  std::chrono::nanoseconds now() override CATALYST_EXCLUDES(mutex_) {
    const sync::LockGuard lock(mutex_);
    const std::chrono::nanoseconds t = virtual_now_;
    virtual_now_ += std::chrono::microseconds(1);
    return t;
  }
  std::vector<std::chrono::nanoseconds> delays() const
      CATALYST_EXCLUDES(mutex_) {
    const sync::LockGuard lock(mutex_);
    return delays_;
  }
  std::chrono::nanoseconds total() const CATALYST_EXCLUDES(mutex_) {
    const sync::LockGuard lock(mutex_);
    std::chrono::nanoseconds sum{0};
    for (auto d : delays_) sum += d;
    return sum;
  }

 private:
  mutable sync::Mutex mutex_{"faults.fake_clock"};
  std::vector<std::chrono::nanoseconds> delays_ CATALYST_GUARDED_BY(mutex_);
  std::chrono::nanoseconds virtual_now_ CATALYST_GUARDED_BY(mutex_){0};
};

}  // namespace catalyst::faults
