#include "cat/dcache.hpp"

#include <cmath>
#include <stdexcept>

#include "cachesim/pointer_chase.hpp"
#include "core/parallel.hpp"
#include "pmu/signals.hpp"

namespace catalyst::cat {

namespace {

struct SlotPlan {
  std::string regime;
  std::uint32_t stride = 0;
  std::uint64_t num_pointers = 0;
  // Idealized per-access expectations: L1DM, L1DH, L2DH, L3DH.
  double ideal[4] = {0, 0, 0, 0};
};

std::vector<SlotPlan> plan_slots(const DcacheOptions& opt) {
  opt.hierarchy.validate();
  if (opt.hierarchy.levels.size() != 3) {
    throw std::invalid_argument("dcache_benchmark: need a 3-level hierarchy");
  }
  if (opt.threads <= 0) {
    throw std::invalid_argument("dcache_benchmark: need >= 1 thread");
  }
  std::vector<SlotPlan> plans;
  for (std::uint32_t stride : opt.strides) {
    // Regimes L1 / L2 / L3: footprints at the given fractions of each
    // level's capacity (large enough to dominate the level below).
    for (std::size_t lvl = 0; lvl < 3; ++lvl) {
      for (double frac : opt.level_fractions) {
        SlotPlan p;
        p.regime = opt.hierarchy.levels[lvl].name;
        p.stride = stride;
        const double footprint =
            frac * static_cast<double>(opt.hierarchy.levels[lvl].size_bytes);
        p.num_pointers =
            std::max<std::uint64_t>(4, static_cast<std::uint64_t>(
                                           footprint / stride));
        p.ideal[0] = lvl == 0 ? 0.0 : 1.0;  // L1 demand misses
        p.ideal[1] = lvl == 0 ? 1.0 : 0.0;  // L1 demand hits
        p.ideal[2] = lvl == 1 ? 1.0 : 0.0;  // L2 demand hits
        p.ideal[3] = lvl == 2 ? 1.0 : 0.0;  // L3 demand hits
        plans.push_back(p);
      }
    }
    for (double mult : opt.memory_multiples) {
      SlotPlan p;
      p.regime = "M";
      p.stride = stride;
      const double footprint =
          mult * static_cast<double>(opt.hierarchy.levels[2].size_bytes);
      p.num_pointers = static_cast<std::uint64_t>(footprint / stride);
      p.ideal[0] = 1.0;
      plans.push_back(p);
    }
  }
  return plans;
}

}  // namespace

std::vector<DcacheSlotInfo> dcache_slot_info(const DcacheOptions& options) {
  std::vector<DcacheSlotInfo> info;
  for (const auto& p : plan_slots(options)) {
    info.push_back({p.regime, p.stride, p.num_pointers});
  }
  return info;
}

Benchmark dcache_benchmark(const DcacheOptions& options) {
  namespace sig = pmu::sig;
  const auto plans = plan_slots(options);

  Benchmark bench;
  bench.name = "cat-dcache";
  bench.basis.labels = {"L1DM", "L1DH", "L2DH", "L3DH"};
  bench.basis.ideal_events = {
      {"L1DM", "Ideal event: L1D demand misses",
       {{sig::l1d_demand_miss, 1.0}}, pmu::NoiseModel::none()},
      {"L1DH", "Ideal event: L1D demand hits",
       {{sig::l1d_demand_hit, 1.0}}, pmu::NoiseModel::none()},
      {"L2DH", "Ideal event: L2 demand hits",
       {{sig::l2d_demand_hit, 1.0}}, pmu::NoiseModel::none()},
      {"L3DH", "Ideal event: L3 demand hits",
       {{sig::l3d_demand_hit, 1.0}}, pmu::NoiseModel::none()},
  };
  bench.basis.e =
      linalg::Matrix(static_cast<linalg::index_t>(plans.size()), 4);

  bench.slots.resize(plans.size());
  for (std::size_t s = 0; s < plans.size(); ++s) {
    const auto& p = plans[s];
    for (int c = 0; c < 4; ++c) {
      bench.basis.e(static_cast<linalg::index_t>(s), c) = p.ideal[c];
    }
    auto& slot = bench.slots[s];
    slot.name = "dcache/" + p.regime + "/stride" + std::to_string(p.stride) +
                "/n" + std::to_string(p.num_pointers);
    slot.thread_activities.resize(static_cast<std::size_t>(options.threads));
  }

  // Each chase thread owns a private hierarchy (core-private L1/L2 and, for
  // simplicity, an L3 slice) and a disjoint buffer; threads are simulated
  // concurrently, one OS thread per chase thread.
  auto run_thread = [&](int t) {
    cachesim::CacheHierarchy hierarchy(options.hierarchy);
    cachesim::TlbHierarchy tlb(cachesim::TlbConfig::saphira());
    for (std::size_t s = 0; s < plans.size(); ++s) {
      const auto& p = plans[s];
      hierarchy.reset();
      tlb.reset();
      cachesim::ChaseConfig cfg;
      cfg.num_pointers = p.num_pointers;
      cfg.stride_bytes = p.stride;
      // Disjoint buffers: give each thread its own 1 GiB window.
      cfg.base_addr = static_cast<std::uint64_t>(t) << 30;
      cfg.seed = options.seed + static_cast<std::uint64_t>(t) * 1000 + s;
      cfg.warmup_traversals = options.warmup_traversals;
      cfg.measured_traversals = options.measured_traversals;
      const auto res = run_chase(hierarchy, cfg, &tlb);

      pmu::Activity act;
      const double accesses = static_cast<double>(res.total_accesses);
      act[sig::l1d_demand_hit] =
          static_cast<double>(res.level_stats[0].demand_hits);
      act[sig::l1d_demand_miss] =
          static_cast<double>(res.level_stats[0].demand_misses);
      act[sig::l2d_demand_hit] =
          static_cast<double>(res.level_stats[1].demand_hits);
      act[sig::l2d_demand_miss] =
          static_cast<double>(res.level_stats[1].demand_misses);
      act[sig::l3d_demand_hit] =
          static_cast<double>(res.level_stats[2].demand_hits);
      act[sig::l3d_demand_miss] = static_cast<double>(res.memory_accesses);
      act[sig::dtlb_hit] = static_cast<double>(res.tlb.l1_hits);
      act[sig::dtlb_miss] = static_cast<double>(res.tlb.l1_misses);
      act[sig::stlb_hit] = static_cast<double>(res.tlb.l2_hits);
      act[sig::dtlb_walk] = static_cast<double>(res.tlb.walks);
      act[sig::loads] = accesses;
      act[sig::instructions] = std::round(2.2 * accesses);
      act[sig::uops] = std::round(2.5 * accesses);
      // Latency-weighted cycle model: hits get cheaper service than misses.
      act[sig::cycles] = std::round(
          4.0 * static_cast<double>(res.level_stats[0].demand_hits) +
          14.0 * static_cast<double>(res.level_stats[1].demand_hits) +
          40.0 * static_cast<double>(res.level_stats[2].demand_hits) +
          180.0 * static_cast<double>(res.memory_accesses));
      bench.slots[s].thread_activities[static_cast<std::size_t>(t)] =
          std::move(act);
      // Every thread chases the same traversal count, so the normalizer is
      // identical across threads -- but letting them all store it is still
      // a data race.  Thread 0 is the designated writer.
      if (t == 0) bench.slots[s].normalizer = accesses;
    }
  };

  // One unit per simulated benchmark thread; each writes its own
  // thread_activities slot (the shared worker pool's determinism contract).
  core::parallel_for(static_cast<std::size_t>(options.threads),
                     options.threads,
                     [&](std::size_t t) { run_thread(static_cast<int>(t)); });
  return bench;
}

}  // namespace catalyst::cat
