#include "cat/cpu_flops.hpp"

#include <cmath>
#include <stdexcept>

#include "pmu/signals.hpp"

namespace catalyst::cat {

namespace {

// Outer repetitions of every loop: measurements are totals over many
// traversals (large counts, like real CAT runs), and the slot normalizer
// divides them back to the paper's per-iteration values.
constexpr double kOuterReps = 1000.0;

struct KernelKind {
  std::string width;  // "scalar", "128", "256", "512"
  std::string prec;   // "sp", "dp"
  bool fma;
};

// Basis/kernel order from Table I: SP non-FMA widths, DP non-FMA widths,
// SP FMA widths, DP FMA widths.
std::vector<KernelKind> kernel_kinds(const CpuFlopsOptions& options) {
  if (options.widths.empty() || options.precisions.empty()) {
    throw std::invalid_argument("cpu_flops_benchmark: empty Space");
  }
  std::vector<KernelKind> kinds;
  for (bool fma : {false, true}) {
    for (const auto& prec : options.precisions) {
      if (prec != "sp" && prec != "dp") {
        throw std::invalid_argument("cpu_flops_benchmark: bad precision " +
                                    prec);
      }
      for (const auto& width : options.widths) {
        if (width != "scalar" && width != "128" && width != "256" &&
            width != "512") {
          throw std::invalid_argument("cpu_flops_benchmark: bad width " +
                                      width);
        }
        kinds.push_back({width, prec, fma});
      }
    }
  }
  return kinds;
}

}  // namespace

std::string cpu_flops_label(const std::string& width, const std::string& prec,
                            bool fma) {
  std::string base = (prec == "sp") ? "S" : "D";
  base += (width == "scalar") ? "SCAL" : width;
  if (fma) base += "_FMA";
  return base;
}

Benchmark cpu_flops_benchmark(const CpuFlopsOptions& options) {
  namespace sig = pmu::sig;
  Benchmark bench;
  bench.name = "cat-cpu-flops";

  const auto kinds = kernel_kinds(options);
  const auto n_kernels = static_cast<linalg::index_t>(kinds.size());
  const linalg::index_t n_slots = n_kernels * 3;

  bench.basis.e = linalg::Matrix(n_slots, n_kernels);
  for (linalg::index_t k = 0; k < n_kernels; ++k) {
    const auto& kind = kinds[static_cast<std::size_t>(k)];
    bench.basis.labels.push_back(
        cpu_flops_label(kind.width, kind.prec, kind.fma));
    bench.basis.ideal_events.push_back(pmu::EventDefinition{
        bench.basis.labels.back(),
        "Ideal event: " + kind.width + "/" + kind.prec +
            (kind.fma ? "/fma" : "/non-fma") + " instructions",
        {{sig::fp(kind.width, kind.prec, kind.fma), 1.0}},
        pmu::NoiseModel::none()});
    // Fig. 1 structure: block repeated 12/24/48 times; two FP instructions
    // per block for non-FMA kernels, one for FMA kernels.
    const double instr_per_block = kind.fma ? 1.0 : 2.0;
    for (int loop = 0; loop < 3; ++loop) {
      const double iters = kFlopsLoopIters[loop];
      const double n_instr = iters * instr_per_block;
      // The ideal event for this kernel kind counts each of its
      // instructions exactly once (per-iteration normalized).
      bench.basis.e(k * 3 + loop, k) = n_instr;

      KernelSlot slot;
      slot.name = "cpu_flops/" + bench.basis.labels.back() + "/loop" +
                  std::to_string(static_cast<int>(iters));
      slot.normalizer = kOuterReps;

      pmu::Activity act;
      act[sig::fp(kind.width, kind.prec, kind.fma)] = n_instr * kOuterReps;
      // Loop-header side effects, the pollution of Section II: integer ops
      // and conditional branches proportional to the iteration count, plus
      // a small constant prologue.
      const double int_ops = 2.0 * iters + 6.0;
      const double cond_retired = iters + 1.0;
      const double cond_taken = iters;         // backedge taken, exit not
      const double cond_exec = iters + 3.0;    // a few squashed speculations
      const double uncond = 2.0;               // call + ret
      const double mispred = 1.0;              // the loop-exit misprediction
      const double loads = iters + 4.0;
      const double stores = 3.0;
      act[sig::int_ops] = int_ops * kOuterReps;
      act[sig::branch_cond_retired] = cond_retired * kOuterReps;
      act[sig::branch_cond_taken] = cond_taken * kOuterReps;
      act[sig::branch_cond_exec] = cond_exec * kOuterReps;
      act[sig::branch_uncond] = uncond * kOuterReps;
      act[sig::branch_mispredicted] = mispred * kOuterReps;
      act[sig::loads] = loads * kOuterReps;
      act[sig::stores] = stores * kOuterReps;
      act[sig::l1d_demand_hit] = loads * kOuterReps;  // resident working set
      const double instructions = n_instr + int_ops + cond_retired + uncond +
                                  loads + stores;
      act[sig::instructions] = instructions * kOuterReps;
      act[sig::uops] = std::round(instructions * 1.12) * kOuterReps;
      act[sig::cycles] =
          std::round(1.7 * n_instr + 1.1 * iters + 35.0) * kOuterReps;
      slot.thread_activities.push_back(std::move(act));
      bench.slots.push_back(std::move(slot));
    }
  }
  return bench;
}

}  // namespace catalyst::cat
