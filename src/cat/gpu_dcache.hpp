// catalyst/cat -- the GPU data-movement benchmark (extension category).
//
// MI250X-class GPUs expose their L2 ("TCC") hit/miss counters per channel;
// data-movement metrics (bytes to HBM, L2 hit rate) must be composed from
// them.  This benchmark pointer-chases buffers across the TCC capacity
// boundary on a simulated single-level GPU cache and publishes the
// expectation basis (TCCH, TCCM): per-access TCC hits and misses.
//
// Signatures include the derived "HBM Traffic Bytes" = line size x misses,
// the GPU half of the arithmetic-intensity story.
#pragma once

#include "cachesim/config.hpp"
#include "cat/benchmark.hpp"

namespace catalyst::cat {

/// Options for the GPU data-movement benchmark.
struct GpuDcacheOptions {
  /// Buffer footprints, two per regime (TCC = 8 MiB default: in-cache and
  /// memory-resident points).
  std::vector<std::uint64_t> footprints_bytes = {
      2u * 1024 * 1024,  4u * 1024 * 1024,   // fit the TCC
      24u * 1024 * 1024, 32u * 1024 * 1024,  // stream from HBM
  };
  std::uint32_t stride_bytes = 64;
  int warmup_traversals = 1;
  int measured_traversals = 1;
  std::uint64_t seed = 4242;
  /// TCC geometry (8 MiB, 16-way, 64 B lines by default).
  cachesim::LevelConfig tcc{"TCC", 8u * 1024u * 1024u, 64, 16};
};

/// Builds the benchmark: one slot per footprint and the 2-column basis.
Benchmark gpu_dcache_benchmark(const GpuDcacheOptions& options = {});

}  // namespace catalyst::cat
