// catalyst/cat -- the instruction-cache benchmark (CAT extension).
//
// The paper evaluates four CAT benchmarks; the real Counter Analysis
// Toolkit also ships an instruction-cache stressor, reproduced here as the
// library's fifth category.  Kernels are straight-line code blocks of
// controlled byte footprint executed in a loop: footprints inside the L1I
// fetch entirely from it, larger footprints stream from L2/L3.  The
// expectation basis spans (L1IM, L1IH, L2IH): L1 instruction-fetch demand
// misses/hits and instruction fetches served by L2.
//
// Ground truth comes from the cache simulator: the fetch stream (sequential
// line addresses over the footprint, looped) is replayed against an
// L1I/L2/L3 hierarchy.  Sequential cyclic access over an LRU cache larger
// than capacity is the worst case (near-zero hits), giving the sharp
// capacity cliffs instruction benchmarks are known for.
#pragma once

#include "cachesim/config.hpp"
#include "cat/benchmark.hpp"

namespace catalyst::cat {

/// Options for the instruction-cache benchmark.
struct IcacheOptions {
  /// Code footprints to sweep, two per regime by default
  /// (L1I = 32 KiB, L2 = 2 MiB, L3 = 8 MiB in the default hierarchy).
  std::vector<std::uint64_t> footprints_bytes = {
      8u * 1024,        16u * 1024,        // L1I regime
      256u * 1024,      1024u * 1024,      // L2 regime
      4u * 1024 * 1024, 6u * 1024 * 1024,  // L3 regime
  };
  std::uint32_t fetch_bytes = 64;  ///< Fetch-line granularity.
  int warmup_traversals = 1;
  int measured_traversals = 2;
  /// Instruction-side hierarchy; defaults to an L1I-flavoured Saphira
  /// (32 KiB / 8-way L1I, shared L2/L3).
  cachesim::HierarchyConfig hierarchy;

  IcacheOptions();
};

/// Builds the benchmark: one slot per footprint plus the 3-column basis.
Benchmark icache_benchmark(const IcacheOptions& options = {});

}  // namespace catalyst::cat
