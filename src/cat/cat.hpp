// catalyst/cat -- umbrella header for the CAT benchmark suite.
#pragma once

#include "cat/benchmark.hpp" // IWYU pragma: export
#include "cat/branch.hpp"    // IWYU pragma: export
#include "cat/cpu_flops.hpp" // IWYU pragma: export
#include "cat/dcache.hpp"    // IWYU pragma: export
#include "cat/mixed.hpp"     // IWYU pragma: export
#include "cat/gpu_flops.hpp" // IWYU pragma: export
#include "cat/gpu_dcache.hpp"// IWYU pragma: export
#include "cat/icache.hpp"    // IWYU pragma: export
