// catalyst/cat -- mixed validation workloads.
//
// The CAT benchmarks stress one concept at a time, which is what makes the
// analysis solvable -- but a metric definition is only trustworthy if it
// also holds on code that mixes concepts.  A MixedWorkload is a seeded
// random superposition of a benchmark's kernel activities (a stand-in for
// "a real application"), together with enough information to compute the
// ground-truth value of any metric signature on it via the benchmark's
// ideal events.
#pragma once

#include <cstdint>

#include "cat/benchmark.hpp"

namespace catalyst::cat {

/// One synthetic application: a weighted mix of benchmark kernels.
struct MixedWorkload {
  std::string name;
  pmu::Activity activity;          ///< Superposed ground-truth activity.
  std::vector<double> weights;     ///< One weight per benchmark slot.
};

/// Ground-truth value of a metric (signature coordinates over the
/// benchmark's basis) for an arbitrary activity, computed from the ideal
/// events: sum_k s[k] * ideal_k(activity).
double ground_truth_metric(const ExpectationBasis& basis,
                           std::span<const double> signature,
                           const pmu::Activity& activity);

/// Generates `count` mixed workloads from the benchmark's single-thread
/// slots: integer weights in [0, max_weight] drawn per slot with roughly
/// `density` of slots active.  Deterministic in `seed`.
std::vector<MixedWorkload> random_mixed_workloads(const Benchmark& benchmark,
                                                  std::size_t count,
                                                  std::uint64_t seed,
                                                  int max_weight = 5,
                                                  double density = 0.4);

}  // namespace catalyst::cat
