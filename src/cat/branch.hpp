// catalyst/cat -- the branching benchmark (Section III-D, Eq. 3).
//
// Eleven microkernels realize the paper's 11-row branching expectation
// basis over the five ideal events
//   CE (conditional executed), CR (conditional retired), T (taken),
//   D (unconditional/direct), M (mispredicted),
// with per-iteration values copied verbatim from Eq. 3.  Each kernel is a
// loop of `kBranchIters` iterations over a branch pattern: e.g. row 1 is a
// body with two conditional branches of which one is taken every other
// iteration (T = 1.5), row 10 adds an unconditional branch, row 11 is the
// bare loop backedge.
#pragma once

#include "cat/benchmark.hpp"

namespace catalyst::cat {

/// Iterations per branching kernel (even, so Eq. 3's half-counts come out
/// integral).
inline constexpr double kBranchIters = 1000.0;

/// The 11x5 per-iteration expectation matrix of Eq. 3 (rows: kernels,
/// columns: CE, CR, T, D, M).
linalg::Matrix branch_expectation_rows();

/// Builds the branching benchmark: 11 slots and the Eq. 3 basis.
Benchmark branch_benchmark();

}  // namespace catalyst::cat
