#include "cat/icache.hpp"

#include <cmath>
#include <stdexcept>

#include "cachesim/cache.hpp"
#include "pmu/signals.hpp"

namespace catalyst::cat {

IcacheOptions::IcacheOptions() {
  hierarchy.levels = {
      cachesim::LevelConfig{"L1I", 32u * 1024u, 64, 8},
      cachesim::LevelConfig{"L2", 2u * 1024u * 1024u, 64, 16},
      cachesim::LevelConfig{"L3", 8u * 1024u * 1024u, 64, 16},
  };
}

Benchmark icache_benchmark(const IcacheOptions& options) {
  namespace sig = pmu::sig;
  options.hierarchy.validate();
  if (options.hierarchy.levels.size() != 3) {
    throw std::invalid_argument("icache_benchmark: need a 3-level hierarchy");
  }
  if (options.footprints_bytes.empty()) {
    throw std::invalid_argument("icache_benchmark: no footprints");
  }
  if (options.measured_traversals <= 0 || options.warmup_traversals < 0) {
    throw std::invalid_argument("icache_benchmark: bad traversal counts");
  }

  Benchmark bench;
  bench.name = "cat-icache";
  bench.basis.labels = {"L1IM", "L1IH", "L2IH"};
  bench.basis.ideal_events = {
      {"L1IM", "Ideal event: L1I fetch misses",
       {{sig::l1i_miss, 1.0}}, pmu::NoiseModel::none()},
      {"L1IH", "Ideal event: L1I fetch hits",
       {{sig::l1i_hit, 1.0}}, pmu::NoiseModel::none()},
      {"L2IH", "Ideal event: instruction fetches served by L2",
       {{sig::l2i_hit, 1.0}}, pmu::NoiseModel::none()},
  };
  const auto n_slots =
      static_cast<linalg::index_t>(options.footprints_bytes.size());
  bench.basis.e = linalg::Matrix(n_slots, 3);

  const std::uint64_t l1i_capacity = options.hierarchy.levels[0].size_bytes;

  for (linalg::index_t s = 0; s < n_slots; ++s) {
    const std::uint64_t footprint =
        options.footprints_bytes[static_cast<std::size_t>(s)];
    const std::uint64_t lines =
        std::max<std::uint64_t>(1, footprint / options.fetch_bytes);

    // Idealized expectations: footprints within L1I hit it; larger ones
    // miss L1I on (nearly) every fetch.  Whether the L2 serves them is a
    // capacity question answered the same way one level up.
    const bool fits_l1 = footprint <= l1i_capacity;
    const bool fits_l2 = footprint <= options.hierarchy.levels[1].size_bytes;
    bench.basis.e(s, 0) = fits_l1 ? 0.0 : 1.0;
    bench.basis.e(s, 1) = fits_l1 ? 1.0 : 0.0;
    bench.basis.e(s, 2) = (!fits_l1 && fits_l2) ? 1.0 : 0.0;

    // Ground truth: replay the fetch stream on the simulator.
    cachesim::CacheHierarchy hierarchy(options.hierarchy);
    auto traverse = [&] {
      for (std::uint64_t l = 0; l < lines; ++l) {
        hierarchy.access(l * options.fetch_bytes);
      }
    };
    for (int t = 0; t < options.warmup_traversals; ++t) traverse();
    cachesim::LevelStats before[3];
    for (int lvl = 0; lvl < 3; ++lvl) {
      before[lvl] = hierarchy.level(static_cast<std::size_t>(lvl)).stats();
    }
    for (int t = 0; t < options.measured_traversals; ++t) traverse();

    const double fetches =
        static_cast<double>(options.measured_traversals) *
        static_cast<double>(lines);
    const auto delta = [&](int lvl, bool hits) {
      const auto& now = hierarchy.level(static_cast<std::size_t>(lvl)).stats();
      return static_cast<double>(
          hits ? now.demand_hits - before[lvl].demand_hits
               : now.demand_misses - before[lvl].demand_misses);
    };

    KernelSlot slot;
    slot.name = "icache/fp" + std::to_string(footprint / 1024) + "K";
    slot.normalizer = fetches;
    pmu::Activity act;
    act[sig::l1i_hit] = delta(0, true);
    act[sig::l1i_miss] = delta(0, false);
    act[sig::l2i_hit] = delta(1, true);
    act[sig::l2i_miss] = delta(1, false);
    // Straight-line code: ~4 instructions per fetched 16-byte window.
    act[sig::instructions] = std::round(fetches * 16.0);
    act[sig::uops] = std::round(fetches * 17.5);
    act[sig::branch_cond_retired] = std::round(fetches / 8.0);
    act[sig::branch_cond_taken] = std::round(fetches / 8.0) - 1.0;
    act[sig::cycles] = std::round(4.0 * fetches + 30.0 * act[sig::l1i_miss]);
    slot.thread_activities.push_back(std::move(act));
    bench.slots.push_back(std::move(slot));
  }
  return bench;
}

}  // namespace catalyst::cat
