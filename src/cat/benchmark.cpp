#include "cat/benchmark.hpp"

#include <cmath>
#include <stdexcept>

#include "core/contract.hpp"

namespace catalyst::cat {

std::vector<pmu::Activity> Benchmark::single_thread_activities() const {
  std::vector<pmu::Activity> acts;
  acts.reserve(slots.size());
  for (const auto& slot : slots) {
    if (slot.thread_activities.size() != 1) {
      throw std::logic_error(name + ": slot " + slot.name +
                             " is multi-threaded; use per-thread collection");
    }
    acts.push_back(slot.thread_activities.front());
  }
  return acts;
}

void Benchmark::validate() const {
  CATALYST_REQUIRE_AS(!slots.empty(), std::invalid_argument,
                      "benchmark '" + name + "' has no kernel slots");
  for (const auto& slot : slots) {
    CATALYST_REQUIRE_AS(!slot.thread_activities.empty(), std::invalid_argument,
                        "benchmark '" + name + "': slot '" + slot.name +
                            "' has no thread activities");
    CATALYST_REQUIRE_AS(
        std::isfinite(slot.normalizer) && slot.normalizer > 0.0,
        std::invalid_argument,
        "benchmark '" + name + "': slot '" + slot.name +
            "' has a non-positive or non-finite normalizer");
  }
  const auto n_slots = static_cast<linalg::index_t>(slots.size());
  CATALYST_REQUIRE_AS(basis.e.rows() == n_slots, std::invalid_argument,
                      "benchmark '" + name +
                          "': expectation basis row count does not match the "
                          "slot count");
  const auto n_ideal = static_cast<std::size_t>(basis.e.cols());
  CATALYST_REQUIRE_AS(basis.labels.size() == n_ideal, std::invalid_argument,
                      "benchmark '" + name +
                          "': one label per expectation-basis column required");
  CATALYST_REQUIRE_AS(basis.ideal_events.size() == n_ideal,
                      std::invalid_argument,
                      "benchmark '" + name +
                          "': one ideal event per expectation-basis column "
                          "required");
  CATALYST_REQUIRE_AS(catalyst::contract::all_finite(basis.e.data()),
                      std::invalid_argument,
                      "benchmark '" + name +
                          "': expectation basis has NaN/Inf entries");
}

}  // namespace catalyst::cat
