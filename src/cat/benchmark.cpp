#include "cat/benchmark.hpp"

#include <stdexcept>

namespace catalyst::cat {

std::vector<pmu::Activity> Benchmark::single_thread_activities() const {
  std::vector<pmu::Activity> acts;
  acts.reserve(slots.size());
  for (const auto& slot : slots) {
    if (slot.thread_activities.size() != 1) {
      throw std::logic_error(name + ": slot " + slot.name +
                             " is multi-threaded; use per-thread collection");
    }
    acts.push_back(slot.thread_activities.front());
  }
  return acts;
}

}  // namespace catalyst::cat
