// catalyst/cat -- the data-cache benchmark (Section III-E).
//
// A pointer chase over buffers whose footprints land in the L1, L2, L3 and
// memory regimes, at two strides (64 B and 128 B), with several concurrent
// threads chasing disjoint buffers (the paper keeps the median reading
// across threads to suppress noise).  Unlike the compute benchmarks, the
// ground-truth activity here is *simulated*: each slot actually runs the
// chase on a catalyst::cachesim hierarchy and records the per-level demand
// hit/miss counts as signals.
//
// The expectation basis (L1DM, L1DH, L2DH, L3DH) holds the idealized
// per-access counts: 1.0 for the level that serves the regime's accesses,
// 0 elsewhere.  Real (simulated) measurements deviate from the ideal near
// capacity boundaries -- the noise that motivates the lenient tau = 1e-1
// and the coefficient rounding of Table VIII.
#pragma once

#include <cstdint>

#include "cachesim/config.hpp"
#include "cat/benchmark.hpp"

namespace catalyst::cat {

/// Options for building the data-cache benchmark.
struct DcacheOptions {
  /// Concurrent chase threads on disjoint buffers.
  int threads = 4;
  /// Strides to sweep (bytes).
  std::vector<std::uint32_t> strides = {64, 128};
  /// Footprints per cache regime, as fractions of the level capacity:
  /// two points inside each of L1, L2, L3, plus two memory-regime points
  /// as multiples of L3.
  std::vector<double> level_fractions = {0.35, 0.7};
  std::vector<double> memory_multiples = {3.0, 4.0};
  /// Chase traversal counts.
  int warmup_traversals = 1;
  int measured_traversals = 1;
  /// Base seed for chain permutations (thread t uses seed + t).
  std::uint64_t seed = 2024;
  /// Cache geometry to chase against.
  cachesim::HierarchyConfig hierarchy = cachesim::HierarchyConfig::saphira();
};

/// Human-readable regime of a slot index ("L1", "L2", "L3", "M").
struct DcacheSlotInfo {
  std::string regime;
  std::uint32_t stride_bytes;
  std::uint64_t num_pointers;
};

/// Builds the data-cache benchmark by running the pointer chase on the
/// simulated hierarchy.  Slot order: for each stride, the regimes
/// L1, L2, L3, M (each with one slot per fraction/multiple).
Benchmark dcache_benchmark(const DcacheOptions& options = {});

/// Slot metadata parallel to dcache_benchmark().slots.
std::vector<DcacheSlotInfo> dcache_slot_info(const DcacheOptions& options = {});

}  // namespace catalyst::cat
