#include "cat/branch.hpp"

#include <cmath>

#include "pmu/signals.hpp"

namespace catalyst::cat {

linalg::Matrix branch_expectation_rows() {
  // Eq. 3, verbatim: columns CE, CR, T, D, M.
  return linalg::Matrix{
      {2.0, 2.0, 1.5, 0.0, 0.0},  // two cond branches, one taken half the time
      {2.0, 2.0, 1.0, 0.0, 0.0},  // two cond branches, one never taken
      {2.0, 2.0, 2.0, 0.0, 0.0},  // two cond branches, both always taken
      {2.0, 2.0, 1.5, 0.0, 0.5},  // as row 1 with an unpredictable branch
      {2.5, 2.5, 1.5, 0.0, 0.5},  // extra retired cond branch, mispredicted
      {2.5, 2.5, 2.0, 0.0, 0.5},  // ... variant with higher taken rate
      {2.5, 2.0, 1.5, 0.0, 0.5},  // speculative cond branch squashed (CE>CR)
      {3.0, 2.5, 1.5, 0.0, 0.5},  // deeper speculation
      {3.0, 2.5, 2.0, 0.0, 0.5},  // deeper speculation, higher taken rate
      {2.0, 2.0, 1.0, 1.0, 0.0},  // adds an unconditional direct branch
      {1.0, 1.0, 1.0, 0.0, 0.0},  // bare loop backedge
  };
}

Benchmark branch_benchmark() {
  namespace sig = pmu::sig;
  Benchmark bench;
  bench.name = "cat-branch";
  bench.basis.labels = {"CE", "CR", "T", "D", "M"};
  bench.basis.e = branch_expectation_rows();
  bench.basis.ideal_events = {
      {"CE", "Ideal event: conditional branches executed",
       {{sig::branch_cond_exec, 1.0}}, pmu::NoiseModel::none()},
      {"CR", "Ideal event: conditional branches retired",
       {{sig::branch_cond_retired, 1.0}}, pmu::NoiseModel::none()},
      {"T", "Ideal event: conditional branches taken",
       {{sig::branch_cond_taken, 1.0}}, pmu::NoiseModel::none()},
      {"D", "Ideal event: unconditional (direct) branches",
       {{sig::branch_uncond, 1.0}}, pmu::NoiseModel::none()},
      {"M", "Ideal event: mispredicted branches",
       {{sig::branch_mispredicted, 1.0}}, pmu::NoiseModel::none()},
  };

  const linalg::Matrix& rows = bench.basis.e;
  for (linalg::index_t r = 0; r < rows.rows(); ++r) {
    KernelSlot slot;
    slot.name = "branch/pattern" + std::to_string(r + 1);
    slot.normalizer = kBranchIters;

    const double ce = rows(r, 0) * kBranchIters;
    const double cr = rows(r, 1) * kBranchIters;
    const double t = rows(r, 2) * kBranchIters;
    const double d = rows(r, 3) * kBranchIters;
    const double mi = rows(r, 4) * kBranchIters;

    pmu::Activity act;
    act[sig::branch_cond_exec] = ce;
    act[sig::branch_cond_retired] = cr;
    act[sig::branch_cond_taken] = t;
    act[sig::branch_uncond] = d;
    act[sig::branch_mispredicted] = mi;
    // Scaffolding: condition computation and loop control.
    const double int_ops = 3.0 * kBranchIters + 8.0;
    const double loads = kBranchIters + 4.0;
    act[sig::int_ops] = int_ops;
    act[sig::loads] = loads;
    act[sig::stores] = 2.0;
    act[sig::l1d_demand_hit] = loads;
    const double instructions = cr + d + int_ops + loads + 2.0;
    act[sig::instructions] = std::round(instructions);
    act[sig::uops] = std::round(instructions * 1.08);
    // Mispredictions cost ~15 cycles each on top of the base IPC.
    act[sig::cycles] = std::round(0.9 * instructions + 15.0 * mi + 40.0);
    slot.thread_activities.push_back(std::move(act));
    bench.slots.push_back(std::move(slot));
  }
  return bench;
}

}  // namespace catalyst::cat
