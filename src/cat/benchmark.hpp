// catalyst/cat -- common benchmark abstractions.
//
// A CAT benchmark is a sequence of *kernel slots*.  One slot is one
// measurement unit: a microkernel loop with known, expected behaviour.  Each
// slot carries
//   * the ground-truth Activity its execution generates (per thread -- the
//     data-cache benchmark runs several concurrent threads on disjoint
//     buffers; compute benchmarks have a single thread),
//   * a normalizer that converts raw totals into the per-iteration (or
//     per-access) values the paper's expectation bases are written in.
//
// A benchmark also publishes its *expectation basis* E: one column per
// ideal event, one row per slot, holding the normalized count an ideal
// event would report for that slot (Section III-B of the paper).
#pragma once

#include <string>
#include <vector>

#include "linalg/matrix.hpp"
#include "pmu/event.hpp"

namespace catalyst::cat {

/// One measurement unit of a benchmark.
struct KernelSlot {
  std::string name;  ///< e.g. "dp_256_fma/loop48" or "dcache/L2/stride64".
  /// Ground-truth activity per concurrent thread (size >= 1).  Compute
  /// benchmarks have exactly one entry; the data-cache benchmark has one
  /// per chase thread, and the analysis takes the median reading.
  std::vector<pmu::Activity> thread_activities;
  /// Divisor applied to raw readings to express them per iteration
  /// (FLOPs/branch benchmarks) or per access (data-cache benchmark).
  double normalizer = 1.0;
};

/// The expectation basis of a benchmark: ideal-event labels and the matrix
/// E whose (slot, ideal-event) entry is the normalized expected count.
///
/// `ideal_events` gives each basis dimension as an executable functional
/// over ground-truth activity (the "ideal event" of Section III-B that may
/// not exist as a raw counter).  It is the bridge from basis coordinates
/// back to concrete workloads: the ground-truth value of a metric with
/// signature s on an activity a is  sum_k s[k] * ideal_events[k].ideal(a).
/// Invariant (checked by tests): measuring ideal_events over the slots'
/// normalized activities reproduces the matrix `e` column by column.
struct ExpectationBasis {
  std::vector<std::string> labels;  ///< One per column of `e`.
  linalg::Matrix e;                 ///< slots x ideal-events.
  std::vector<pmu::EventDefinition> ideal_events;  ///< One per label.
};

/// A fully-described CAT benchmark.
struct Benchmark {
  std::string name;
  std::vector<KernelSlot> slots;
  ExpectationBasis basis;

  /// Convenience: the single-thread activities (throws if any slot has more
  /// than one thread; used by compute benchmarks).
  std::vector<pmu::Activity> single_thread_activities() const;

  /// Structural contract of a well-formed benchmark: non-empty slots, every
  /// slot with at least one thread activity and a positive finite
  /// normalizer, and an expectation basis whose row count matches the slot
  /// count with one finite column per label/ideal event.  Violations report
  /// through the contract layer (std::invalid_argument under the default
  /// throw policy).  Called by core::run_pipeline before collection.
  void validate() const;
};

}  // namespace catalyst::cat
