// catalyst/cat -- the CPU-FLOPs benchmark (Section III of the paper).
//
// Sixteen microkernels spanning
//   Space = {scalar, 128, 256, 512} x {FMA, non-FMA} x {SP, DP},
// each with three loops whose bodies contain a known number of
// floating-point instructions (Fig. 1 structure: blocks repeated 12/24/48
// times, two instructions per block for non-FMA kernels and one for FMA
// kernels, giving per-loop instruction totals of 24/48/96 and 12/24/48).
//
// Each slot's activity also carries the loop-header side effects the paper
// calls out -- integer ops, conditional branches, cycles -- so integer- and
// branch-counting raw events produce the correlated columns the specialized
// QR must prune.
#pragma once

#include "cat/benchmark.hpp"

namespace catalyst::cat {

/// Loop block-repeat counts shared by every FLOPs kernel.
inline constexpr int kFlopsLoopIters[3] = {12, 24, 48};

/// Which part of the instruction Space the benchmark exercises.  The
/// default is the paper's full Space; narrowing it matches machines without
/// some vector widths (e.g. no AVX-512) -- running unsupported kernels
/// would fault on real hardware, so CAT builds are configured per target.
struct CpuFlopsOptions {
  std::vector<std::string> widths{"scalar", "128", "256", "512"};
  std::vector<std::string> precisions{"sp", "dp"};
};

/// Builds the CPU-FLOPs benchmark: one kernel per (width, precision,
/// FMA-ness) in the options' Space, 3 loops each, and the matching
/// expectation basis (non-FMA dims first, then FMA, precision-major within
/// each -- Table I's order when the Space is full: 16 kernels, 48 slots).
Benchmark cpu_flops_benchmark(const CpuFlopsOptions& options = {});

/// Basis-label helper: e.g. cpu_flops_label("256", "dp", true) == "D256_FMA".
std::string cpu_flops_label(const std::string& width, const std::string& prec,
                            bool fma);

}  // namespace catalyst::cat
