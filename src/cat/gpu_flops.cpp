#include "cat/gpu_flops.hpp"

#include <cmath>

#include "cat/cpu_flops.hpp"  // kFlopsLoopIters
#include "pmu/signals.hpp"

namespace catalyst::cat {

namespace {

constexpr double kOuterReps = 1000.0;

struct GpuKernelKind {
  const char* basis_tag;  // "A", "S", "M", "SQ", "F"
  const char* op_signal;  // signal op fragment
  bool fma;
};

}  // namespace

Benchmark gpu_flops_benchmark() {
  namespace sig = pmu::sig;
  Benchmark bench;
  bench.name = "cat-gpu-flops";

  const GpuKernelKind ops[] = {{"A", "add", false},
                               {"S", "sub", false},
                               {"M", "mul", false},
                               {"SQ", "trans", false},
                               {"F", "fma", true}};
  const struct {
    const char* tag;
    const char* prec;
  } precisions[] = {{"H", "f16"}, {"S", "f32"}, {"D", "f64"}};

  const linalg::index_t n_kernels = 15;
  bench.basis.e = linalg::Matrix(n_kernels * 3, n_kernels);

  linalg::index_t k = 0;
  for (const auto& op : ops) {
    for (const auto& p : precisions) {
      bench.basis.labels.push_back(std::string(op.basis_tag) + p.tag);
      bench.basis.ideal_events.push_back(pmu::EventDefinition{
          bench.basis.labels.back(),
          std::string("Ideal event: VALU ") + op.op_signal + " " + p.prec +
              " instructions",
          {{sig::gpu_valu(op.op_signal, p.prec), 1.0}},
          pmu::NoiseModel::none()});
      const double instr_per_block = op.fma ? 1.0 : 2.0;
      for (int loop = 0; loop < 3; ++loop) {
        const double iters = kFlopsLoopIters[loop];
        const double n_instr = iters * instr_per_block;
        bench.basis.e(k * 3 + loop, k) = n_instr;

        KernelSlot slot;
        slot.name = "gpu_flops/" + bench.basis.labels.back() + "/loop" +
                    std::to_string(static_cast<int>(iters));
        slot.normalizer = kOuterReps;

        pmu::Activity act;
        act[sig::gpu_valu(op.op_signal, p.prec)] = n_instr * kOuterReps;
        // Kernel scaffolding: wave launches, scalar-ALU loop control,
        // operand streaming, and cycles -- the GPU analogue of the CPU
        // benchmark's loop-header pollution.
        act[sig::gpu_waves] = 64.0 * kOuterReps;
        act[sig::gpu_salu_total] = (2.0 * iters + 8.0) * kOuterReps;
        act[sig::gpu_valu_total] = (iters + 2.0) * kOuterReps;
        act[sig::gpu_vmem] = (2.0 * iters + 16.0) * kOuterReps;
        act[sig::gpu_smem] = (iters + 4.0) * kOuterReps;
        act[sig::gpu_cycles] =
            std::round(4.0 * n_instr + 2.0 * iters + 120.0) * kOuterReps;
        slot.thread_activities.push_back(std::move(act));
        bench.slots.push_back(std::move(slot));
      }
      ++k;
    }
  }
  return bench;
}

}  // namespace catalyst::cat
