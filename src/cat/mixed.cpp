#include "cat/mixed.hpp"

#include <random>
#include <stdexcept>

namespace catalyst::cat {

double ground_truth_metric(const ExpectationBasis& basis,
                           std::span<const double> signature,
                           const pmu::Activity& activity) {
  if (signature.size() != basis.ideal_events.size()) {
    throw std::invalid_argument(
        "ground_truth_metric: signature/basis dimension mismatch");
  }
  double value = 0.0;
  for (std::size_t k = 0; k < signature.size(); ++k) {
    if (signature[k] == 0.0) continue;
    value += signature[k] * basis.ideal_events[k].ideal(activity);
  }
  return value;
}

std::vector<MixedWorkload> random_mixed_workloads(const Benchmark& benchmark,
                                                  std::size_t count,
                                                  std::uint64_t seed,
                                                  int max_weight,
                                                  double density) {
  if (max_weight < 1) {
    throw std::invalid_argument("random_mixed_workloads: max_weight < 1");
  }
  if (density <= 0.0 || density > 1.0) {
    throw std::invalid_argument("random_mixed_workloads: bad density");
  }
  std::mt19937_64 rng(seed);
  std::uniform_real_distribution<double> uni(0.0, 1.0);
  std::uniform_int_distribution<int> weight(1, max_weight);

  std::vector<MixedWorkload> workloads;
  workloads.reserve(count);
  for (std::size_t w = 0; w < count; ++w) {
    MixedWorkload mix;
    mix.name = benchmark.name + "/mix" + std::to_string(w);
    mix.weights.assign(benchmark.slots.size(), 0.0);
    bool any = false;
    for (std::size_t s = 0; s < benchmark.slots.size(); ++s) {
      if (uni(rng) > density) continue;
      const double wgt = weight(rng);
      mix.weights[s] = wgt;
      any = true;
      // Single-thread activity of the slot, scaled by the weight.
      const pmu::Activity& slot_act =
          benchmark.slots[s].thread_activities.front();
      for (const auto& [signal, value] : slot_act) {
        mix.activity[signal] += wgt * value;
      }
    }
    if (!any) {
      // Guarantee a non-empty mix: take the first slot once.
      mix.weights[0] = 1.0;
      for (const auto& [signal, value] :
           benchmark.slots[0].thread_activities.front()) {
        mix.activity[signal] += value;
      }
    }
    workloads.push_back(std::move(mix));
  }
  return workloads;
}

}  // namespace catalyst::cat
