// catalyst/cat -- the GPU-FLOPs benchmark (Section III-C of the paper).
//
// Fifteen device kernels: {add, sub, mul, sqrt, fma} x {HP, SP, DP}, each
// with three loop sizes.  The expectation basis uses the paper's symbols
// TP with T in {A, S, M, SQ, F} and P in {H, S, D}, ordered op-major:
//   AH AS AD  SH SS SD  MH MS MD  SQH SQS SQD  FH FS FD
// (the order of Table II's signatures).  Square root maps to the
// "transcendental" VALU counters on the Tempest machine.
#pragma once

#include "cat/benchmark.hpp"

namespace catalyst::cat {

/// Builds the GPU-FLOPs benchmark: 15 kernels x 3 loops = 45 slots and the
/// 15-column expectation basis of Table II.
Benchmark gpu_flops_benchmark();

}  // namespace catalyst::cat
