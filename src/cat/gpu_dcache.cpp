#include "cat/gpu_dcache.hpp"

#include <cmath>
#include <stdexcept>

#include "cachesim/cache.hpp"
#include "cachesim/pointer_chase.hpp"
#include "pmu/signals.hpp"

namespace catalyst::cat {

Benchmark gpu_dcache_benchmark(const GpuDcacheOptions& options) {
  namespace sig = pmu::sig;
  options.tcc.validate();
  if (options.footprints_bytes.empty()) {
    throw std::invalid_argument("gpu_dcache_benchmark: no footprints");
  }
  if (options.measured_traversals <= 0 || options.warmup_traversals < 0) {
    throw std::invalid_argument("gpu_dcache_benchmark: bad traversal counts");
  }

  Benchmark bench;
  bench.name = "cat-gpu-dcache";
  bench.basis.labels = {"TCCH", "TCCM"};
  bench.basis.ideal_events = {
      {"TCCH", "Ideal event: TCC (GPU L2) hits",
       {{sig::gpu_tcc_hit, 1.0}}, pmu::NoiseModel::none()},
      {"TCCM", "Ideal event: TCC (GPU L2) misses",
       {{sig::gpu_tcc_miss, 1.0}}, pmu::NoiseModel::none()},
  };
  const auto n_slots =
      static_cast<linalg::index_t>(options.footprints_bytes.size());
  bench.basis.e = linalg::Matrix(n_slots, 2);

  cachesim::HierarchyConfig hierarchy_config;
  hierarchy_config.levels = {options.tcc};

  for (linalg::index_t s = 0; s < n_slots; ++s) {
    const std::uint64_t footprint =
        options.footprints_bytes[static_cast<std::size_t>(s)];
    const bool fits = footprint <= options.tcc.size_bytes;
    bench.basis.e(s, 0) = fits ? 1.0 : 0.0;
    bench.basis.e(s, 1) = fits ? 0.0 : 1.0;

    cachesim::CacheHierarchy tcc(hierarchy_config);
    cachesim::ChaseConfig chase;
    chase.num_pointers =
        std::max<std::uint64_t>(4, footprint / options.stride_bytes);
    chase.stride_bytes = options.stride_bytes;
    chase.seed = options.seed + static_cast<std::uint64_t>(s);
    chase.warmup_traversals = options.warmup_traversals;
    chase.measured_traversals = options.measured_traversals;
    const auto res = run_chase(tcc, chase);

    KernelSlot slot;
    slot.name = "gpu_dcache/fp" + std::to_string(footprint / (1024 * 1024)) +
                "M";
    slot.normalizer = static_cast<double>(res.total_accesses);
    pmu::Activity act;
    act[sig::gpu_tcc_hit] =
        static_cast<double>(res.level_stats[0].demand_hits);
    act[sig::gpu_tcc_miss] =
        static_cast<double>(res.level_stats[0].demand_misses);
    // Kernel scaffolding, as in the GPU-FLOPs benchmark.
    const double accesses = slot.normalizer;
    act[sig::gpu_vmem] = accesses;
    act[sig::gpu_waves] = 64.0;
    act[sig::gpu_salu_total] = std::round(0.3 * accesses);
    act[sig::gpu_cycles] = std::round(
        40.0 * static_cast<double>(res.level_stats[0].demand_hits) +
        300.0 * static_cast<double>(res.level_stats[0].demand_misses));
    slot.thread_activities.push_back(std::move(act));
    bench.slots.push_back(std::move(slot));
  }
  return bench;
}

}  // namespace catalyst::cat
