// catalyst/modelgen -- seeded synthetic CPU-model generation.
//
// generate() turns a GeneratorSpec into a complete, self-describing
// experiment: a machine spec (registered through pmu::build_machine), a
// benchmark whose expectation basis is exactly known, planted metric
// signatures with integer compositions, and the ground truth needed to
// judge the pipeline's output -- per-dimension equivalence classes of
// selectable events and the exact basis representation of every
// representable event.  Every field is a pure function of the spec.
#pragma once

#include <string>
#include <unordered_map>
#include <vector>

#include "cat/benchmark.hpp"
#include "core/pipeline.hpp"
#include "core/signatures.hpp"
#include "core/truth.hpp"
#include "modelgen/spec.hpp"
#include "pmu/spec.hpp"

namespace catalyst::modelgen {

/// One generated experiment.  The machine is carried as a spec (not a built
/// Machine) so metamorphic transforms can permute / reseed it and rebuild.
struct GeneratedModel {
  GeneratorSpec spec;  ///< Provenance: the exact input that generated this.
  pmu::MachineSpec machine_spec;
  cat::Benchmark benchmark;
  std::vector<core::MetricSignature> signatures;
  /// Planted ground truth, parallel to `signatures`.
  std::vector<core::PlantedComposition> planted;
  /// Exact basis representation of every representable event (units,
  /// aliases, scaled/derived/correlated decoys, the huge-norm trap).
  /// Pure-noise, dead, and out-of-basis scaffold events are absent: they
  /// have no truthful representation and must never appear in a composed
  /// metric.
  std::unordered_map<std::string, linalg::Vector> representations;
  core::PipelineOptions options;  ///< Thresholds derived from the profile.
  std::size_t dims = 0;           ///< Basis dimension count.
  /// Index of the orphaned dimension (spec.orphan_dimension), or npos.
  std::size_t orphaned_dim = static_cast<std::size_t>(-1);

  /// Registers the machine (pmu::build_machine over machine_spec).
  pmu::Machine machine() const { return pmu::build_machine(machine_spec); }
};

/// Generates the model for `spec`.  Deterministic: equal specs produce
/// byte-identical models.  Throws std::invalid_argument on a bad spec.
GeneratedModel generate(const GeneratorSpec& spec);

}  // namespace catalyst::modelgen
