#include "modelgen/spec.hpp"

#include <stdexcept>

#include "core/contract.hpp"

namespace catalyst::modelgen {

void GeneratorSpec::validate() const {
  CATALYST_REQUIRE_AS(min_dims >= 1, std::invalid_argument,
                      "GeneratorSpec: need at least one basis dimension");
  CATALYST_REQUIRE_AS(min_dims <= max_dims, std::invalid_argument,
                      "GeneratorSpec: min_dims > max_dims");
  CATALYST_REQUIRE_AS(extra_slots >= 1, std::invalid_argument,
                      "GeneratorSpec: need at least one extra slot (the "
                      "projection stage requires an overdetermined basis)");
  CATALYST_REQUIRE_AS(min_counters >= 1 && min_counters <= max_counters,
                      std::invalid_argument,
                      "GeneratorSpec: bad counter range");
  CATALYST_REQUIRE_AS(iterations >= 1.0, std::invalid_argument,
                      "GeneratorSpec: iterations must be >= 1");
  CATALYST_REQUIRE_AS(noise_level >= 0.0, std::invalid_argument,
                      "GeneratorSpec: noise_level must be >= 0");
  CATALYST_REQUIRE_AS(correlation_gamma >= 0.0 && correlation_gamma <= 1.0,
                      std::invalid_argument,
                      "GeneratorSpec: correlation_gamma must be in [0, 1]");
  CATALYST_REQUIRE_AS(num_metrics >= 1, std::invalid_argument,
                      "GeneratorSpec: need at least one planted metric");
  CATALYST_REQUIRE_AS(max_coefficient >= 1, std::invalid_argument,
                      "GeneratorSpec: max_coefficient must be >= 1");
  CATALYST_REQUIRE_AS(!orphan_dimension || max_dims >= 2,
                      std::invalid_argument,
                      "GeneratorSpec: orphaning a dimension needs >= 2 dims");
}

core::PipelineOptions GeneratorSpec::derive_options() const {
  core::PipelineOptions options;
  options.repetitions = 3;
  // Benign jitter produces max RNMSE ~ sqrt(2) * kBaseRelSigma * noise_level;
  // tau sits ~30x above the level-1 profile so benign models pass with
  // margin while the noise ratchet crosses it around noise_level ~ 40.
  options.tau = 1e-2;
  // Leakage below alpha/2 rounds away in the specialized QRCP scoring.
  options.alpha = 5e-2;
  options.projection_max_error = 5e-2;
  options.fitness_threshold = 1e-6;
  return options;
}

GeneratorSpec GeneratorSpec::edge_all_noise(std::uint64_t seed) {
  GeneratorSpec spec;
  spec.seed = seed;
  spec.min_dims = 2;
  spec.max_dims = 3;
  // ~20% jitter: max RNMSE lands orders of magnitude above tau, so the
  // noise filter rejects every countable event.
  spec.noise_level = 1e3;
  spec.num_metrics = 2;
  return spec;
}

GeneratorSpec GeneratorSpec::edge_single_dim(std::uint64_t seed) {
  GeneratorSpec spec;
  spec.seed = seed;
  spec.min_dims = 1;
  spec.max_dims = 1;
  spec.max_aliases = 0;
  spec.scaled_decoys = 0;
  spec.derived_decoys = 0;
  spec.correlated_decoys = 0;
  spec.noise_decoys = 0;
  spec.dead_decoys = 0;
  spec.huge_norm_decoy = false;
  spec.scaffold_events = 0;
  spec.num_metrics = 1;
  return spec;
}

GeneratorSpec GeneratorSpec::edge_orphan(std::uint64_t seed, double gamma) {
  GeneratorSpec spec;
  spec.seed = seed;
  spec.orphan_dimension = true;
  spec.correlated_decoys = 2;
  spec.correlation_gamma = gamma;
  return spec;
}

namespace {

// Shared base of the scale presets: wide counter files (the multiplexer
// would otherwise need tens of thousands of groups) and a richer decoy
// census so the big machines are not pure alias farms.
GeneratorSpec scale_base(std::uint64_t seed, std::size_t dims,
                         std::size_t max_aliases) {
  GeneratorSpec spec;
  spec.seed = seed;
  spec.min_dims = dims;
  spec.max_dims = dims;
  spec.extra_slots = 8;
  spec.max_aliases = max_aliases;
  spec.min_counters = 16;
  spec.max_counters = 32;
  spec.scaled_decoys = 8;
  spec.derived_decoys = 8;
  spec.correlated_decoys = 8;
  spec.noise_decoys = 4;
  spec.dead_decoys = 2;
  spec.num_metrics = 5;
  return spec;
}

}  // namespace

GeneratorSpec GeneratorSpec::scale_5k(std::uint64_t seed) {
  return scale_base(seed, 48, 200);
}

GeneratorSpec GeneratorSpec::scale_10k(std::uint64_t seed) {
  return scale_base(seed, 64, 300);
}

}  // namespace catalyst::modelgen
