// catalyst/modelgen -- umbrella header for the synthetic-model generator
// and the ground-truth recovery oracle.
#pragma once

#include "modelgen/generator.hpp" // IWYU pragma: export
#include "modelgen/spec.hpp"      // IWYU pragma: export
#include "modelgen/verify.hpp"    // IWYU pragma: export
