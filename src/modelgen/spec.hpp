// catalyst/modelgen -- generator specification for synthetic CPU models.
//
// A GeneratorSpec is the complete, seeded description of one synthetic
// machine + benchmark + planted-metric bundle: every byte of the generated
// model is a pure function of the spec, so a failing case reproduces from
// its printed seed alone.  The geometry knobs (basis dimensions, event
// counts, counter slots) and the adversarial-decoy census mirror the
// structures that make the paper's analysis hard on real hardware:
// duplicated counters, integer-scaled aliases, derived sums, correlated
// near-copies, pure-noise counters, a huge-norm cycles-style trap, and
// events outside the expectation basis entirely.
#pragma once

#include <cstdint>
#include <string>

#include "core/pipeline.hpp"

namespace catalyst::modelgen {

/// Everything generate() needs; all fields have sensible defaults so
/// `GeneratorSpec{seed}` is a valid random model.
struct GeneratorSpec {
  /// Master seed: the ONLY source of randomness for the generated model.
  std::uint64_t seed = 1;

  // --- geometry ------------------------------------------------------------
  std::size_t min_dims = 3;     ///< Basis dimensions, drawn in [min, max].
  std::size_t max_dims = 6;
  std::size_t extra_slots = 3;  ///< Slots = dims + U(1..extra_slots).
  std::size_t max_aliases = 2;  ///< Extra exact unit copies per dim: U(0..).
  std::size_t min_counters = 2; ///< Physical counters, drawn in [min, max].
  std::size_t max_counters = 8;
  double iterations = 1e4;      ///< Per-slot iteration count (normalizer).

  // --- adversarial decoys --------------------------------------------------
  std::size_t scaled_decoys = 2;      ///< Integer-scaled (2..4x) unit copies.
  std::size_t derived_decoys = 2;     ///< Sums of two distinct dimensions.
  std::size_t correlated_decoys = 2;  ///< Unit + gamma x another dimension.
  /// Cross-dimension leakage of correlated decoys.  Below half the QRCP
  /// rounding tolerance alpha the leak rounds away and the decoy becomes an
  /// equally valid representative of its dimension (it joins the
  /// equivalence class); above, it must never be selected over a clean
  /// unit event.
  double correlation_gamma = 0.25;
  std::size_t noise_decoys = 2;   ///< Spiky interrupt-style counters.
  std::size_t dead_decoys = 1;    ///< Counters that always read zero.
  bool huge_norm_decoy = true;    ///< Cycles-style large-norm trap column.
  std::size_t scaffold_events = 2; ///< Events outside the basis span
                                   ///< (dropped at the projection stage).

  // --- noise profile -------------------------------------------------------
  /// Relative jitter of countable events is kBaseRelSigma * noise_level.
  /// 0 = noise-free; ~1 = benign (recovery must be exact); >= ~40 pushes
  /// max RNMSE past the derived tau and recovery must degrade DETECTABLY
  /// (events filtered, planted metrics reported non-composable) -- never
  /// silently wrong.
  double noise_level = 1.0;

  // --- planted metrics -----------------------------------------------------
  std::size_t num_metrics = 3;
  int max_coefficient = 3;  ///< Planted coefficients in [-max, max].

  /// Degradation study: strip every unit event (and alias) of one
  /// dimension, leaving at best a correlated decoy to cover it.  Planted
  /// metrics touching the orphaned dimension can then only be recovered
  /// through the decoy (alternative covering) or must report low fitness.
  bool orphan_dimension = false;

  /// Base relative sigma at noise_level 1: large enough to survive the
  /// integer rounding of counter readings (iterations * sigma >= a few
  /// counts), small enough that projected coordinates stay within the QRCP
  /// rounding tolerance.
  static constexpr double kBaseRelSigma = 2e-4;

  /// Throws std::invalid_argument on nonsensical geometry (zero dims,
  /// min > max, non-positive iterations, negative censuses...).
  void validate() const;

  /// Pipeline thresholds matched to the generated noise profile: tau admits
  /// the benign jitter with ~30x margin, alpha rounds sub-noise leakage
  /// away, and the projection / fitness cutoffs follow the paper's
  /// relaxed-threshold regime (Sections IV / V-E).
  core::PipelineOptions derive_options() const;

  // --- edge-geometry presets (degenerate-path tests) -----------------------
  /// Every countable event drowned in noise: the RNMSE filter empties the
  /// kept set and the pipeline must degrade gracefully end to end.
  static GeneratorSpec edge_all_noise(std::uint64_t seed);
  /// A single-dimension basis with a single unit event and no decoys.
  static GeneratorSpec edge_single_dim(std::uint64_t seed);
  /// One dimension orphaned (no unit events), covered at best by a
  /// correlated decoy with the given leakage.
  static GeneratorSpec edge_orphan(std::uint64_t seed, double gamma);

  // --- scale presets (blocked-linalg stress geometries) --------------------
  /// ~5k-event machine: 48 basis dimensions with up to ~200 exact aliases
  /// per dimension (expected events ~ dims * (1 + max_aliases/2)).  Sized
  /// for the blocked QRCP benches -- the event-selection matrix has
  /// thousands of columns, where the scalar Algorithm 2 sweep is quadratic
  /// in events and the blocked path amortizes into GEMMs.
  static GeneratorSpec scale_5k(std::uint64_t seed);
  /// ~10k-event machine: 64 dimensions, up to ~300 aliases per dimension.
  /// The tentpole acceptance geometry (>= 5x blocked-vs-scalar QRCP).
  static GeneratorSpec scale_10k(std::uint64_t seed);
};

}  // namespace catalyst::modelgen
