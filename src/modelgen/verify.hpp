// catalyst/modelgen -- the ground-truth recovery oracle.
//
// verify_recovery() judges a pipeline run against the planted truth carried
// by a GeneratedModel and classifies every planted metric:
//
//   exact        rounded coefficients equal the planted integers and every
//                selected event is a documented equivalence-class member of
//                its dimension;
//   alternative  a different but TRUTHFUL composition (the terms' exact
//                basis representations reproduce the signature), e.g. a
//                scaled decoy covering a dimension at coefficient c/k;
//   degraded     the pipeline itself flagged the metric non-composable
//                (low fitness) -- detectable degradation, the acceptable
//                failure mode under heavy noise or orphaned dimensions;
//   wrong        flagged composable but NOT truthful -- a silent lie.  The
//                harness's core assertion is that this never happens.
//
// The metamorphic transforms produce models whose recovery outcome must be
// equivalent to the original's: event reordering, uniform slot rescaling,
// benign-noise reseeding, and collection thread count.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/pipeline.hpp"
#include "modelgen/generator.hpp"
#include "vpapi/sampling.hpp"

namespace catalyst::modelgen {

/// Ordered by severity; `worse` keeps the maximum.
enum class Verdict { exact = 0, alternative = 1, degraded = 2, wrong = 3 };

const char* to_string(Verdict verdict);
inline Verdict worse(Verdict a, Verdict b) { return a > b ? a : b; }

struct MetricVerdict {
  std::string metric_name;
  Verdict verdict = Verdict::degraded;
  double fitness = 0.0;      ///< Eq. 5 backward error reported by the run.
  bool composable = false;
  std::vector<core::MetricTerm> rounded_terms;  ///< Non-zero rounded terms.
  std::string detail;        ///< Why this verdict (mismatch / classification).
};

struct VerifyOptions {
  /// Tolerance of the truthfulness check (relative 2-norm of the composed
  /// signature error).  0 derives it from the model's noise profile: well
  /// below the smallest integer-coefficient misstatement, well above the
  /// noise-explained solve error.
  double truth_tol = 0.0;
};

/// The judged outcome of one pipeline run over one generated model.
struct RecoveryOutcome {
  std::uint64_t seed = 0;                ///< Provenance for repro lines.
  /// Ready-made one-line reproduction command (seed + non-default knobs),
  /// filled in by verify_recovery.
  std::string repro_line;
  std::vector<MetricVerdict> metrics;    ///< Parallel to model.planted.
  Verdict overall = Verdict::exact;      ///< Worst per-metric verdict.
  std::size_t kept_events = 0;           ///< Survived the RNMSE filter.
  std::size_t selected_events = 0;       ///< QRCP-selected (Xhat columns).

  bool all_exact() const { return overall == Verdict::exact; }
  bool any_wrong() const { return overall == Verdict::wrong; }
  /// One-line reproduction command for a failing case.
  std::string repro() const;
  /// Multi-line human summary (verdict per metric + repro line).
  std::string describe() const;
};

/// Judges an existing pipeline result against the model's planted truth.
RecoveryOutcome verify_recovery(const GeneratedModel& model,
                                const core::PipelineResult& result,
                                const VerifyOptions& options = {});

/// Convenience: registers the machine, runs the full pipeline with the
/// model's derived options, and judges the result.
RecoveryOutcome run_and_verify(const GeneratedModel& model,
                               const VerifyOptions& options = {});

/// run_and_verify through the sampling collector: measurements are the
/// per-phase synthesis of each run's sample trace (vpapi/sampling.hpp)
/// instead of boundary reads, then judged against the same planted truth.
/// This is the counting-vs-sampling recovery oracle: `schedule` controls
/// the attribution-error magnitude, and the acceptable outcomes are exact /
/// alternative (fine periods) or degraded (coarse periods) -- never wrong,
/// because dithering turns attribution error into repetition variance the
/// RNMSE filter can see.
RecoveryOutcome run_and_verify_sampled(const GeneratedModel& model,
                                       vpapi::CollectionMode mode,
                                       const vpapi::SampleSchedule& schedule,
                                       const VerifyOptions& options = {});

// --- metamorphic transforms ------------------------------------------------
// Each returns a transformed copy whose recovery outcome must be equivalent
// to the original's (see equivalent_outcomes).

/// Shuffles the machine's event registration order (seeded permutation).
/// Per-event readings are unchanged: collection noise is keyed by event
/// NAME, not registration index.
GeneratedModel reorder_events(const GeneratedModel& model,
                              std::uint64_t permutation_seed);
/// Multiplies every slot's activity AND normalizer by `factor` (> 0):
/// normalized measurements are invariant up to counter-rounding jitter.
GeneratedModel rescale_slots(const GeneratedModel& model, double factor);
/// Re-keys the machine's benign noise streams.
GeneratedModel reseed_noise(const GeneratedModel& model,
                            std::uint64_t noise_seed);
/// Changes the collection thread count (the engine guarantees bit-identical
/// readings for any value).
GeneratedModel with_collection_threads(const GeneratedModel& model,
                                       int threads);

struct OutcomeEquivalence {
  bool equivalent = false;
  std::string detail;  ///< First difference found, empty when equivalent.
};

/// Metamorphic equivalence: same per-metric verdicts (matched by name) and,
/// for exact/alternative verdicts, identical rounded compositions up to the
/// planted equivalence classes (both sides were already judged against the
/// same truth, so verdict equality is the load-bearing check).
OutcomeEquivalence equivalent_outcomes(const RecoveryOutcome& a,
                                       const RecoveryOutcome& b);

}  // namespace catalyst::modelgen
