#include "modelgen/generator.hpp"

#include <algorithm>
#include <cmath>
#include <random>
#include <stdexcept>
#include <string>

#include "core/contract.hpp"
#include "linalg/lstsq.hpp"
#include "linalg/svd.hpp"

namespace catalyst::modelgen {

namespace {

// Seeded-once model construction, same rationale as the shipped machine
// builders (saphira/tempest/vesuvio): the PRNG runs exactly once per spec,
// never per measurement, so the counter-based noise contract is untouched.
using Rng = std::mt19937_64;

int rint(Rng& rng, int lo, int hi) {
  return std::uniform_int_distribution<int>(lo, hi)(rng);
}

std::string dim_signal(std::size_t d) {
  return "syn.dim" + std::to_string(d);
}

std::string scaffold_signal(std::size_t j) {
  return "syn.scaffold" + std::to_string(j);
}

/// Draws the slots x dims expectation matrix: a diagonally-dominant
/// small-integer head (rows 0..dims-1) plus fully random extra rows,
/// redrawn until the spectrum is well-conditioned.  Conditioning is capped
/// so benign measurement noise cannot be amplified past the QRCP rounding
/// tolerance when events are projected onto the basis.
linalg::Matrix draw_expectation(Rng& rng, std::size_t slots,
                                std::size_t dims) {
  constexpr double kMaxCondition = 30.0;
  constexpr int kMaxTries = 500;
  linalg::Matrix best;
  double best_ratio = -1.0;
  for (int attempt = 0; attempt < kMaxTries; ++attempt) {
    linalg::Matrix e(static_cast<linalg::index_t>(slots),
                     static_cast<linalg::index_t>(dims), 0.0);
    for (std::size_t k = 0; k < slots; ++k) {
      for (std::size_t d = 0; d < dims; ++d) {
        int v;
        if (k < dims) {
          v = k == d ? rint(rng, 3, 5)
                     : (rint(rng, 0, 9) < 4 ? rint(rng, 1, 2) : 0);
        } else {
          v = rint(rng, 0, 4);
        }
        e(static_cast<linalg::index_t>(k), static_cast<linalg::index_t>(d)) =
            static_cast<double>(v);
      }
    }
    const auto sv = linalg::svd(e).singular_values;
    const double ratio = sv.front() > 0.0 ? sv.back() / sv.front() : 0.0;
    if (ratio >= 1.0 / kMaxCondition) return e;
    if (ratio > best_ratio) {
      best_ratio = ratio;
      best = e;
    }
  }
  return best;  // astronomically unlikely; the best-conditioned draw.
}

/// Draws one scaffold slot-value vector, redrawn until it is clearly
/// OUTSIDE the basis span (its least-squares fitness is several times the
/// projection cutoff), so the projection stage provably rejects it.
linalg::Vector draw_scaffold(Rng& rng, const linalg::Matrix& e,
                             double projection_max_error) {
  constexpr int kMaxTries = 500;
  linalg::Vector best;
  double best_err = -1.0;
  for (int attempt = 0; attempt < kMaxTries; ++attempt) {
    linalg::Vector g(static_cast<std::size_t>(e.rows()));
    for (double& v : g) v = static_cast<double>(rint(rng, 1, 9));
    const double err = linalg::lstsq(e, g).backward_error;
    if (err > 4.0 * projection_max_error) return g;
    if (err > best_err) {
      best_err = err;
      best = g;
    }
  }
  return best;
}

}  // namespace

GeneratedModel generate(const GeneratorSpec& spec) {
  spec.validate();
  GeneratedModel model;
  model.spec = spec;
  model.options = spec.derive_options();
  Rng rng(spec.seed);

  const std::size_t dims = static_cast<std::size_t>(
      rint(rng, static_cast<int>(spec.min_dims),
           static_cast<int>(spec.max_dims)));
  const std::size_t slots =
      dims + static_cast<std::size_t>(
                 rint(rng, 1, static_cast<int>(spec.extra_slots)));
  model.dims = dims;
  if (spec.orphan_dimension && dims >= 2) {
    model.orphaned_dim =
        static_cast<std::size_t>(rint(rng, 0, static_cast<int>(dims) - 1));
  }
  const std::size_t orphan = model.orphaned_dim;

  const double sigma = GeneratorSpec::kBaseRelSigma * spec.noise_level;
  const pmu::NoiseModel benign =
      sigma > 0.0 ? pmu::NoiseModel::relative(sigma) : pmu::NoiseModel::none();

  // --- expectation basis & scaffold ground truth ---------------------------
  const linalg::Matrix e = draw_expectation(rng, slots, dims);
  std::vector<linalg::Vector> scaffold_values;
  scaffold_values.reserve(spec.scaffold_events);
  for (std::size_t j = 0; j < spec.scaffold_events; ++j) {
    scaffold_values.push_back(
        draw_scaffold(rng, e, model.options.projection_max_error));
  }

  // --- events --------------------------------------------------------------
  auto unit_vec = [dims](std::size_t d, double coeff) {
    linalg::Vector v(dims, 0.0);
    v[d] = coeff;
    return v;
  };
  std::vector<pmu::EventDefinition> events;
  std::vector<std::vector<std::string>> dim_classes(dims);

  for (std::size_t d = 0; d < dims; ++d) {
    const std::size_t copies =
        d == orphan
            ? 0
            : 1 + static_cast<std::size_t>(
                      rint(rng, 0, static_cast<int>(spec.max_aliases)));
    for (std::size_t j = 0; j < copies; ++j) {
      const std::string name =
          "SYN_D" + std::to_string(d) + "_UNIT" + std::to_string(j);
      events.push_back({name,
                        j == 0 ? "Clean unit counter of dimension " +
                                     std::to_string(d)
                               : "Exact alias (duplicated counter)",
                        {{dim_signal(d), 1.0}},
                        benign});
      dim_classes[d].push_back(name);
      model.representations[name] = unit_vec(d, 1.0);
    }
  }

  auto nonorphan_dim = [&](void) {
    std::size_t d;
    do {
      d = static_cast<std::size_t>(rint(rng, 0, static_cast<int>(dims) - 1));
    } while (d == orphan);
    return d;
  };

  for (std::size_t i = 0; i < spec.scaled_decoys; ++i) {
    const std::size_t d = nonorphan_dim();
    const int scale = rint(rng, 2, 4);
    const std::string name = "SYN_D" + std::to_string(d) + "_X" +
                             std::to_string(scale) + "_" + std::to_string(i);
    events.push_back({name, "Integer-scaled decoy (counts per operation)",
                      {{dim_signal(d), static_cast<double>(scale)}},
                      benign});
    model.representations[name] = unit_vec(d, static_cast<double>(scale));
  }

  if (dims >= 2) {
    for (std::size_t i = 0; i < spec.derived_decoys; ++i) {
      const std::size_t a = nonorphan_dim();
      std::size_t b;
      do {
        b = static_cast<std::size_t>(
            rint(rng, 0, static_cast<int>(dims) - 1));
      } while (b == a || b == orphan);
      const std::string name = "SYN_D" + std::to_string(a) + "_PLUS_D" +
                               std::to_string(b) + "_" + std::to_string(i);
      events.push_back({name, "Derived decoy (sum of two dimensions)",
                        {{dim_signal(a), 1.0}, {dim_signal(b), 1.0}},
                        benign});
      linalg::Vector rep = unit_vec(a, 1.0);
      rep[b] = 1.0;
      model.representations[name] = rep;
    }

    const double gamma = spec.correlation_gamma;
    for (std::size_t i = 0; i < spec.correlated_decoys; ++i) {
      // When a dimension is orphaned, every correlated decoy leaks FROM it:
      // the decoy is then the only column covering the orphan.
      const std::size_t a = orphan < dims ? orphan : nonorphan_dim();
      std::size_t b;
      do {
        b = static_cast<std::size_t>(
            rint(rng, 0, static_cast<int>(dims) - 1));
      } while (b == a);
      const std::string name = "SYN_D" + std::to_string(a) + "_CORR_D" +
                               std::to_string(b) + "_" + std::to_string(i);
      std::vector<pmu::SignalTerm> terms = {{dim_signal(a), 1.0}};
      if (gamma > 0.0) terms.push_back({dim_signal(b), gamma});
      events.push_back(
          {name, "Correlated decoy (cross-dimension leakage)", terms,
           benign});
      linalg::Vector rep = unit_vec(a, 1.0);
      rep[b] += gamma;
      model.representations[name] = rep;
      // Leakage below half the QRCP rounding tolerance is indistinguishable
      // from a clean unit event -- the decoy joins the equivalence class.
      if (gamma < 0.5 * model.options.alpha) {
        dim_classes[a].push_back(name);
      }
    }
  }

  for (std::size_t i = 0; i < spec.noise_decoys; ++i) {
    events.push_back({"SYN_SPIKY" + std::to_string(i),
                      "Interrupt-style counter (sporadic spikes, no signal)",
                      {},
                      pmu::NoiseModel::spiky(0.15, 0.5 * spec.iterations)});
  }
  for (std::size_t i = 0; i < spec.dead_decoys; ++i) {
    events.push_back({"SYN_DEAD" + std::to_string(i),
                      "Dead counter (always reads zero)",
                      {},
                      pmu::NoiseModel::none()});
  }
  if (spec.huge_norm_decoy) {
    // Cycles-style trap: huge norm, analytically useless.  Noise-free so
    // its (100x-amplified) projection error cannot keep it QRCP-eligible
    // after the clean columns span the space.
    std::vector<pmu::SignalTerm> terms;
    terms.reserve(dims);
    for (std::size_t d = 0; d < dims; ++d) {
      terms.push_back({dim_signal(d), 100.0});
    }
    events.push_back({"SYN_CYCLESLIKE",
                      "Huge-norm trap (cycles-style aggregate)", terms,
                      pmu::NoiseModel::none()});
    model.representations["SYN_CYCLESLIKE"] = linalg::Vector(dims, 100.0);
  }
  for (std::size_t j = 0; j < spec.scaffold_events; ++j) {
    events.push_back({"SYN_SCAFFOLD" + std::to_string(j),
                      "Outside the expectation basis (projection rejects)",
                      {{scaffold_signal(j), 1.0}},
                      benign});
  }

  // Registration order must carry no information about event roles.
  std::shuffle(events.begin(), events.end(), rng);

  model.machine_spec.name = "syngen-" + std::to_string(spec.seed);
  model.machine_spec.physical_counters = static_cast<std::size_t>(
      rint(rng, static_cast<int>(spec.min_counters),
           static_cast<int>(spec.max_counters)));
  model.machine_spec.noise_seed = rng();
  model.machine_spec.events = std::move(events);

  // --- benchmark -----------------------------------------------------------
  cat::Benchmark& bench = model.benchmark;
  bench.name = "modelgen/seed" + std::to_string(spec.seed);
  bench.basis.e = e;
  for (std::size_t d = 0; d < dims; ++d) {
    bench.basis.labels.push_back("DIM" + std::to_string(d));
    bench.basis.ideal_events.push_back(
        {"DIM" + std::to_string(d),
         "Ideal event: basis dimension " + std::to_string(d),
         {{dim_signal(d), 1.0}},
         pmu::NoiseModel::none()});
  }
  for (std::size_t k = 0; k < slots; ++k) {
    cat::KernelSlot slot;
    slot.name = "syn/slot" + std::to_string(k);
    slot.normalizer = spec.iterations;
    pmu::Activity act;
    for (std::size_t d = 0; d < dims; ++d) {
      const double v = e(static_cast<linalg::index_t>(k),
                         static_cast<linalg::index_t>(d));
      if (v != 0.0) act[dim_signal(d)] = spec.iterations * v;
    }
    for (std::size_t j = 0; j < spec.scaffold_events; ++j) {
      act[scaffold_signal(j)] = spec.iterations * scaffold_values[j][k];
    }
    slot.thread_activities.push_back(std::move(act));
    bench.slots.push_back(std::move(slot));
  }

  // --- planted metrics -----------------------------------------------------
  const int cmax = spec.max_coefficient;
  for (std::size_t i = 0; i < spec.num_metrics; ++i) {
    linalg::Vector coords(dims, 0.0);
    bool any = false;
    for (std::size_t d = 0; d < dims; ++d) {
      const int c = rint(rng, -cmax, cmax);
      coords[d] = static_cast<double>(c);
      any = any || c != 0;
    }
    if (!any) coords[i % dims] = 1.0;
    if (i == 0 && orphan < dims && coords[orphan] == 0.0) {
      // The degradation study needs at least one metric that can only be
      // satisfied through the orphaned dimension.
      coords[orphan] = static_cast<double>(rint(rng, 0, 1) == 0 ? 1 : -1) *
                       static_cast<double>(rint(rng, 1, cmax));
    }
    const std::string name = "planted_metric_" + std::to_string(i);
    model.signatures.push_back({name, coords});
    core::PlantedComposition planted;
    planted.metric_name = name;
    planted.coefficients.assign(coords.begin(), coords.end());
    planted.classes = dim_classes;
    model.planted.push_back(std::move(planted));
  }

  CATALYST_ENSURE(model.signatures.size() == model.planted.size(),
                  "modelgen: signatures/planted truth out of step");
  return model;
}

}  // namespace catalyst::modelgen
