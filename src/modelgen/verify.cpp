#include "modelgen/verify.hpp"

#include <algorithm>
#include <cmath>
#include <random>
#include <sstream>

#include "core/campaign.hpp"
#include "core/contract.hpp"
#include "core/truth.hpp"

namespace catalyst::modelgen {

namespace {

/// Default truthfulness tolerance: scales with the noise-explained solve
/// error (sigma amplified by the capped basis conditioning), capped well
/// below the ~0.14 relative deviation of the smallest possible integer
///-coefficient misstatement for the default planted-coefficient range.
double derived_truth_tol(const GeneratorSpec& spec) {
  const double sigma = GeneratorSpec::kBaseRelSigma * spec.noise_level;
  return std::max(1e-6, std::min(0.08, 300.0 * sigma));
}

std::string build_repro_line(const GeneratorSpec& spec) {
  std::ostringstream out;
  out << "catalyst_verify one --seed " << spec.seed;
  // Exact default-value comparison: purely cosmetic flag elision.
  // catalyst-lint: allow(float-equality)
  if (spec.noise_level != 1.0) out << " --noise " << spec.noise_level;
  if (spec.orphan_dimension) {
    out << " --orphan --gamma " << spec.correlation_gamma;
  }
  return out.str();
}

const core::MetricDefinition* find_metric(
    const core::PipelineResult& result, const std::string& name) {
  for (const auto& metric : result.metrics) {
    if (metric.metric_name == name) return &metric;
  }
  return nullptr;
}

}  // namespace

const char* to_string(Verdict verdict) {
  switch (verdict) {
    case Verdict::exact: return "exact";
    case Verdict::alternative: return "alternative";
    case Verdict::degraded: return "degraded";
    case Verdict::wrong: return "wrong";
  }
  return "unknown";
}

RecoveryOutcome verify_recovery(const GeneratedModel& model,
                                const core::PipelineResult& result,
                                const VerifyOptions& options) {
  CATALYST_REQUIRE(model.signatures.size() == model.planted.size(),
                   "verify_recovery: model signatures/planted mismatch");
  const double tol = options.truth_tol > 0.0 ? options.truth_tol
                                             : derived_truth_tol(model.spec);
  RecoveryOutcome outcome;
  outcome.seed = model.spec.seed;
  outcome.repro_line = build_repro_line(model.spec);
  outcome.kept_events = result.noise.kept.size();
  outcome.selected_events = result.xhat_events.size();

  for (std::size_t i = 0; i < model.planted.size(); ++i) {
    const core::PlantedComposition& planted = model.planted[i];
    MetricVerdict verdict;
    verdict.metric_name = planted.metric_name;

    const core::MetricDefinition* metric =
        find_metric(result, planted.metric_name);
    if (metric == nullptr) {
      verdict.verdict = Verdict::degraded;
      verdict.detail = "metric absent from pipeline output";
      outcome.metrics.push_back(std::move(verdict));
      continue;
    }
    verdict.fitness = metric->backward_error;
    verdict.composable = metric->composable;
    verdict.rounded_terms = core::drop_zero_terms(
        core::round_coefficients(metric->terms));

    if (!metric->composable) {
      // The pipeline ANNOUNCED it cannot express this metric: detectable
      // degradation, never a silent failure.
      verdict.verdict = Verdict::degraded;
      std::ostringstream detail;
      detail << "non-composable (fitness " << metric->backward_error << ")";
      verdict.detail = detail.str();
      outcome.metrics.push_back(std::move(verdict));
      continue;
    }

    const core::CompositionMatch match =
        core::match_planted_composition(verdict.rounded_terms, planted);
    if (match.matches) {
      verdict.verdict = Verdict::exact;
    } else {
      // Truthfulness is judged on the UNROUNDED solution -- the pipeline's
      // actual answer.  Rounding is a presentation step and may legally
      // erase a small-but-real coefficient (e.g. s = 2*ones expressed as
      // 0.02 x a huge-norm event); that must not read as a lie.  Terms with
      // numerically-zero coefficients are dropped first: an unused event
      // contributes nothing, representable or not.
      std::vector<core::MetricTerm> used_terms;
      for (const core::MetricTerm& term : metric->terms) {
        if (std::abs(term.coefficient) > 1e-9) used_terms.push_back(term);
      }
      const core::CompositionMatch truthful = core::composition_is_truthful(
          used_terms, model.representations, model.signatures[i], tol);
      if (truthful.matches) {
        verdict.verdict = Verdict::alternative;
        verdict.detail = "truthful non-planted composition: " + match.mismatch;
      } else {
        verdict.verdict = Verdict::wrong;
        verdict.detail = "composable but untruthful: " + truthful.mismatch;
      }
    }
    outcome.metrics.push_back(std::move(verdict));
  }

  outcome.overall = Verdict::exact;
  for (const MetricVerdict& v : outcome.metrics) {
    outcome.overall = worse(outcome.overall, v.verdict);
  }
  return outcome;
}

RecoveryOutcome run_and_verify(const GeneratedModel& model,
                               const VerifyOptions& options) {
  const pmu::Machine machine = model.machine();
  const core::PipelineResult result = core::run_pipeline(
      machine, model.benchmark, model.signatures, model.options);
  return verify_recovery(model, result, options);
}

RecoveryOutcome run_and_verify_sampled(const GeneratedModel& model,
                                       vpapi::CollectionMode mode,
                                       const vpapi::SampleSchedule& schedule,
                                       const VerifyOptions& options) {
  const pmu::Machine machine = model.machine();
  const core::CampaignResult campaign = core::run_pipeline_sampled(
      machine, model.benchmark, model.signatures, model.options, mode,
      schedule);
  VerifyOptions adjusted = options;
  if (adjusted.truth_tol <= 0.0 && mode != vpapi::CollectionMode::counting) {
    // Sampled measurements carry a KNOWN phase-attribution bias: a kernel
    // boundary is interpolated between samples up to one period apart, so
    // per-kernel values -- and any signature composed from them -- are only
    // determined to a relative error of order period/span.  Judging
    // truthfulness tighter than the data permits would brand bias-shifted
    // but faithful compositions as silent lies.  The bound is capped below
    // the ~0.14 relative deviation of the smallest integer-coefficient
    // misstatement, so a genuine coefficient lie still reads `wrong`; past
    // the cap the pipeline's own composability flag (-> degraded) is the
    // load-bearing detector, which the collection-modes oracle sweep pins.
    const double ratio = static_cast<double>(schedule.period_ns) /
                         static_cast<double>(schedule.kernel_span_ns);
    adjusted.truth_tol = std::max(derived_truth_tol(model.spec),
                                  std::min(0.13, 1.5 * ratio));
  }
  return verify_recovery(model, campaign.result, adjusted);
}

std::string RecoveryOutcome::repro() const { return repro_line; }

std::string RecoveryOutcome::describe() const {
  std::ostringstream out;
  out << "seed " << seed << ": overall " << to_string(overall) << " (kept "
      << kept_events << ", selected " << selected_events << ")\n";
  for (const MetricVerdict& v : metrics) {
    out << "  " << v.metric_name << ": " << to_string(v.verdict)
        << " fitness=" << v.fitness;
    if (!v.detail.empty()) out << " -- " << v.detail;
    out << "\n";
  }
  out << "  repro: " << repro_line << "\n";
  return out.str();
}

GeneratedModel reorder_events(const GeneratedModel& model,
                              std::uint64_t permutation_seed) {
  GeneratedModel transformed = model;
  std::mt19937_64 rng(permutation_seed);
  std::shuffle(transformed.machine_spec.events.begin(),
               transformed.machine_spec.events.end(), rng);
  return transformed;
}

GeneratedModel rescale_slots(const GeneratedModel& model, double factor) {
  CATALYST_REQUIRE(factor > 0.0, "rescale_slots: factor must be > 0");
  GeneratedModel transformed = model;
  for (cat::KernelSlot& slot : transformed.benchmark.slots) {
    slot.normalizer *= factor;
    for (pmu::Activity& activity : slot.thread_activities) {
      for (auto& [signal, value] : activity) value *= factor;
    }
  }
  return transformed;
}

GeneratedModel reseed_noise(const GeneratedModel& model,
                            std::uint64_t noise_seed) {
  GeneratedModel transformed = model;
  transformed.machine_spec.noise_seed = noise_seed;
  return transformed;
}

GeneratedModel with_collection_threads(const GeneratedModel& model,
                                       int threads) {
  CATALYST_REQUIRE(threads >= 1,
                   "with_collection_threads: need at least one thread");
  GeneratedModel transformed = model;
  transformed.options.collection_threads = threads;
  return transformed;
}

OutcomeEquivalence equivalent_outcomes(const RecoveryOutcome& a,
                                       const RecoveryOutcome& b) {
  if (a.metrics.size() != b.metrics.size()) {
    return {false, "different metric counts"};
  }
  for (const MetricVerdict& va : a.metrics) {
    const MetricVerdict* vb = nullptr;
    for (const MetricVerdict& candidate : b.metrics) {
      if (candidate.metric_name == va.metric_name) {
        vb = &candidate;
        break;
      }
    }
    if (vb == nullptr) {
      return {false, "metric " + va.metric_name + " missing from one side"};
    }
    if (va.verdict != vb->verdict) {
      return {false, "metric " + va.metric_name + ": " +
                         to_string(va.verdict) + " vs " +
                         to_string(vb->verdict)};
    }
  }
  return {true, {}};
}

}  // namespace catalyst::modelgen
