#include "pmu/machine.hpp"

#include <stdexcept>
#include <unordered_set>

namespace catalyst::pmu {

Machine::Machine(std::string name, std::size_t physical_counters,
                 std::uint64_t noise_seed)
    : name_(std::move(name)),
      physical_counters_(physical_counters),
      noise_seed_(noise_seed) {
  if (physical_counters_ == 0) {
    throw std::invalid_argument("Machine: need at least one counter");
  }
}

void Machine::add_event(EventDefinition event) {
  if (find(event.name).has_value()) {
    throw std::invalid_argument("Machine: duplicate event " + event.name);
  }
  events_.push_back(std::move(event));
}

std::optional<std::size_t> Machine::find(const std::string& name) const {
  for (std::size_t i = 0; i < events_.size(); ++i) {
    if (events_[i].name == name) return i;
  }
  return std::nullopt;
}

std::vector<std::string> Machine::event_names() const {
  std::vector<std::string> names;
  names.reserve(events_.size());
  for (const auto& e : events_) names.push_back(e.name);
  return names;
}

}  // namespace catalyst::pmu
