#include "pmu/machine.hpp"

#include <stdexcept>

#include "core/contract.hpp"
#include "pmu/measure.hpp"

namespace catalyst::pmu {

Machine::Machine(std::string name, std::size_t physical_counters,
                 std::uint64_t noise_seed)
    : name_(std::move(name)),
      physical_counters_(physical_counters),
      noise_seed_(noise_seed) {
  CATALYST_REQUIRE_AS(physical_counters_ > 0, std::invalid_argument,
                      "Machine: need at least one counter");
  CATALYST_REQUIRE_AS(!name_.empty(), std::invalid_argument,
                      "Machine: empty machine name");
}

void Machine::add_event(EventDefinition event) {
  event.name_hash = fnv1a(event.name);
  CATALYST_REQUIRE_AS(!event.name.empty(), std::invalid_argument,
                      "Machine::add_event: empty event name");
  const auto [it, inserted] = index_.try_emplace(event.name, events_.size());
  CATALYST_REQUIRE_AS(inserted, std::invalid_argument,
                      "Machine: duplicate event " + event.name);
  events_.push_back(std::move(event));
}

std::optional<std::size_t> Machine::find(const std::string& name) const {
  const auto it = index_.find(name);
  if (it == index_.end()) return std::nullopt;
  return it->second;
}

std::vector<std::string> Machine::event_names() const {
  std::vector<std::string> names;
  names.reserve(events_.size());
  for (const auto& e : events_) names.push_back(e.name);
  return names;
}

}  // namespace catalyst::pmu
