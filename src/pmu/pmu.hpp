// catalyst/pmu -- umbrella header for the simulated PMU substrate.
#pragma once

#include "pmu/event.hpp"   // IWYU pragma: export
#include "pmu/machine.hpp" // IWYU pragma: export
#include "pmu/measure.hpp" // IWYU pragma: export
#include "pmu/signals.hpp" // IWYU pragma: export
#include "pmu/spec.hpp"    // IWYU pragma: export
