// catalyst/pmu -- machine registration from a plain data spec.
//
// The three shipped machine models (saphira/tempest/vesuvio) are built in
// code; generated models (catalyst::modelgen) instead describe themselves as
// a MachineSpec -- a plain aggregate of the registry contents -- and
// register through build_machine().  Keeping the spec a dumb value type
// means generators, archives, and tests can construct, permute, and rescale
// machine definitions without reaching into Machine's internals, and every
// entry still goes through Machine::add_event's duplicate/hash bookkeeping.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "pmu/event.hpp"
#include "pmu/machine.hpp"

namespace catalyst::pmu {

/// Everything needed to register a simulated machine: the Machine
/// constructor arguments plus the full event registry, in registration
/// order.  Event order is semantically meaningful downstream (collection
/// grouping, QRCP tie-breaks), which is exactly why the metamorphic
/// reorder transform permutes a spec rather than a built Machine.
struct MachineSpec {
  std::string name;
  std::size_t physical_counters = 0;
  std::uint64_t noise_seed = 0;
  std::vector<EventDefinition> events;
};

/// Structural validation: non-empty name, >= 1 physical counter, >= 1
/// event, unique event names, finite term coefficients and noise
/// parameters.  Reports through the contract layer (std::invalid_argument
/// under the default throw policy).
void validate_spec(const MachineSpec& spec);

/// Validates `spec` and registers every event on a fresh Machine.
/// The result behaves exactly like a hand-built model: noise streams are
/// keyed on (noise_seed, event name, repetition, kernel), so two machines
/// built from specs that differ only in event ORDER produce bit-identical
/// readings per event name.
Machine build_machine(const MachineSpec& spec);

}  // namespace catalyst::pmu
