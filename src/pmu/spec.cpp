#include "pmu/spec.hpp"

#include <cmath>
#include <stdexcept>
#include <unordered_set>

#include "core/contract.hpp"

namespace catalyst::pmu {

void validate_spec(const MachineSpec& spec) {
  CATALYST_REQUIRE_AS(!spec.name.empty(), std::invalid_argument,
                      "MachineSpec: machine name is empty");
  CATALYST_REQUIRE_AS(spec.physical_counters >= 1, std::invalid_argument,
                      "MachineSpec '" + spec.name +
                          "': need at least one physical counter");
  CATALYST_REQUIRE_AS(!spec.events.empty(), std::invalid_argument,
                      "MachineSpec '" + spec.name + "': no events");
  std::unordered_set<std::string> seen;
  seen.reserve(spec.events.size());
  for (const EventDefinition& ev : spec.events) {
    CATALYST_REQUIRE_AS(!ev.name.empty(), std::invalid_argument,
                        "MachineSpec '" + spec.name + "': unnamed event");
    CATALYST_REQUIRE_AS(seen.insert(ev.name).second, std::invalid_argument,
                        "MachineSpec '" + spec.name + "': duplicate event '" +
                            ev.name + "'");
    for (const SignalTerm& term : ev.terms) {
      CATALYST_REQUIRE_AS(!term.signal.empty(), std::invalid_argument,
                          "MachineSpec '" + spec.name + "': event '" +
                              ev.name + "' has a term with no signal");
      CATALYST_REQUIRE_AS(std::isfinite(term.coefficient),
                          std::invalid_argument,
                          "MachineSpec '" + spec.name + "': event '" +
                              ev.name + "' has a non-finite coefficient");
    }
    const NoiseModel& noise = ev.noise;
    const bool noise_finite =
        std::isfinite(noise.rel_sigma) && std::isfinite(noise.abs_sigma) &&
        std::isfinite(noise.spike_prob) &&
        std::isfinite(noise.spike_magnitude) &&
        std::isfinite(noise.drift_per_rep);
    CATALYST_REQUIRE_AS(noise_finite, std::invalid_argument,
                        "MachineSpec '" + spec.name + "': event '" + ev.name +
                            "' has a non-finite noise parameter");
    CATALYST_REQUIRE_AS(
        noise.rel_sigma >= 0.0 && noise.abs_sigma >= 0.0 &&
            noise.spike_prob >= 0.0 && noise.spike_prob <= 1.0,
        std::invalid_argument,
        "MachineSpec '" + spec.name + "': event '" + ev.name +
            "' has an out-of-range noise parameter");
    // A slot mask (0 = unconstrained) must name at least one slot the
    // machine actually has, or the event could never be scheduled.
    if (ev.slot_mask != 0) {
      const std::uint64_t machine_slots =
          spec.physical_counters >= 64
              ? ~std::uint64_t{0}
              : (std::uint64_t{1} << spec.physical_counters) - 1;
      CATALYST_REQUIRE_AS((ev.slot_mask & machine_slots) != 0,
                          std::invalid_argument,
                          "MachineSpec '" + spec.name + "': event '" +
                              ev.name +
                              "' has a slot mask with no schedulable slot");
    }
  }
}

Machine build_machine(const MachineSpec& spec) {
  validate_spec(spec);
  Machine machine(spec.name, spec.physical_counters, spec.noise_seed);
  for (const EventDefinition& ev : spec.events) {
    machine.add_event(ev);
  }
  return machine;
}

}  // namespace catalyst::pmu
