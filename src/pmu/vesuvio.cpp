// catalyst/pmu -- "Vesuvio", an older-AMD-flavoured CPU model.
//
// The third machine model exists to exercise the paper's motivating
// portability scenario: its floating-point unit exposes only a combined
// RETIRED_SSE_AVX_FLOPS counter that already counts OPERATIONS (not
// instructions) and cannot distinguish precisions -- so per-precision FLOP
// metrics are provably non-composable here while the combined metric is
// exact, and branch metrics compose from a different (smaller) event set
// than on Saphira.  The model is deliberately lighter (~120 events): older
// parts simply have fewer counters.
#include <cmath>
#include <random>
#include <string>
#include <vector>

#include "pmu/machine.hpp"
#include "pmu/signals.hpp"

namespace catalyst::pmu {

namespace {

// Operations per instruction for a width/precision/FMA combination.
double ops_per_instr(const std::string& width, const std::string& prec,
                     bool fma) {
  double elems = 1.0;
  if (width == "128") elems = prec == "sp" ? 4.0 : 2.0;
  if (width == "256") elems = prec == "sp" ? 8.0 : 4.0;
  if (width == "512") elems = prec == "sp" ? 16.0 : 8.0;
  return elems * (fma ? 2.0 : 1.0);
}

}  // namespace

Machine vesuvio_cpu() {
  Machine m("vesuvio-cpu", /*physical_counters=*/6,
            /*noise_seed=*/0x0E50B102024ULL);

  // --- Floating point: ONE combined operations counter (plus an alias) ------
  std::vector<SignalTerm> all_flops;
  for (const char* width : {"scalar", "128", "256", "512"}) {
    for (const char* prec : {"sp", "dp"}) {
      for (bool fma : {false, true}) {
        all_flops.push_back(
            {sig::fp(width, prec, fma), ops_per_instr(width, prec, fma)});
      }
    }
  }
  m.add_event({"RETIRED_SSE_AVX_FLOPS:ALL",
               "All SSE/AVX floating-point operations, both precisions",
               all_flops, NoiseModel::none()});
  m.add_event({"RETIRED_SSE_AVX_FLOPS:ANY", "Alias of :ALL", all_flops,
               NoiseModel::none()});

  // --- Branching: no separate taken counter ----------------------------------
  m.add_event({"RETIRED_BRANCH_INSTRUCTIONS", "All retired branches",
               {{sig::branch_cond_retired, 1.0}, {sig::branch_uncond, 1.0}},
               NoiseModel::none()});
  m.add_event({"RETIRED_CONDITIONAL_BRANCH_INSTRUCTIONS",
               "Retired conditional branches",
               {{sig::branch_cond_retired, 1.0}}, NoiseModel::none()});
  m.add_event({"RETIRED_BRANCH_INSTRUCTIONS_MISPREDICTED",
               "Mispredicted retired branches",
               {{sig::branch_mispredicted, 1.0}}, NoiseModel::none()});
  m.add_event({"RETIRED_TAKEN_BRANCH_INSTRUCTIONS",
               "Taken branches (cond taken + unconditional)",
               {{sig::branch_cond_taken, 1.0}, {sig::branch_uncond, 1.0}},
               NoiseModel::none()});

  // --- Caches -------------------------------------------------------------------
  const NoiseModel cache_noise = NoiseModel::relative(1.5e-2);
  m.add_event({"DATA_CACHE_ACCESSES", "All DC accesses",
               {{sig::l1d_demand_hit, 1.0}, {sig::l1d_demand_miss, 1.0}},
               cache_noise});
  m.add_event({"DATA_CACHE_MISSES", "DC misses",
               {{sig::l1d_demand_miss, 1.0}}, cache_noise});
  m.add_event({"DATA_CACHE_REFILLS_FROM_L2", "DC refills served by L2",
               {{sig::l2d_demand_hit, 1.0}}, cache_noise});
  m.add_event({"DATA_CACHE_REFILLS_FROM_SYSTEM",
               "DC refills from beyond L2",
               {{sig::l2d_demand_miss, 1.0}}, cache_noise});
  m.add_event({"L2_CACHE_MISS", "L2 misses", {{sig::l2d_demand_miss, 1.0}},
               cache_noise});
  m.add_event({"L3_CACHE_ACCESSES", "L3 lookups",
               {{sig::l3d_demand_hit, 1.0}, {sig::l3d_demand_miss, 1.0}},
               cache_noise});
  m.add_event({"L3_MISSES", "L3 misses", {{sig::l3d_demand_miss, 1.0}},
               cache_noise});

  // --- Pipeline ------------------------------------------------------------------
  m.add_event({"RETIRED_INSTRUCTIONS", "Retired instructions",
               {{sig::instructions, 1.0}}, NoiseModel::none()});
  m.add_event({"RETIRED_UOPS", "Retired micro-ops", {{sig::uops, 1.0}},
               NoiseModel::relative(1e-3)});
  m.add_event({"CYCLES_NOT_IN_HALT", "Core cycles", {{sig::cycles, 1.0}},
               NoiseModel::relative(2e-3)});
  m.add_event({"APERF", "Actual performance clock", {{sig::cycles, 1.0}},
               NoiseModel::relative(2e-3)});
  m.add_event({"MPERF", "Max performance clock", {{sig::cycles, 0.8}},
               NoiseModel::relative(2e-3)});
  m.add_event({"LS_DISPATCH:LOADS", "Dispatched loads", {{sig::loads, 1.0}},
               NoiseModel::relative(5e-3)});
  m.add_event({"LS_DISPATCH:STORES", "Dispatched stores",
               {{sig::stores, 1.0}}, NoiseModel::relative(5e-3)});
  m.add_event({"SMI_RECEIVED", "System-management interrupts (spiky)", {},
               NoiseModel::spiky(0.02, 4.0)});

  // --- Generated filler tail -------------------------------------------------------
  std::mt19937_64 gen(0xA0DA0DA0DULL);
  std::uniform_real_distribution<double> uni(0.0, 1.0);
  const char* units[] = {"DE_DIS_STALL", "EX_RET", "FP_SCHED", "IC_FETCH",
                         "IC_MISS", "L2_PF", "LS_STLF", "LS_MAB",
                         "BP_REDIRECT", "DE_OPQ", "EX_DIV", "L2_LATENCY",
                         "XI_SYS", "PROBE_RESP", "CCX_LINK", "DF_CS"};
  const char* subs[] = {"ALL", "CYCLES", "CMP", "THRESHOLD", "BUSY",
                        "STALL"};
  for (const char* u : units) {
    for (const char* s : subs) {
      const double shape = uni(gen);
      std::vector<SignalTerm> terms;
      NoiseModel noise;
      if (shape < 0.3) {
        terms = {{sig::cycles, 0.05 + 0.8 * uni(gen)}};
        noise = NoiseModel::relative(std::pow(10.0, -1.0 - 3.0 * uni(gen)));
      } else if (shape < 0.55) {
        terms = {{sig::uops, 0.2 + 0.7 * uni(gen)},
                 {sig::instructions, 0.1 + 0.3 * uni(gen)}};
        noise = NoiseModel::relative(std::pow(10.0, -2.0 - 4.0 * uni(gen)));
      } else if (shape < 0.8) {
        noise = NoiseModel::spiky(0.01 + 0.04 * uni(gen),
                                  5.0 + 40.0 * uni(gen));
      }
      // else: dead counter.
      m.add_event({std::string(u) + ":" + s,
                   "Generated filler event (synthetic tail)", terms, noise});
    }
  }
  return m;
}

}  // namespace catalyst::pmu
