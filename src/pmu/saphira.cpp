// catalyst/pmu -- "Saphira", the Sapphire-Rapids-flavoured CPU model.
//
// The model registers ~350 raw events with the counting semantics the
// paper's analysis must survive:
//
//   * the eight FP_ARITH_INST_RETIRED events (scalar/128/256/512 x SP/DP),
//     each counting FMA instructions TWICE (the documented Intel behaviour
//     that makes "FMA instructions" non-composable in Table V);
//   * aliased and linearly-combined FP/branch/cache events (duplicate
//     columns, scaled columns, and linear combinations for the QR to prune);
//   * cycle and slot counters with enormous norms (the max-norm-pivot trap
//     of Section II);
//   * noisy cache events (Fig. 2d) and near-deterministic branch/FP events
//     (Figs. 2a-2b);
//   * a long tail of generated "filler" units whose events are plausible
//     linear functionals of generic pipeline activity with assorted noise
//     levels, populating the variability continuum of Fig. 2.
//
// Everything is synthetic; names follow Intel's naming style so that the
// reproduced tables read like the paper's.
#include <cmath>
#include <random>
#include <string>
#include <vector>

#include "pmu/machine.hpp"
#include "pmu/signals.hpp"

namespace catalyst::pmu {

namespace {

EventDefinition ev(std::string name, std::string desc,
                   std::vector<SignalTerm> terms,
                   NoiseModel noise = NoiseModel::none()) {
  EventDefinition e;
  e.name = std::move(name);
  e.description = std::move(desc);
  e.terms = std::move(terms);
  e.noise = noise;
  return e;
}

}  // namespace

Machine saphira_cpu() {
  Machine m("saphira-cpu", /*physical_counters=*/8,
            /*noise_seed=*/0x5a9B1AC0FFEE1234ULL);
  // --- Floating point: the ground-truth FP_ARITH family ---------------------
  struct WidthInfo {
    const char* tag;     // event-name fragment
    const char* width;   // signal fragment
  };
  const WidthInfo widths[] = {{"SCALAR", "scalar"},
                              {"128B_PACKED", "128"},
                              {"256B_PACKED", "256"},
                              {"512B_PACKED", "512"}};
  const struct {
    const char* tag;
    const char* prec;
  } precisions[] = {{"SINGLE", "sp"}, {"DOUBLE", "dp"}};

  for (const auto& w : widths) {
    for (const auto& p : precisions) {
      // Counts non-FMA instructions once and FMA instructions twice,
      // mirroring the documented FP_ARITH_INST_RETIRED semantics.
      m.add_event(ev(
          std::string("FP_ARITH_INST_RETIRED:") + w.tag + "_" + p.tag,
          "Retired FP instructions of this width/precision (FMA counts x2)",
          {{sig::fp(w.width, p.prec, false), 1.0},
           {sig::fp(w.width, p.prec, true), 2.0}}));
    }
  }
  // Aggregate FP events: linear combinations of the eight base events.
  {
    std::vector<SignalTerm> vec_terms;
    std::vector<SignalTerm> any_terms;
    std::vector<SignalTerm> sp_terms;
    std::vector<SignalTerm> dp_terms;
    for (const auto& w : widths) {
      for (const auto& p : precisions) {
        const bool vector_width = std::string(w.width) != "scalar";
        for (bool fma : {false, true}) {
          const double c = fma ? 2.0 : 1.0;
          const std::string s = sig::fp(w.width, p.prec, fma);
          any_terms.push_back({s, c});
          if (vector_width) vec_terms.push_back({s, c});
          if (std::string(p.prec) == "sp") sp_terms.push_back({s, c});
          if (std::string(p.prec) == "dp") dp_terms.push_back({s, c});
        }
      }
    }
    m.add_event(ev("FP_ARITH_INST_RETIRED:VECTOR",
                   "All packed FP instructions (linear combination)",
                   vec_terms));
    m.add_event(ev("FP_ARITH_INST_RETIRED:ANY",
                   "All FP instructions (linear combination)", any_terms));
    m.add_event(ev("FP_ARITH_INST_RETIRED:ANY_SINGLE",
                   "All SP FP instructions", sp_terms));
    m.add_event(ev("FP_ARITH_INST_RETIRED:ANY_DOUBLE",
                   "All DP FP instructions", dp_terms));
    // Port-dispatch approximations: same totals smeared across ports with
    // scheduling noise -- numerically dependent but noisy.
    m.add_event(ev("FP_ARITH_DISPATCHED:PORT_0", "FP uops on port 0 (~55%)",
                   [&] {
                     auto t = any_terms;
                     for (auto& x : t) x.coefficient *= 0.55;
                     return t;
                   }(),
                   NoiseModel::relative(2e-2)));
    m.add_event(ev("FP_ARITH_DISPATCHED:PORT_1", "FP uops on port 1 (~45%)",
                   [&] {
                     auto t = any_terms;
                     for (auto& x : t) x.coefficient *= 0.45;
                     return t;
                   }(),
                   NoiseModel::relative(2e-2)));
  }
  m.add_event(ev("ASSISTS:FP", "FP assists (never fires in CAT kernels)", {},
                 NoiseModel::spiky(0.01, 3.0)));

  // --- Branching -------------------------------------------------------------
  m.add_event(ev("BR_INST_RETIRED:ALL_BRANCHES",
                 "All retired branches (conditional + unconditional)",
                 {{sig::branch_cond_retired, 1.0}, {sig::branch_uncond, 1.0}}));
  m.add_event(ev("BR_INST_RETIRED:COND", "Retired conditional branches",
                 {{sig::branch_cond_retired, 1.0}}));
  m.add_event(ev("BR_INST_RETIRED:COND_TAKEN",
                 "Retired conditional branches, taken",
                 {{sig::branch_cond_taken, 1.0}}));
  m.add_event(ev("BR_INST_RETIRED:COND_NTAKEN",
                 "Retired conditional branches, not taken",
                 {{sig::branch_cond_retired, 1.0},
                  {sig::branch_cond_taken, -1.0}}));
  m.add_event(ev("BR_INST_RETIRED:NEAR_TAKEN",
                 "All taken branches (cond taken + unconditional)",
                 {{sig::branch_cond_taken, 1.0}, {sig::branch_uncond, 1.0}}));
  m.add_event(ev("BR_INST_RETIRED:NEAR_CALL", "Near calls (quiet here)", {}));
  m.add_event(ev("BR_INST_RETIRED:NEAR_RETURN", "Near returns (quiet)", {}));
  m.add_event(ev("BR_INST_RETIRED:FAR_BRANCH", "Far branches (quiet)", {},
                 NoiseModel::spiky(0.02, 5.0)));
  m.add_event(ev("BR_MISP_RETIRED", "Mispredicted retired branches",
                 {{sig::branch_mispredicted, 1.0}}));
  m.add_event(ev("BR_MISP_RETIRED:ALL_BRANCHES",
                 "Mispredicted retired branches (alias)",
                 {{sig::branch_mispredicted, 1.0}}));
  m.add_event(ev("BR_MISP_RETIRED:COND",
                 "Mispredicted conditional branches (alias here)",
                 {{sig::branch_mispredicted, 1.0}}));
  m.add_event(ev("BR_MISP_RETIRED:COND_TAKEN",
                 "Mispredicted cond. branches resolving taken (~half, noisy)",
                 {{sig::branch_mispredicted, 0.5}},
                 NoiseModel::relative(5e-2)));
  m.add_event(ev("BACLEARS:ANY", "Front-end re-steers (noisy fraction)",
                 {{sig::branch_mispredicted, 0.3}},
                 NoiseModel::relative(1e-1)));
  // NOTE: deliberately no event measures branch.cond.executed -- Table VII's
  // "Conditional Branches Executed" must come out NON-composable (error 1).

  // --- Data caches -------------------------------------------------------------
  // Cache events carry multiplicative noise: Fig. 2d's continuum.
  const NoiseModel cache_noise = NoiseModel::relative(8e-3);
  const NoiseModel cache_noise_l23 = NoiseModel::relative(2e-2);
  m.add_event(ev("MEM_LOAD_RETIRED:L1_HIT", "Demand loads hitting L1D",
                 {{sig::l1d_demand_hit, 1.0}}, cache_noise));
  m.add_event(ev("MEM_LOAD_RETIRED:L1_MISS", "Demand loads missing L1D",
                 {{sig::l1d_demand_miss, 1.0}}, cache_noise));
  m.add_event(ev("MEM_LOAD_RETIRED:L2_HIT", "Demand loads hitting L2",
                 {{sig::l2d_demand_hit, 1.0}}, cache_noise_l23));
  m.add_event(ev("MEM_LOAD_RETIRED:L2_MISS", "Demand loads missing L2",
                 {{sig::l2d_demand_miss, 1.0}}, cache_noise_l23));
  m.add_event(ev("MEM_LOAD_RETIRED:L3_HIT", "Demand loads hitting L3",
                 {{sig::l3d_demand_hit, 1.0}}, cache_noise_l23));
  m.add_event(ev("MEM_LOAD_RETIRED:L3_MISS", "Demand loads missing L3",
                 {{sig::l3d_demand_miss, 1.0}}, cache_noise_l23));
  m.add_event(ev("MEM_LOAD_RETIRED:FB_HIT",
                 "Loads merged into an in-flight fill buffer (noisy)",
                 {{sig::l1d_demand_miss, 0.12}}, NoiseModel::relative(3e-1)));
  m.add_event(ev("L2_RQSTS:DEMAND_DATA_RD_HIT", "L2 demand data-read hits",
                 {{sig::l2d_demand_hit, 1.0}}, cache_noise_l23));
  m.add_event(ev("L2_RQSTS:DEMAND_DATA_RD_MISS", "L2 demand data-read misses",
                 {{sig::l2d_demand_miss, 1.0}}, cache_noise_l23));
  m.add_event(ev("L2_RQSTS:ALL_DEMAND_DATA_RD", "All L2 demand data reads",
                 {{sig::l2d_demand_hit, 1.0}, {sig::l2d_demand_miss, 1.0}},
                 cache_noise_l23));
  m.add_event(ev("L2_RQSTS:ALL_DEMAND_MISS", "All L2 demand misses",
                 {{sig::l2d_demand_miss, 1.0}}, cache_noise_l23));
  m.add_event(ev("L2_RQSTS:REFERENCES", "All L2 references (incl. prefetch)",
                 {{sig::l2d_demand_hit, 1.0},
                  {sig::l2d_demand_miss, 1.0},
                  {sig::l1d_demand_miss, 0.25}},
                 NoiseModel::relative(8e-2)));
  m.add_event(ev("LONGEST_LAT_CACHE:MISS", "LLC misses",
                 {{sig::l3d_demand_miss, 1.0}}, cache_noise_l23));
  m.add_event(ev("LONGEST_LAT_CACHE:REFERENCE", "LLC references",
                 {{sig::l3d_demand_hit, 1.0}, {sig::l3d_demand_miss, 1.0}},
                 cache_noise_l23));
  m.add_event(ev("OFFCORE_REQUESTS:DEMAND_DATA_RD",
                 "Demand data reads leaving the core",
                 {{sig::l2d_demand_miss, 1.0}}, NoiseModel::relative(5e-2)));
  m.add_event(ev("OFFCORE_REQUESTS:ALL_REQUESTS",
                 "All offcore requests (incl. prefetch traffic, noisy)",
                 {{sig::l2d_demand_miss, 1.35}}, NoiseModel::relative(2e-1)));
  m.add_event(ev("SW_PREFETCH_ACCESS:ANY", "SW prefetches (quiet)", {}));

  // --- Cycles / instructions / slots: the huge-norm columns ---------------------
  m.add_event(ev("INST_RETIRED:ANY", "Retired instructions (fixed counter)",
                 {{sig::instructions, 1.0}}));
  m.add_event(ev("INST_RETIRED:ANY_P", "Retired instructions (programmable)",
                 {{sig::instructions, 1.0}}));
  // Core cycles drift upward across repetitions (thermal/frequency ramp) on
  // top of the per-run jitter -- the systematic-noise case of Section IV.
  m.add_event(ev("CPU_CLK_UNHALTED:THREAD", "Core cycles",
                 {{sig::cycles, 1.0}},
                 NoiseModel{3e-3, 0.0, 0.0, 0.0, 2e-3}));
  m.add_event(ev("CPU_CLK_UNHALTED:REF_TSC", "Reference cycles (~0.8x core)",
                 {{sig::cycles, 0.8}}, NoiseModel::relative(3e-3)));
  m.add_event(ev("CPU_CLK_UNHALTED:DISTRIBUTED", "Cycles (SMT-distributed)",
                 {{sig::cycles, 1.0}}, NoiseModel::relative(5e-3)));
  m.add_event(ev("TOPDOWN:SLOTS", "Pipeline slots (6 per cycle)",
                 {{sig::cycles, 6.0}}, NoiseModel::relative(3e-3)));
  m.add_event(ev("UOPS_ISSUED:ANY", "Issued uops",
                 {{sig::uops, 1.0}}, NoiseModel::relative(1e-3)));
  m.add_event(ev("UOPS_RETIRED:SLOTS", "Retired uop slots",
                 {{sig::uops, 1.0}}, NoiseModel::relative(1e-3)));
  m.add_event(ev("UOPS_EXECUTED:THREAD", "Executed uops (incl. replay)",
                 {{sig::uops, 1.05}}, NoiseModel::relative(8e-3)));
  m.add_event(ev("MEM_INST_RETIRED:ALL_LOADS", "All retired loads",
                 {{sig::loads, 1.0}}));
  m.add_event(ev("MEM_INST_RETIRED:ALL_STORES", "All retired stores",
                 {{sig::stores, 1.0}}));
  m.add_event(ev("ARITH:DIV_ACTIVE", "Divider active cycles (quiet)", {},
                 NoiseModel::spiky(0.02, 10.0)));

  // --- Instruction cache ---------------------------------------------------------
  const NoiseModel icache_noise = NoiseModel::relative(1.2e-2);
  m.add_event(ev("ICACHE_64B:IFTAG_HIT", "Instruction fetches hitting L1I",
                 {{sig::l1i_hit, 1.0}}, icache_noise));
  m.add_event(ev("ICACHE_64B:IFTAG_MISS", "Instruction fetches missing L1I",
                 {{sig::l1i_miss, 1.0}}, icache_noise));
  m.add_event(ev("FRONTEND_RETIRED:L1I_MISS",
                 "Retired instructions after an L1I miss (alias here)",
                 {{sig::l1i_miss, 1.0}}, icache_noise));
  m.add_event(ev("FRONTEND_RETIRED:L2I_HIT",
                 "Instruction fetches served by L2",
                 {{sig::l2i_hit, 1.0}}, icache_noise));
  m.add_event(ev("FRONTEND_RETIRED:L2_MISS",
                 "Instruction fetches missing L2",
                 {{sig::l2i_miss, 1.0}}, icache_noise));
  m.add_event(ev("ICACHE_64B:IFTAG_ALL", "All instruction-fetch tag lookups",
                 {{sig::l1i_hit, 1.0}, {sig::l1i_miss, 1.0}}, icache_noise));
  m.add_event(ev("ICACHE_16B:IFDATA_STALL",
                 "Cycles stalled on L1I misses (noisy, ~30/miss)",
                 {{sig::l1i_miss, 30.0}}, NoiseModel::relative(9e-2)));

  // --- TLBs -------------------------------------------------------------------
  // Data-TLB events read the TLB-simulator signals (driven by the data-
  // cache benchmark; zero during compute kernels, the Section II example of
  // irrelevant all-zero columns).  Instruction-TLB events stay spiky
  // background.
  const NoiseModel tlb_noise = NoiseModel::relative(3e-2);
  m.add_event(ev("DTLB_LOAD_MISSES:MISS_CAUSES_A_WALK",
                 "Load translations missing both TLB levels",
                 {{sig::dtlb_walk, 1.0}}, tlb_noise));
  m.add_event(ev("DTLB_LOAD_MISSES:WALK_COMPLETED",
                 "Completed page walks (alias of walks here)",
                 {{sig::dtlb_walk, 1.0}}, tlb_noise));
  m.add_event(ev("DTLB_LOAD_MISSES:WALK_ACTIVE",
                 "Cycles a walk was active (~26 per walk, noisy)",
                 {{sig::dtlb_walk, 26.0}}, NoiseModel::relative(8e-2)));
  m.add_event(ev("DTLB_LOAD_MISSES:STLB_HIT",
                 "First-level DTLB misses that hit the STLB",
                 {{sig::stlb_hit, 1.0}}, tlb_noise));
  m.add_event(ev("DTLB_LOAD_ACCESS:ANY", "All load translations",
                 {{sig::dtlb_hit, 1.0}, {sig::dtlb_miss, 1.0}}, tlb_noise));
  for (const char* n :
       {"DTLB_STORE_MISSES:MISS_CAUSES_A_WALK",
        "DTLB_STORE_MISSES:WALK_COMPLETED", "ITLB_MISSES:MISS_CAUSES_A_WALK",
        "ITLB_MISSES:WALK_COMPLETED", "ITLB_MISSES:WALK_ACTIVE"}) {
    m.add_event(ev(n, "TLB walk activity (spiky background)", {},
                   NoiseModel::spiky(0.03, 20.0)));
  }

  // --- Generated filler units ------------------------------------------------
  // A long tail of plausible events: linear functionals over generic
  // pipeline signals with log-uniform noise levels.  Deterministic: the
  // generator RNG is fixed, so the machine is identical in every process.
  std::mt19937_64 gen(0xCAFEBABEDEADBEEFULL);
  std::uniform_real_distribution<double> uni(0.0, 1.0);
  const char* units[] = {"IDQ",          "LSD",           "DSB2MITE",
                         "FRONTEND",     "ICACHE_DATA",   "ICACHE_TAG",
                         "DECODE",       "RESOURCE_STALLS", "EXE_ACTIVITY",
                         "CYCLE_ACTIVITY", "PARTIAL_RAT_STALLS", "RS_EVENTS",
                         "ROB_MISC",     "LD_BLOCKS",     "STORE_FORWARD",
                         "MACHINE_CLEARS", "OTHER_ASSISTS", "UOPS_DISPATCHED",
                         "PORT_UTIL",    "SERIALIZATION", "L1D_PEND_MISS",
                         "DSB_FILL",     "SQ_MISC",       "XSNP_RESPONSES",
                         "CORE_POWER",   "PKG_ENERGY",    "MISC_RETIRED",
                         "TX_MEM",       "TX_EXEC",       "UNC_ARB",
                         "UNC_CHA",      "UNC_IMC",       "MEM_TRANS_RETIRED",
                         "FRONTEND_RETIRED", "BE_BOUND",  "FE_BOUND"}; // 36
  const char* subs[] = {"CORE", "ANY", "CYCLES", "STALLS", "OCCUPANCY",
                        "COUNT", "THRESH_1", "THRESH_4"};  // 8
  for (const char* u : units) {
    for (const char* s : subs) {
      const double shape = uni(gen);
      std::vector<SignalTerm> terms;
      NoiseModel noise;
      if (shape < 0.25) {
        // Cycle-proportional stall/occupancy counter, fairly noisy.
        terms = {{sig::cycles, 0.05 + 0.9 * uni(gen)}};
        noise = NoiseModel::relative(std::pow(10.0, -1.0 - 3.0 * uni(gen)));
      } else if (shape < 0.5) {
        // Uop/instruction-proportional counter, mildly noisy.
        terms = {{sig::uops, 0.1 + 0.8 * uni(gen)},
                 {sig::instructions, 0.1 + 0.4 * uni(gen)}};
        noise = NoiseModel::relative(std::pow(10.0, -2.0 - 4.0 * uni(gen)));
      } else if (shape < 0.65) {
        // Load/store-derived counter.
        terms = {{sig::loads, 0.2 + 0.8 * uni(gen)},
                 {sig::stores, uni(gen)}};
        noise = NoiseModel::relative(std::pow(10.0, -2.0 - 3.0 * uni(gen)));
      } else if (shape < 0.85) {
        // Background/spiky counter: zero ideal value, sporadic spikes.
        noise = NoiseModel::spiky(0.01 + 0.05 * uni(gen), 5.0 + 50.0 * uni(gen));
      } else {
        // Dead counter: never fires under CAT kernels (discarded as
        // irrelevant by the zero-measurement rule).
      }
      m.add_event(ev(std::string(u) + ":" + s,
                     "Generated filler event (synthetic tail)", terms, noise));
    }
  }
  return m;
}

}  // namespace catalyst::pmu
