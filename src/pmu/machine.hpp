// catalyst/pmu -- simulated machine models.
//
// A Machine is a named registry of raw events plus the PMU resource limits
// the collection layer (catalyst::vpapi) must respect.  Two builders ship
// with the library:
//   * saphira_cpu()  -- an Intel Sapphire-Rapids-flavoured CPU model,
//   * tempest_gpu()  -- an AMD MI250X-flavoured GPU model (8 devices).
// Both are synthetic: names and counting semantics follow the real parts
// closely enough for the paper's pipeline to face the same structure
// (aliases, linear combinations, zero columns, huge-norm cycle counters,
// noisy cache events), but no vendor data is used.
#pragma once

#include <cstddef>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "pmu/event.hpp"

namespace catalyst::pmu {

/// A simulated machine: its raw-event registry and PMU limits.
class Machine {
 public:
  Machine(std::string name, std::size_t physical_counters,
          std::uint64_t noise_seed);

  const std::string& name() const noexcept { return name_; }

  /// Number of events that can be measured in a single run.
  std::size_t physical_counters() const noexcept { return physical_counters_; }

  /// Base seed for all noise on this machine.
  std::uint64_t noise_seed() const noexcept { return noise_seed_; }

  /// Registers an event; throws std::invalid_argument on duplicate names.
  /// Also caches fnv1a(name) on the event so the measurement hot path never
  /// re-hashes, and indexes the name for O(1) find().
  void add_event(EventDefinition event);

  std::size_t num_events() const noexcept { return events_.size(); }
  const std::vector<EventDefinition>& events() const noexcept {
    return events_;
  }
  const EventDefinition& event(std::size_t i) const { return events_.at(i); }

  /// Finds an event by exact name.  O(1): backed by a name -> index map
  /// maintained by add_event (hot in vpapi::Session::add_event, which runs
  /// once per (repetition x group) collection unit).
  std::optional<std::size_t> find(const std::string& name) const;

  /// All event names, in registration order.
  std::vector<std::string> event_names() const;

 private:
  std::string name_;
  std::size_t physical_counters_;
  std::uint64_t noise_seed_;
  std::vector<EventDefinition> events_;
  std::unordered_map<std::string, std::size_t> index_;  ///< name -> events_ i.
};

/// Builds the Sapphire-Rapids-flavoured CPU model (~350 events, 8 counters).
Machine saphira_cpu();

/// Builds the MI250X-flavoured GPU model (8 devices, ~1200 events).
/// Only device 0 executes work; events qualified with device=1..7 read zero
/// (mirroring the paper's footnote that metrics are defined for one device).
Machine tempest_gpu();

/// Builds the older-AMD-flavoured CPU model (~110 events, 6 counters):
/// a single combined SSE/AVX FLOPs counter (operations, both precisions),
/// no separate conditional-taken counter -- the machine on which
/// per-precision FLOP metrics are provably non-composable.
Machine vesuvio_cpu();

}  // namespace catalyst::pmu
