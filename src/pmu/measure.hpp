// catalyst/pmu -- the measurement engine.
//
// Turns (machine, event, kernel activity, repetition index) into the integer
// counter reading a real PMU would report: ideal linear functional, plus the
// event's noise model, rounded to a non-negative integer.
//
// Determinism contract: every noise draw comes from a stateless counter-based
// stream keyed on
//   fnv1a(event name) ^ machine seed ^ mix(repetition) ^ mix(kernel index)
// so any single reading can be reproduced in isolation; there is no hidden
// global state and no dependence on measurement order or thread scheduling.
// A reading changes if and only if one of those four coordinates changes --
// in particular it does NOT depend on whether the ideal value was evaluated
// fresh or served from an IdealTable, nor on which event set or session
// performed the measurement.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "pmu/machine.hpp"

namespace catalyst::pmu {

/// FNV-1a 64-bit hash (stable across platforms, unlike std::hash).
std::uint64_t fnv1a(const std::string& s) noexcept;

/// SplitMix64 finalizer; decorrelates structured integers (rep/kernel ids).
std::uint64_t mix64(std::uint64_t x) noexcept;

/// One uniform [0, 1) draw (53-bit resolution) from a stateless key -- the
/// single-draw sibling of the counter-based noise stream below.  The
/// fault-injection layer (catalyst::faults) builds its per-coordinate fault
/// decisions on this so faults obey the same determinism contract as noise.
double uniform_from_key(std::uint64_t key) noexcept;

/// One counter reading for `event` over `activity` at repetition `rep`,
/// kernel slot `kernel_index`.
double measure_event(const Machine& machine, const EventDefinition& event,
                     const Activity& activity, std::uint64_t rep,
                     std::uint64_t kernel_index);

/// Same reading, but with the ideal (noise-free, unrounded) value already in
/// hand.  `measure_event(m, e, act, r, k)` is exactly
/// `measure_from_ideal(m, e, e.ideal(act), r, k)`; collection paths that
/// revisit the same (event, kernel) pair across repetitions use this with an
/// IdealTable so the repetition-invariant functional is evaluated once.
double measure_from_ideal(const Machine& machine, const EventDefinition& event,
                          double ideal, std::uint64_t rep,
                          std::uint64_t kernel_index);

/// Precomputed ideal readings over a kernel sequence:
/// `ideal(e, k)` = machine event e's noise-free functional over
/// activities[k].  Ideal values are repetition-invariant, so one table built
/// up front serves every (repetition, group) unit of a collection sweep --
/// and, being immutable after construction, can be shared across worker
/// threads without synchronization.
class IdealTable {
 public:
  IdealTable() = default;

  /// Eagerly evaluates every event of the machine over `activities`.
  IdealTable(const Machine& machine, const std::vector<Activity>& activities);

  /// Eagerly evaluates only the listed machine event indices; lookups for
  /// other events report !has() and callers fall back to evaluating fresh.
  IdealTable(const Machine& machine, const std::vector<Activity>& activities,
             const std::vector<std::size_t>& event_indices);

  /// True when `event_index` has a precomputed row.
  bool has(std::size_t event_index) const noexcept {
    return event_index < present_.size() && present_[event_index] != 0;
  }

  /// Precomputed ideal of event `event_index` over activities[kernel_index].
  /// Only valid when has(event_index) and kernel_index < num_kernels().
  double ideal(std::size_t event_index, std::size_t kernel_index) const {
    return rows_[event_index][kernel_index];
  }

  std::size_t num_kernels() const noexcept { return num_kernels_; }

 private:
  void fill_row(const Machine& machine, const std::vector<Activity>& activities,
                std::size_t event_index);

  std::vector<std::vector<double>> rows_;  ///< [event][kernel], sparse rows.
  std::vector<char> present_;              ///< Row computed?
  std::size_t num_kernels_ = 0;
};

/// Measurement vector of one event across a sequence of kernel activities
/// (one entry per activity), at repetition `rep`.
std::vector<double> measure_vector(const Machine& machine,
                                   const EventDefinition& event,
                                   const std::vector<Activity>& activities,
                                   std::uint64_t rep);

/// Measurement matrix columns for every event of the machine:
/// result[e][k] = reading of event e over activities[k].
/// This is the "measure everything at once" shortcut used by tests; the
/// realistic multiplexed collection path lives in catalyst::vpapi.
std::vector<std::vector<double>> measure_all(
    const Machine& machine, const std::vector<Activity>& activities,
    std::uint64_t rep);

}  // namespace catalyst::pmu
