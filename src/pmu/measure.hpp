// catalyst/pmu -- the measurement engine.
//
// Turns (machine, event, kernel activity, repetition index) into the integer
// counter reading a real PMU would report: ideal linear functional, plus the
// event's noise model, rounded to a non-negative integer.
//
// Determinism: the noise RNG is seeded from
//   fnv1a(event name) ^ machine seed ^ mix(repetition) ^ mix(kernel index)
// so any single reading can be reproduced in isolation; there is no hidden
// global state and no dependence on measurement order.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "pmu/machine.hpp"

namespace catalyst::pmu {

/// FNV-1a 64-bit hash (stable across platforms, unlike std::hash).
std::uint64_t fnv1a(const std::string& s) noexcept;

/// SplitMix64 finalizer; decorrelates structured integers (rep/kernel ids).
std::uint64_t mix64(std::uint64_t x) noexcept;

/// One counter reading for `event` over `activity` at repetition `rep`,
/// kernel slot `kernel_index`.
double measure_event(const Machine& machine, const EventDefinition& event,
                     const Activity& activity, std::uint64_t rep,
                     std::uint64_t kernel_index);

/// Measurement vector of one event across a sequence of kernel activities
/// (one entry per activity), at repetition `rep`.
std::vector<double> measure_vector(const Machine& machine,
                                   const EventDefinition& event,
                                   const std::vector<Activity>& activities,
                                   std::uint64_t rep);

/// Measurement matrix columns for every event of the machine:
/// result[e][k] = reading of event e over activities[k].
/// This is the "measure everything at once" shortcut used by tests; the
/// realistic multiplexed collection path lives in catalyst::vpapi.
std::vector<std::vector<double>> measure_all(
    const Machine& machine, const std::vector<Activity>& activities,
    std::uint64_t rep);

}  // namespace catalyst::pmu
