#include "pmu/measure.hpp"

#include <algorithm>
#include <cmath>

#include "core/contract.hpp"

namespace catalyst::pmu {

std::uint64_t fnv1a(const std::string& s) noexcept {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (unsigned char c : s) {
    h ^= c;
    h *= 0x100000001b3ULL;
  }
  return h;
}

std::uint64_t mix64(std::uint64_t x) noexcept {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

double uniform_from_key(std::uint64_t key) noexcept {
  return static_cast<double>(mix64(key) >> 11) * 0x1.0p-53;
}

namespace {

constexpr std::uint64_t kGolden = 0x9e3779b97f4a7c15ULL;
constexpr double kTwoPi = 6.28318530717958647692528676655900577;

// Stateless counter-based uniform/normal stream: draw i is
// mix64(key + i * kGolden), i.e. the splitmix64 sequence seeded at `key`.
// Construction costs nothing, which is the property the per-sample hot path
// needs -- a std::mt19937_64 here costs a 312-word seeding pass (~2.5 KB of
// state) for the two or three draws a noise model actually consumes.
class NoiseRng {
 public:
  explicit NoiseRng(std::uint64_t key) noexcept : key_(key) {}

  std::uint64_t next_u64() noexcept { return mix64(key_ + kGolden * ctr_++); }

  /// Uniform in [0, 1), 53-bit resolution.
  double uniform() noexcept {
    return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
  }

  /// Standard normal via Box-Muller; a pair shares two uniform draws.
  double normal() noexcept {
    if (have_spare_) {
      have_spare_ = false;
      return spare_;
    }
    // u1 in (0, 1] keeps the log finite.
    const double u1 = static_cast<double>((next_u64() >> 11) + 1) * 0x1.0p-53;
    const double u2 = uniform();
    const double r = std::sqrt(-2.0 * std::log(u1));
    spare_ = r * std::sin(kTwoPi * u2);
    have_spare_ = true;
    return r * std::cos(kTwoPi * u2);
  }

 private:
  std::uint64_t key_;
  std::uint64_t ctr_ = 0;
  double spare_ = 0.0;
  bool have_spare_ = false;
};

}  // namespace

double measure_from_ideal(const Machine& machine, const EventDefinition& event,
                          double ideal, std::uint64_t rep,
                          std::uint64_t kernel_index) {
  // A non-finite ideal means the event functional (or an upstream signal)
  // is broken; rounding it below would silently turn it into garbage
  // readings, so reject it at the source.
  CATALYST_ASSUME_FINITE(ideal, "measure_from_ideal: event '" + event.name +
                                    "' has a non-finite ideal value");
  double v = ideal;
  if (event.noise.drift_per_rep != 0.0) {
    // Deterministic systematic drift; separate from the seeded jitter so
    // it reproduces across reruns of the same repetition index.
    v *= 1.0 + event.noise.drift_per_rep * static_cast<double>(rep);
  }
  if (!event.noise.is_noise_free()) {
    const std::uint64_t name_hash =
        event.name_hash != 0 ? event.name_hash : fnv1a(event.name);
    NoiseRng rng(name_hash ^ machine.noise_seed() ^ mix64(rep + 1) ^
                 mix64(kernel_index + 0x10001));
    if (event.noise.rel_sigma > 0.0) {
      v *= 1.0 + event.noise.rel_sigma * rng.normal();
    }
    if (event.noise.abs_sigma > 0.0) {
      v += event.noise.abs_sigma * rng.normal();
    }
    if (event.noise.spike_prob > 0.0) {
      if (rng.uniform() < event.noise.spike_prob) {
        v += rng.uniform() * event.noise.spike_magnitude;
      }
    }
  }
  // Hardware counters report non-negative integers.
  const double reading = std::max(0.0, std::round(v));
  CATALYST_ENSURE(std::isfinite(reading),
                  "measure_from_ideal: non-finite reading for event '" +
                      event.name + "'");
  return reading;
}

double measure_event(const Machine& machine, const EventDefinition& event,
                     const Activity& activity, std::uint64_t rep,
                     std::uint64_t kernel_index) {
  return measure_from_ideal(machine, event, event.ideal(activity), rep,
                            kernel_index);
}

void IdealTable::fill_row(const Machine& machine,
                          const std::vector<Activity>& activities,
                          std::size_t event_index) {
  const EventDefinition& event = machine.event(event_index);
  std::vector<double>& row = rows_[event_index];
  row.reserve(activities.size());
  for (const Activity& act : activities) {
    row.push_back(event.ideal(act));
  }
  present_[event_index] = 1;
}

IdealTable::IdealTable(const Machine& machine,
                       const std::vector<Activity>& activities)
    : rows_(machine.num_events()),
      present_(machine.num_events(), 0),
      num_kernels_(activities.size()) {
  for (std::size_t e = 0; e < machine.num_events(); ++e) {
    fill_row(machine, activities, e);
  }
}

IdealTable::IdealTable(const Machine& machine,
                       const std::vector<Activity>& activities,
                       const std::vector<std::size_t>& event_indices)
    : rows_(machine.num_events()),
      present_(machine.num_events(), 0),
      num_kernels_(activities.size()) {
  for (std::size_t e : event_indices) {
    if (!present_[e]) fill_row(machine, activities, e);
  }
}

std::vector<double> measure_vector(const Machine& machine,
                                   const EventDefinition& event,
                                   const std::vector<Activity>& activities,
                                   std::uint64_t rep) {
  std::vector<double> out;
  out.reserve(activities.size());
  for (std::size_t k = 0; k < activities.size(); ++k) {
    out.push_back(measure_event(machine, event, activities[k], rep, k));
  }
  return out;
}

std::vector<std::vector<double>> measure_all(
    const Machine& machine, const std::vector<Activity>& activities,
    std::uint64_t rep) {
  std::vector<std::vector<double>> out;
  out.reserve(machine.num_events());
  for (const auto& e : machine.events()) {
    out.push_back(measure_vector(machine, e, activities, rep));
  }
  return out;
}

}  // namespace catalyst::pmu
