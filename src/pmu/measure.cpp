#include "pmu/measure.hpp"

#include <algorithm>
#include <cmath>
#include <random>

namespace catalyst::pmu {

std::uint64_t fnv1a(const std::string& s) noexcept {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (unsigned char c : s) {
    h ^= c;
    h *= 0x100000001b3ULL;
  }
  return h;
}

std::uint64_t mix64(std::uint64_t x) noexcept {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

double measure_event(const Machine& machine, const EventDefinition& event,
                     const Activity& activity, std::uint64_t rep,
                     std::uint64_t kernel_index) {
  double v = event.ideal(activity);
  if (event.noise.drift_per_rep != 0.0) {
    // Deterministic systematic drift; separate from the seeded jitter so
    // it reproduces across reruns of the same repetition index.
    v *= 1.0 + event.noise.drift_per_rep * static_cast<double>(rep);
  }
  if (!event.noise.is_noise_free()) {
    const std::uint64_t seed = fnv1a(event.name) ^ machine.noise_seed() ^
                               mix64(rep + 1) ^ mix64(kernel_index + 0x10001);
    std::mt19937_64 rng(seed);
    std::normal_distribution<double> gauss(0.0, 1.0);
    if (event.noise.rel_sigma > 0.0) {
      v *= 1.0 + event.noise.rel_sigma * gauss(rng);
    }
    if (event.noise.abs_sigma > 0.0) {
      v += event.noise.abs_sigma * gauss(rng);
    }
    if (event.noise.spike_prob > 0.0) {
      std::uniform_real_distribution<double> uni(0.0, 1.0);
      if (uni(rng) < event.noise.spike_prob) {
        v += uni(rng) * event.noise.spike_magnitude;
      }
    }
  }
  // Hardware counters report non-negative integers.
  return std::max(0.0, std::round(v));
}

std::vector<double> measure_vector(const Machine& machine,
                                   const EventDefinition& event,
                                   const std::vector<Activity>& activities,
                                   std::uint64_t rep) {
  std::vector<double> out;
  out.reserve(activities.size());
  for (std::size_t k = 0; k < activities.size(); ++k) {
    out.push_back(measure_event(machine, event, activities[k], rep, k));
  }
  return out;
}

std::vector<std::vector<double>> measure_all(
    const Machine& machine, const std::vector<Activity>& activities,
    std::uint64_t rep) {
  std::vector<std::vector<double>> out;
  out.reserve(machine.num_events());
  for (const auto& e : machine.events()) {
    out.push_back(measure_vector(machine, e, activities, rep));
  }
  return out;
}

}  // namespace catalyst::pmu
