// catalyst/pmu -- raw-event definitions and noise models.
#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

namespace catalyst::pmu {

/// Ground-truth activity produced by one kernel execution: signal -> count.
/// Signals absent from the map are zero.
using Activity = std::unordered_map<std::string, double>;

/// How a raw event's reading deviates from its ideal (noise-free) value.
///
/// The per-measurement perturbation is a deterministic function of
/// (machine seed, event name, repetition index, kernel index), so repeated
/// experiments reproduce bit-for-bit while still exhibiting run-to-run
/// variability across repetition indices -- exactly the structure the
/// paper's max-RNMSE filter (Section IV) is designed to quantify.
struct NoiseModel {
  /// Relative jitter: reading *= (1 + N(0, rel_sigma)).
  double rel_sigma = 0.0;
  /// Absolute jitter: reading += N(0, abs_sigma).
  double abs_sigma = 0.0;
  /// Sporadic spikes: with probability spike_prob, reading += U(0, 1) *
  /// spike_magnitude.  Models interrupts/SMM interference.
  double spike_prob = 0.0;
  double spike_magnitude = 0.0;
  /// Systematic per-repetition drift: reading *= (1 + drift_per_rep * rep).
  /// Models thermal throttling / frequency ramping across benchmark
  /// repetitions -- run-to-run variability that is NOT zero-mean, the case
  /// the paper's future work on richer noise measures targets.  The
  /// max-RNMSE filter still catches it (the first/last repetition pair
  /// differs by ~drift * reps).
  double drift_per_rep = 0.0;

  bool is_noise_free() const noexcept {
    return rel_sigma == 0.0 && abs_sigma == 0.0 && spike_prob == 0.0 &&
           drift_per_rep == 0.0;
  }

  static NoiseModel none() { return {}; }
  static NoiseModel relative(double sigma) { return {sigma, 0.0, 0.0, 0.0}; }
  static NoiseModel absolute(double sigma) { return {0.0, sigma, 0.0, 0.0}; }
  static NoiseModel spiky(double prob, double magnitude) {
    return {0.0, 0.0, prob, magnitude, 0.0};
  }
  static NoiseModel drifting(double per_rep) {
    return {0.0, 0.0, 0.0, 0.0, per_rep};
  }
};

/// One term of an event's linear functional: coefficient * signal.
struct SignalTerm {
  std::string signal;
  double coefficient = 1.0;
};

/// A raw hardware event: a named linear functional over signals, plus noise.
///
/// Real PMUs count in integers, so the ideal value is rounded to the nearest
/// non-negative integer after noise is applied (see measure.hpp).
struct EventDefinition {
  std::string name;
  std::string description;
  std::vector<SignalTerm> terms;
  NoiseModel noise;
  /// Physical-counter placement constraint: bit i set = the event may be
  /// programmed on physical slot i.  0 means unconstrained (any slot) --
  /// the overwhelmingly common case.  Real PMUs pin some events to fixed
  /// counters (e.g. cycles on a dedicated counter, uncore events on a
  /// subset of programmable slots); the event-set scheduler
  /// (vpapi/scheduler.hpp) honours the mask when packing events into runs.
  std::uint64_t slot_mask = 0;
  /// fnv1a(name), filled by Machine::add_event so the measurement hot path
  /// never re-hashes the name.  0 means "not yet cached" (fnv1a never maps a
  /// real name to 0); measure_from_ideal falls back to hashing on the fly so
  /// free-standing EventDefinitions keep the same noise stream.
  std::uint64_t name_hash = 0;

  /// Ideal (noise-free, unrounded) reading for the given activity.
  double ideal(const Activity& activity) const {
    double v = 0.0;
    for (const auto& t : terms) {
      auto it = activity.find(t.signal);
      if (it != activity.end()) v += t.coefficient * it->second;
    }
    return v;
  }
};

}  // namespace catalyst::pmu
