// catalyst/pmu -- "Tempest", the MI250X-flavoured GPU model.
//
// Frontier nodes expose 8 logical GPU devices; PAPI surfaces every event
// once per device ("rocm:::NAME:device=K").  Only device 0 runs the CAT
// GPU-FLOPs kernels, so device-0 instruction counters carry signal terms
// while devices 1-7 show only background activity (clock-ish counters tick,
// instruction counters stay zero and are discarded by the zero rule).
//
// The key structural property reproduced from the paper: there is no
// separate subtraction counter -- SQ_INSTS_VALU_ADD_F* counts additions AND
// subtractions, which is why "HP Sub Ops" alone is non-composable in
// Table VI while "HP Add and Sub Ops" is exact.
#include <cmath>
#include <random>
#include <string>
#include <vector>

#include "pmu/machine.hpp"
#include "pmu/signals.hpp"

namespace catalyst::pmu {

namespace {

std::string qualified(const std::string& base, int device) {
  return "rocm:::" + base + ":device=" + std::to_string(device);
}

}  // namespace

Machine tempest_gpu() {
  Machine m("tempest-gpu", /*physical_counters=*/16,
            /*noise_seed=*/0x7E40E57C0DE2024ULL);
  std::mt19937_64 gen(0xFEEDFACE12345678ULL);
  std::uniform_real_distribution<double> uni(0.0, 1.0);

  const struct {
    const char* tag;   // event-name fragment
    const char* op;    // signal op fragment; nullptr => composite handled below
  } valu_ops[] = {{"ADD", "add"}, {"MUL", "mul"}, {"TRANS", "trans"},
                  {"FMA", "fma"}};
  const struct {
    const char* tag;
    const char* prec;
  } precisions[] = {{"F16", "f16"}, {"F32", "f32"}, {"F64", "f64"}};

  for (int dev = 0; dev < 8; ++dev) {
    const bool active = dev == 0;
    // --- VALU floating-point instruction counters -------------------------
    for (const auto& op : valu_ops) {
      for (const auto& p : precisions) {
        std::vector<SignalTerm> terms;
        if (active) {
          if (std::string(op.op) == "add") {
            // ADD counts both additions and subtractions (one instruction
            // each); this is the Table VI ambiguity.
            terms = {{sig::gpu_valu("add", p.prec), 1.0},
                     {sig::gpu_valu("sub", p.prec), 1.0}};
          } else {
            terms = {{sig::gpu_valu(op.op, p.prec), 1.0}};
          }
        }
        m.add_event(EventDefinition{
            qualified(std::string("SQ_INSTS_VALU_") + op.tag + "_" + p.tag,
                      dev),
            "VALU instructions of this op/precision", terms,
            NoiseModel::none()});
      }
    }
    // --- Aggregate instruction counters ------------------------------------
    {
      std::vector<SignalTerm> all;
      if (active) {
        for (const auto& op : valu_ops) {
          for (const auto& p : precisions) {
            if (std::string(op.op) == "add") {
              all.push_back({sig::gpu_valu("add", p.prec), 1.0});
              all.push_back({sig::gpu_valu("sub", p.prec), 1.0});
            } else {
              all.push_back({sig::gpu_valu(op.op, p.prec), 1.0});
            }
          }
        }
        all.push_back({sig::gpu_valu_total, 1.0});  // integer VALU work
      }
      m.add_event(EventDefinition{qualified("SQ_INSTS_VALU", dev),
                                  "All VALU instructions", all,
                                  NoiseModel::none()});
    }
    const struct {
      const char* name;
      const std::string signal;
      double coeff;
      NoiseModel noise;
    } sq_events[] = {
        {"SQ_INSTS_SALU", sig::gpu_salu_total, 1.0, NoiseModel::none()},
        {"SQ_INSTS_SMEM", sig::gpu_smem, 1.0, NoiseModel::none()},
        {"SQ_INSTS_VMEM_RD", sig::gpu_vmem, 0.85, NoiseModel::relative(1e-2)},
        {"SQ_INSTS_VMEM_WR", sig::gpu_vmem, 0.15, NoiseModel::relative(1e-2)},
        {"SQ_INSTS_LDS", sig::gpu_smem, 0.1, NoiseModel::relative(5e-2)},
        {"SQ_INSTS_BRANCH", sig::gpu_salu_total, 0.25,
         NoiseModel::relative(1e-3)},
        {"SQ_WAVES", sig::gpu_waves, 1.0, NoiseModel::none()},
        {"SQ_WAVE_CYCLES", sig::gpu_cycles, 1.0, NoiseModel::relative(5e-3)},
        {"SQ_BUSY_CYCLES", sig::gpu_cycles, 0.92, NoiseModel::relative(8e-3)},
        {"SQ_ACTIVE_INST_VALU", sig::gpu_cycles, 0.4,
         NoiseModel::relative(3e-2)},
    };
    for (const auto& s : sq_events) {
      std::vector<SignalTerm> terms;
      if (active) terms = {{s.signal, s.coeff}};
      m.add_event(EventDefinition{qualified(s.name, dev),
                                  "SQ block activity", terms, s.noise});
    }
    // --- Clock-ish counters: tick on every device (background firmware) ----
    m.add_event(EventDefinition{
        qualified("GRBM_COUNT", dev), "Free-running GPU clock",
        active ? std::vector<SignalTerm>{{sig::gpu_cycles, 1.0}}
               : std::vector<SignalTerm>{},
        NoiseModel{active ? 2e-3 : 0.0, 500.0, 0.0, 0.0}});
    m.add_event(EventDefinition{
        qualified("GRBM_GUI_ACTIVE", dev), "GPU busy cycles",
        active ? std::vector<SignalTerm>{{sig::gpu_cycles, 0.97}}
               : std::vector<SignalTerm>{},
        NoiseModel{active ? 5e-3 : 0.0, 200.0, 0.0, 0.0}});
    // --- L2 (TCC) channels: 16 per device, backed by the GPU cache
    // simulator's hit/miss signals (striped evenly across channels), plus
    // aggregate "_sum" counters (what rocprofiler reports).  Idle during
    // the FLOPs benchmark; exercised by the GPU data-movement benchmark.
    if (active) {
      m.add_event(EventDefinition{
          qualified("TCC_HIT_sum", dev), "TCC hits, all channels",
          {{sig::gpu_tcc_hit, 1.0}}, NoiseModel::relative(2e-2)});
      m.add_event(EventDefinition{
          qualified("TCC_MISS_sum", dev), "TCC misses, all channels",
          {{sig::gpu_tcc_miss, 1.0}}, NoiseModel::relative(2e-2)});
      m.add_event(EventDefinition{
          qualified("TCC_EA_RDREQ_sum", dev),
          "TCC read requests to memory (alias of misses here)",
          {{sig::gpu_tcc_miss, 1.0}}, NoiseModel::relative(4e-2)});
    } else {
      m.add_event(EventDefinition{qualified("TCC_HIT_sum", dev),
                                  "TCC hits, all channels", {},
                                  NoiseModel::absolute(6.0)});
      m.add_event(EventDefinition{qualified("TCC_MISS_sum", dev),
                                  "TCC misses, all channels", {},
                                  NoiseModel::absolute(3.0)});
      m.add_event(EventDefinition{qualified("TCC_EA_RDREQ_sum", dev),
                                  "TCC read requests to memory", {},
                                  NoiseModel::absolute(3.0)});
    }
    for (int ch = 0; ch < 16; ++ch) {
      const double share = 1.0 / 16.0;
      std::vector<SignalTerm> hit_terms, miss_terms;
      if (active) {
        hit_terms = {{sig::gpu_tcc_hit, share}};
        miss_terms = {{sig::gpu_tcc_miss, share}};
      }
      // Idle devices still see background L2 traffic (firmware, paging),
      // so their channel counters read small nonzero values and populate
      // Fig. 2c's noisy tail instead of being zero-discarded.
      m.add_event(EventDefinition{
          qualified("TCC_HIT[" + std::to_string(ch) + "]", dev),
          "L2 channel hits", hit_terms,
          active ? NoiseModel::relative(6e-2) : NoiseModel::absolute(4.0)});
      m.add_event(EventDefinition{
          qualified("TCC_MISS[" + std::to_string(ch) + "]", dev),
          "L2 channel misses", miss_terms,
          active ? NoiseModel::relative(1.2e-1)
                 : NoiseModel::absolute(2.0)});
    }
    // --- Texture/addressing/vector-data units: generated filler tail --------
    const char* fill_units[] = {"TA_BUSY", "TD_BUSY",  "TCP_READ",
                                "TCP_WRITE", "TCP_ATOMIC", "TCP_PENDING",
                                "CPC_STAT", "CPF_STAT", "SPI_WAVES",
                                "SPI_STALL", "GDS_OP",  "EA_RDREQ",
                                "EA_WRREQ", "UTCL2_REQ", "UTCL2_MISS"};
    const char* fill_subs[] = {"SUM", "MAX", "CYCLES", "COUNT", "LEVEL"};
    for (const char* u : fill_units) {
      for (const char* s : fill_subs) {
        const double shape = uni(gen);
        std::vector<SignalTerm> terms;
        NoiseModel noise;
        if (!active) {
          // Idle device: most filler counters show faint background jitter
          // (they survive the zero rule and land in Fig. 2c's noisy tail);
          // the rest read zero.
          if (shape < 0.85) noise = NoiseModel::absolute(3.0);
        } else if (shape < 0.3) {
          terms = {{sig::gpu_cycles, 0.02 + 0.6 * uni(gen)}};
          noise = NoiseModel::relative(std::pow(10.0, -1.0 - 3.0 * uni(gen)));
        } else if (shape < 0.6) {
          terms = {{sig::gpu_valu_total, 0.1 + 0.9 * uni(gen)},
                   {sig::gpu_waves, 1.0 + 10.0 * uni(gen)}};
          noise = NoiseModel::relative(std::pow(10.0, -2.0 - 4.0 * uni(gen)));
        } else if (shape < 0.8) {
          terms = {{sig::gpu_vmem, 0.1 + 0.9 * uni(gen)}};
          noise = NoiseModel::relative(std::pow(10.0, -1.0 - 2.0 * uni(gen)));
        } else {
          noise = NoiseModel::spiky(0.02 + 0.05 * uni(gen),
                                    10.0 + 100.0 * uni(gen));
        }
        m.add_event(EventDefinition{
            qualified(std::string(u) + "_" + s, dev),
            "Generated filler event (synthetic tail)", terms, noise});
      }
    }
  }
  return m;
}

}  // namespace catalyst::pmu
