// catalyst/pmu -- canonical micro-architectural signal names.
//
// A *signal* is a ground-truth quantity produced by executing a kernel on
// the simulated machine (e.g. "number of DP AVX-256 FMA instructions
// retired").  Raw hardware events are linear functionals over signals plus
// noise; benchmarks report the signals their kernels generate.  Keeping the
// names in one header prevents the silent mismatch of a benchmark emitting
// "fp.sp.scalar" while an event reads "fp.scalar.sp".
#pragma once

#include <string>

namespace catalyst::pmu::sig {

// --- CPU floating point ------------------------------------------------------
// Instruction counts by vector width / FMA-ness / precision.
// width in {scalar, 128, 256, 512}; prec in {sp, dp}; fma in {fma, nonfma}.
inline std::string fp(const std::string& width, const std::string& prec,
                      bool fma) {
  return "fp." + width + "." + prec + (fma ? ".fma" : ".nonfma");
}

// --- GPU floating point ------------------------------------------------------
// op in {add, sub, mul, trans, fma}; prec in {f16, f32, f64}.
inline std::string gpu_valu(const std::string& op, const std::string& prec) {
  return "gpu.valu." + op + "." + prec;
}

// --- Branching ---------------------------------------------------------------
inline const std::string branch_cond_exec = "branch.cond.executed";
inline const std::string branch_cond_retired = "branch.cond.retired";
inline const std::string branch_cond_taken = "branch.cond.taken";
inline const std::string branch_uncond = "branch.uncond";
inline const std::string branch_mispredicted = "branch.mispredicted";

// --- Data caches -------------------------------------------------------------
inline const std::string l1d_demand_miss = "dcache.l1.demand_miss";
inline const std::string l1d_demand_hit = "dcache.l1.demand_hit";
inline const std::string l2d_demand_hit = "dcache.l2.demand_hit";
inline const std::string l2d_demand_miss = "dcache.l2.demand_miss";
inline const std::string l3d_demand_hit = "dcache.l3.demand_hit";
inline const std::string l3d_demand_miss = "dcache.l3.demand_miss";

// --- Instruction caches -----------------------------------------------------------
inline const std::string l1i_hit = "icache.l1i.hit";
inline const std::string l1i_miss = "icache.l1i.miss";
inline const std::string l2i_hit = "icache.l2.hit";
inline const std::string l2i_miss = "icache.l2.miss";

// --- TLBs ----------------------------------------------------------------------
inline const std::string dtlb_hit = "dtlb.l1.hit";
inline const std::string dtlb_miss = "dtlb.l1.miss";
inline const std::string stlb_hit = "dtlb.stlb.hit";
inline const std::string dtlb_walk = "dtlb.walk";

// --- Generic pipeline activity ------------------------------------------------
inline const std::string cycles = "core.cycles";
inline const std::string instructions = "core.instructions";
inline const std::string uops = "core.uops";
inline const std::string int_ops = "core.int_ops";
inline const std::string loads = "core.loads";
inline const std::string stores = "core.stores";

// --- GPU L2 (TCC) ----------------------------------------------------------------
inline const std::string gpu_tcc_hit = "gpu.tcc.hit";
inline const std::string gpu_tcc_miss = "gpu.tcc.miss";

// --- GPU generic ---------------------------------------------------------------
inline const std::string gpu_waves = "gpu.waves";
inline const std::string gpu_cycles = "gpu.cycles";
inline const std::string gpu_valu_total = "gpu.valu.total";
inline const std::string gpu_salu_total = "gpu.salu.total";
inline const std::string gpu_vmem = "gpu.vmem";
inline const std::string gpu_smem = "gpu.smem";

}  // namespace catalyst::pmu::sig
