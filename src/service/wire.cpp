#include "service/wire.hpp"

#include <array>
#include <bit>
#include <cstring>

#include "core/io.hpp"

namespace catalyst::service::wire {

const char* to_string(FrameType type) noexcept {
  switch (type) {
    case FrameType::hello: return "HELLO";
    case FrameType::hello_ok: return "HELLO_OK";
    case FrameType::submit: return "SUBMIT";
    case FrameType::accepted: return "ACCEPTED";
    case FrameType::poll: return "POLL";
    case FrameType::pending: return "PENDING";
    case FrameType::result: return "RESULT";
    case FrameType::error: return "ERROR";
    case FrameType::cancel: return "CANCEL";
    case FrameType::cancelled: return "CANCELLED";
    case FrameType::retry_after: return "RETRY_AFTER";
    case FrameType::bye: return "BYE";
    case FrameType::stats: return "STATS";
    case FrameType::stats_ok: return "STATS_OK";
    case FrameType::trace: return "TRACE";
    case FrameType::trace_ok: return "TRACE_OK";
  }
  return "UNKNOWN";
}

const char* to_string(ErrorCode code) noexcept {
  switch (code) {
    case ErrorCode::malformed_frame: return "malformed_frame";
    case ErrorCode::bad_version: return "bad_version";
    case ErrorCode::bad_crc: return "bad_crc";
    case ErrorCode::oversized_frame: return "oversized_frame";
    case ErrorCode::quota_exceeded: return "quota_exceeded";
    case ErrorCode::bad_state: return "bad_state";
    case ErrorCode::bad_request: return "bad_request";
    case ErrorCode::unknown_request: return "unknown_request";
    case ErrorCode::deadline_exceeded: return "deadline_exceeded";
    case ErrorCode::cancelled: return "cancelled";
    case ErrorCode::analysis_failed: return "analysis_failed";
    case ErrorCode::shutting_down: return "shutting_down";
  }
  return "unknown";
}

namespace {

/// Table-driven CRC-32 (IEEE), table built once at first use.
const std::array<std::uint32_t, 256>& crc_table() noexcept {
  static const std::array<std::uint32_t, 256> table = [] {
    std::array<std::uint32_t, 256> t{};
    for (std::uint32_t i = 0; i < 256; ++i) {
      std::uint32_t c = i;
      for (int k = 0; k < 8; ++k) {
        c = (c & 1u) != 0 ? 0xEDB88320u ^ (c >> 1) : c >> 1;
      }
      t[i] = c;
    }
    return t;
  }();
  return table;
}

bool is_known_type(std::uint16_t raw) noexcept {
  return raw >= static_cast<std::uint16_t>(FrameType::hello) &&
         raw <= static_cast<std::uint16_t>(FrameType::trace_ok);
}

std::uint16_t load_u16(const char* p) noexcept {
  return static_cast<std::uint16_t>(
      static_cast<unsigned char>(p[0]) |
      (static_cast<std::uint16_t>(static_cast<unsigned char>(p[1])) << 8));
}

std::uint32_t load_u32(const char* p) noexcept {
  std::uint32_t v = 0;
  for (int i = 3; i >= 0; --i) {
    v = (v << 8) | static_cast<unsigned char>(p[i]);
  }
  return v;
}

std::uint64_t load_u64(const char* p) noexcept {
  std::uint64_t v = 0;
  for (int i = 7; i >= 0; --i) {
    v = (v << 8) | static_cast<unsigned char>(p[i]);
  }
  return v;
}

}  // namespace

std::uint32_t crc32(const void* data, std::size_t size) noexcept {
  const auto& table = crc_table();
  const auto* p = static_cast<const unsigned char*>(data);
  std::uint32_t c = 0xFFFFFFFFu;
  for (std::size_t i = 0; i < size; ++i) {
    c = table[(c ^ p[i]) & 0xFFu] ^ (c >> 8);
  }
  return c ^ 0xFFFFFFFFu;
}

void put_u8(std::string& out, std::uint8_t v) {
  out.push_back(static_cast<char>(v));
}

void put_u16(std::string& out, std::uint16_t v) {
  out.push_back(static_cast<char>(v & 0xFF));
  out.push_back(static_cast<char>((v >> 8) & 0xFF));
}

void put_u32(std::string& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out.push_back(static_cast<char>((v >> (8 * i)) & 0xFF));
  }
}

void put_u64(std::string& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out.push_back(static_cast<char>((v >> (8 * i)) & 0xFF));
  }
}

void put_f64(std::string& out, double v) {
  // Doubles travel as their IEEE-754 bit pattern: bit-identity through the
  // wire is what makes the service path reproduce CLI tables exactly.
  std::uint64_t bits = 0;
  static_assert(sizeof(bits) == sizeof(v));
  std::memcpy(&bits, &v, sizeof(bits));
  put_u64(out, bits);
}

void put_string(std::string& out, const std::string& s) {
  put_u32(out, static_cast<std::uint32_t>(s.size()));
  out += s;
}

std::uint8_t Get::u8() {
  if (data_.size() - pos_ < 1) throw PayloadError("payload truncated (u8)");
  const auto v = static_cast<std::uint8_t>(data_[pos_]);
  pos_ += 1;
  return v;
}

std::uint16_t Get::u16() {
  if (data_.size() - pos_ < 2) throw PayloadError("payload truncated (u16)");
  const std::uint16_t v = load_u16(data_.data() + pos_);
  pos_ += 2;
  return v;
}

std::uint32_t Get::u32() {
  if (data_.size() - pos_ < 4) throw PayloadError("payload truncated (u32)");
  const std::uint32_t v = load_u32(data_.data() + pos_);
  pos_ += 4;
  return v;
}

std::uint64_t Get::u64() {
  if (data_.size() - pos_ < 8) throw PayloadError("payload truncated (u64)");
  const std::uint64_t v = load_u64(data_.data() + pos_);
  pos_ += 8;
  return v;
}

double Get::f64() {
  const std::uint64_t bits = u64();
  double v = 0.0;
  std::memcpy(&v, &bits, sizeof(v));
  return v;
}

void Get::f64_block(double* out, std::size_t n) {
  if ((data_.size() - pos_) / sizeof(double) < n) {
    throw PayloadError("payload truncated (f64 block)");
  }
  if constexpr (std::endian::native == std::endian::little) {
    std::memcpy(out, data_.data() + pos_, n * sizeof(double));
    pos_ += n * sizeof(double);
  } else {
    for (std::size_t i = 0; i < n; ++i) out[i] = f64();
  }
}

std::string Get::string(std::size_t max_len) {
  const std::uint32_t len = u32();
  if (len > max_len) throw PayloadError("string field too long");
  if (data_.size() - pos_ < len) {
    throw PayloadError("payload truncated (string)");
  }
  std::string s = data_.substr(pos_, len);
  pos_ += len;
  return s;
}

void Get::expect_done() const {
  if (pos_ != data_.size()) {
    throw PayloadError("trailing bytes after payload");
  }
}

std::string encode_frame(FrameType type, const std::string& payload) {
  std::string out;
  out.reserve(kHeaderBytes + payload.size());
  put_u32(out, kMagic);
  put_u16(out, kVersion);
  put_u16(out, static_cast<std::uint16_t>(type));
  put_u32(out, static_cast<std::uint32_t>(payload.size()));
  put_u32(out, crc32(payload.data(), payload.size()));
  out += payload;
  return out;
}

FrameDecoder::FrameDecoder(std::uint32_t max_payload)
    : max_payload_(max_payload < kMaxPayloadBytes ? max_payload
                                                  : kMaxPayloadBytes) {}

void FrameDecoder::fail(ErrorCode code, std::string message) {
  if (!error_.has_value()) {
    error_ = DecodeError{code, std::move(message)};
  }
  buffer_.clear();
  ready_.clear();
}

void FrameDecoder::feed(const char* data, std::size_t size) {
  if (error_.has_value()) return;  // Poisoned stream: drop everything.
  bytes_consumed_ += size;
  buffer_.append(data, size);
  // Peel off as many complete frames as the buffer holds.  Header fields
  // are validated strictly in order -- magic, version, type, length -- so
  // the FIRST wrong thing about a frame names the error, and a bad length
  // is rejected before a single payload byte is buffered past the cap.
  for (;;) {
    if (buffer_.size() < kHeaderBytes) return;
    const char* h = buffer_.data();
    if (load_u32(h) != kMagic) {
      fail(ErrorCode::malformed_frame, "bad frame magic");
      return;
    }
    if (load_u16(h + 4) != kVersion) {
      fail(ErrorCode::bad_version,
           "unsupported protocol version " + std::to_string(load_u16(h + 4)));
      return;
    }
    const std::uint16_t raw_type = load_u16(h + 6);
    if (!is_known_type(raw_type)) {
      fail(ErrorCode::malformed_frame,
           "unknown frame type " + std::to_string(raw_type));
      return;
    }
    const std::uint32_t length = load_u32(h + 8);
    if (length > max_payload_) {
      fail(ErrorCode::oversized_frame,
           "payload of " + std::to_string(length) + " bytes exceeds cap of " +
               std::to_string(max_payload_));
      return;
    }
    if (buffer_.size() < kHeaderBytes + length) return;  // Await payload.
    const std::uint32_t declared_crc = load_u32(h + 12);
    const std::uint32_t actual_crc = crc32(h + kHeaderBytes, length);
    if (declared_crc != actual_crc) {
      fail(ErrorCode::bad_crc, "payload checksum mismatch");
      return;
    }
    Frame frame;
    frame.type = static_cast<FrameType>(raw_type);
    frame.payload = buffer_.substr(kHeaderBytes, length);
    ready_.push_back(std::move(frame));
    buffer_.erase(0, kHeaderBytes + length);
  }
}

std::optional<Frame> FrameDecoder::next() {
  if (ready_.empty()) return std::nullopt;
  Frame f = std::move(ready_.front());
  ready_.pop_front();
  return f;
}

std::string encode_submit(const SubmitBody& body) {
  std::string out;
  out.push_back(static_cast<char>(body.kind));
  put_string(out, body.category);
  put_u64(out, body.deadline_ns);
  put_u64(out, body.trace_id);
  put_u8(out, body.collection_mode);
  if (body.kind == SubmitKind::json) {
    put_string(out, body.archive_json);
    return out;
  }
  put_u32(out, static_cast<std::uint32_t>(body.event_names.size()));
  put_u32(out, body.repetitions);
  put_u32(out, body.slots);
  for (const auto& name : body.event_names) put_string(out, name);
  out.reserve(out.size() + body.values.size() * sizeof(double));
  for (const double v : body.values) put_f64(out, v);
  return out;
}

SubmitBody decode_submit(const std::string& payload) {
  SubmitBody body;
  if (payload.empty()) throw PayloadError("empty SUBMIT payload");
  const auto raw_kind = static_cast<unsigned char>(payload[0]);
  if (raw_kind > static_cast<unsigned char>(SubmitKind::json)) {
    throw PayloadError("unknown SUBMIT encoding kind");
  }
  body.kind = static_cast<SubmitKind>(raw_kind);
  const std::string rest = payload.substr(1);
  Get cursor(rest);
  body.category = cursor.string(256);
  body.deadline_ns = cursor.u64();
  body.trace_id = cursor.u64();
  body.collection_mode = cursor.u8();
  if (body.collection_mode > 2) {
    // vpapi::CollectionMode tops out at strobed (2); anything else is a
    // peer speaking a future dialect, not a mode we can record.
    throw PayloadError("unknown SUBMIT collection mode");
  }
  if (body.kind == SubmitKind::json) {
    body.archive_json = cursor.string();
    cursor.expect_done();
    return body;
  }
  const std::uint32_t n_events = cursor.u32();
  body.repetitions = cursor.u32();
  body.slots = cursor.u32();
  if (n_events == 0 || body.repetitions == 0 || body.slots == 0) {
    throw PayloadError("packed SUBMIT with an empty dimension");
  }
  // Overflow-safe size check before any allocation: the value block must
  // fit inside the payload that actually arrived.
  const std::uint64_t n_values = std::uint64_t{n_events} * body.repetitions *
                                 static_cast<std::uint64_t>(body.slots);
  if (n_values > kMaxPayloadBytes / sizeof(double)) {
    throw PayloadError("packed SUBMIT dimensions overflow the frame cap");
  }
  // Plausibility before allocation: every event name needs at least its
  // length prefix plus one byte, and the value block needs 8 bytes per
  // entry -- a hostile count that the arrived bytes cannot possibly satisfy
  // is rejected before a single reserve() happens.
  const std::uint64_t min_needed =
      std::uint64_t{n_events} * 5 + n_values * sizeof(double);
  if (min_needed > rest.size()) {
    throw PayloadError("packed SUBMIT counts exceed the payload that arrived");
  }
  body.event_names.reserve(n_events);
  for (std::uint32_t e = 0; e < n_events; ++e) {
    std::string name = cursor.string(1024);
    if (name.empty()) throw PayloadError("packed SUBMIT with empty event name");
    body.event_names.push_back(std::move(name));
  }
  // The value block is raw little-endian IEEE-754 bit patterns: one bounds
  // check, then a single bulk copy.  This is the whole point of the packed
  // encoding -- decoding a Saphira-sized submission is a memcpy, not a
  // JSON parse (see bench/service_load).
  body.values.resize(static_cast<std::size_t>(n_values));
  cursor.f64_block(body.values.data(), body.values.size());
  cursor.expect_done();
  return body;
}

std::string encode_error(const ErrorBody& body) {
  std::string out;
  put_u64(out, body.request_id);
  put_u16(out, static_cast<std::uint16_t>(body.code));
  put_string(out, core::bounded_excerpt(body.message, kMaxErrorMessageBytes));
  return out;
}

ErrorBody decode_error(const std::string& payload) {
  Get cursor(payload);
  ErrorBody body;
  body.request_id = cursor.u64();
  body.code = static_cast<ErrorCode>(cursor.u16());
  body.message = cursor.string(kMaxErrorMessageBytes + 32);
  cursor.expect_done();
  return body;
}

}  // namespace catalyst::service::wire
