#include "service/servicecore.hpp"

#include <algorithm>
#include <filesystem>

#include "core/io.hpp"
#include "core/json.hpp"
#include "obs/flight.hpp"
#include "obs/names.hpp"
#include "obs/trace.hpp"
#include "service/engine.hpp"

namespace catalyst::service {

std::string RequestBroker::stats_json() { return render_stats_exposition(); }

std::string RequestBroker::trace_json(std::uint64_t trace_id) {
  return render_trace_fragment(trace_id);
}

const char* const kServiceCheckpointFormat = "catalyst-service-checkpoint-v1";

namespace {

/// Bytes a submission charges against its session's quota: the dominant
/// blocks only (values / archive text); bookkeeping fields are noise.
std::uint64_t body_cost_bytes(const wire::SubmitBody& body) {
  std::uint64_t cost = body.archive_json.size() +
                       body.values.size() * sizeof(double);
  for (const auto& name : body.event_names) cost += name.size();
  return cost;
}

std::string to_hex(const std::string& bytes) {
  static const char* digits = "0123456789abcdef";
  std::string out;
  out.reserve(bytes.size() * 2);
  for (const unsigned char c : bytes) {
    out.push_back(digits[c >> 4]);
    out.push_back(digits[c & 0xF]);
  }
  return out;
}

std::string from_hex(const std::string& hex) {
  if (hex.size() % 2 != 0) {
    throw std::invalid_argument("checkpoint payload: odd hex length");
  }
  const auto nibble = [](char c) -> int {
    if (c >= '0' && c <= '9') return c - '0';
    if (c >= 'a' && c <= 'f') return c - 'a' + 10;
    throw std::invalid_argument("checkpoint payload: bad hex digit");
  };
  std::string out;
  out.reserve(hex.size() / 2);
  for (std::size_t i = 0; i < hex.size(); i += 2) {
    out.push_back(static_cast<char>((nibble(hex[i]) << 4) |
                                    nibble(hex[i + 1])));
  }
  return out;
}

std::string checkpoint_path(const std::string& dir, std::uint64_t id) {
  return dir + "/request-" + std::to_string(id) + ".json";
}

}  // namespace

ServiceCore::ServiceCore(Options options) : options_(std::move(options)) {
  if (!options_.checkpoint_dir.empty()) {
    // The lease outlives every checkpoint write AND blocks a second daemon
    // (or a CLI campaign) from sharing the directory -- cross-process via
    // the flock layer.
    lease_.emplace(options_.checkpoint_dir);
    restore_checkpoints();
  }
}

ServiceCore::~ServiceCore() { begin_shutdown(); }

void ServiceCore::restore_checkpoints() {
  namespace fs = std::filesystem;
  struct Restored {
    std::uint64_t id;
    wire::SubmitBody body;
  };
  std::vector<Restored> found;
  std::error_code ec;
  for (const auto& entry :
       fs::directory_iterator(options_.checkpoint_dir, ec)) {
    const std::string name = entry.path().filename().string();
    if (name.rfind("request-", 0) != 0 ||
        name.find(".json") == std::string::npos) {
      continue;
    }
    try {
      const core::json::Value root =
          core::json::parse(core::read_text_file(entry.path().string()));
      if (root.at("format").as_string() != kServiceCheckpointFormat) {
        continue;  // Foreign file; leave it alone.
      }
      Restored r;
      r.id = static_cast<std::uint64_t>(root.at("id").as_number());
      r.body = wire::decode_submit(from_hex(root.at("payload").as_string()));
      found.push_back(std::move(r));
      fs::remove(entry.path(), ec);
    } catch (const std::exception&) {
      // Torn / corrupt checkpoint: the request is lost, the daemon is not.
      obs::count(obs::names::kServiceCheckpointRestoreFailed);
    }
  }
  // Id order IS arrival order (ids are assigned monotonically), so the
  // restored queue replays the pre-shutdown queue exactly.
  std::sort(found.begin(), found.end(),
            [](const Restored& a, const Restored& b) { return a.id < b.id; });
  const sync::LockGuard lock(mutex_);
  for (auto& r : found) {
    auto request = std::make_unique<Request>();
    request->id = r.id;
    request->session = 0;  // Orphaned by the old daemon; any session may poll.
    request->body_bytes = body_cost_bytes(r.body);
    request->body = std::move(r.body);
    next_id_ = std::max(next_id_, r.id + 1);
    queue_.push_back(r.id);
    requests_.emplace(r.id, std::move(request));
    ++restored_;
  }
  obs::count(obs::names::kServiceRequestsRestored, restored_);
  update_gauges_locked();
}

std::string ServiceCore::stats_json() {
  obs::count(obs::names::kServiceStatsServed);
  return render_stats_exposition();
}

std::string ServiceCore::trace_json(std::uint64_t trace_id) {
  obs::count(obs::names::kServiceTracesServed);
  return render_trace_fragment(trace_id);
}

void ServiceCore::update_gauges_locked() {
  obs::gauge(obs::names::kServiceQueueDepth,
             static_cast<std::int64_t>(queue_.size()));
  obs::gauge(obs::names::kServiceWorkersBusy,
             static_cast<std::int64_t>(running_));
  obs::gauge(obs::names::kServiceInflightRequests,
             static_cast<std::int64_t>(requests_.size()));
}

SubmitOutcome ServiceCore::submit(SessionId session, wire::SubmitBody body) {
  SubmitOutcome out;
  const std::uint64_t cost = body_cost_bytes(body);
  const sync::LockGuard lock(mutex_);
  if (shutting_down_) {
    out.kind = SubmitOutcome::Kind::rejected;
    out.code = wire::ErrorCode::shutting_down;
    out.message = "daemon is draining; resubmit later";
    return out;
  }
  SessionUsage& usage = usage_[session];
  if (usage.inflight >= options_.max_inflight_per_session) {
    obs::count(obs::names::kServiceQuotaRejections);
    out.kind = SubmitOutcome::Kind::rejected;
    out.code = wire::ErrorCode::quota_exceeded;
    out.message = "session has " + std::to_string(usage.inflight) +
                  " requests inflight (limit " +
                  std::to_string(options_.max_inflight_per_session) + ")";
    return out;
  }
  if (usage.bytes + cost > options_.max_bytes_per_session) {
    obs::count(obs::names::kServiceQuotaRejections);
    out.kind = SubmitOutcome::Kind::rejected;
    out.code = wire::ErrorCode::quota_exceeded;
    out.message = "session byte quota exhausted (limit " +
                  std::to_string(options_.max_bytes_per_session) + " bytes)";
    return out;
  }
  if (queue_.size() >= options_.queue_capacity) {
    obs::count(obs::names::kServiceLoadShed);
    out.kind = SubmitOutcome::Kind::retry_after;
    out.retry_after = options_.retry_after_hint;
    return out;
  }
  auto request = std::make_unique<Request>();
  request->id = next_id_++;
  request->session = session;
  request->body = std::move(body);
  request->body_bytes = cost;
  if (obs::enabled()) {
    request->enqueued_ns = obs::Tracer::instance().now_ns();
  }
  out.kind = SubmitOutcome::Kind::accepted;
  out.request_id = request->id;
  usage.inflight += 1;
  usage.bytes += cost;
  queue_.push_back(request->id);
  requests_.emplace(request->id, std::move(request));
  obs::count(obs::names::kServiceRequestsAccepted);
  update_gauges_locked();
  work_cv_.notify_one();
  return out;
}

PollOutcome ServiceCore::poll(SessionId session, std::uint64_t request_id) {
  PollOutcome out;
  const sync::LockGuard lock(mutex_);
  const auto it = requests_.find(request_id);
  // Session isolation: polling someone else's id is indistinguishable from
  // polling a nonexistent one (ids must not leak cross-tenant state).
  // Session 0 marks requests orphaned by a previous daemon's shutdown.
  if (it == requests_.end() ||
      (it->second->session != session && it->second->session != 0)) {
    out.kind = PollOutcome::Kind::unknown;
    return out;
  }
  Request& request = *it->second;
  switch (request.state) {
    case State::queued:
      out.kind = PollOutcome::Kind::queued;
      return out;
    case State::running:
      out.kind = PollOutcome::Kind::analyzing;
      return out;
    case State::done:
      out.kind = PollOutcome::Kind::result;
      out.text = std::move(request.outcome.text);
      out.trace_id = request.body.trace_id;
      break;
    case State::failed:
      out.kind = PollOutcome::Kind::failed;
      out.code = request.outcome.code;
      out.message = std::move(request.outcome.message);
      break;
    case State::cancelled:
      out.kind = PollOutcome::Kind::cancelled;
      break;
  }
  // Terminal answers are collect-once: the entry is freed now, so a client
  // that polls forever cannot pin daemon memory and a finished request's
  // quota slot is returned at the moment its owner learns the outcome.
  auto usage_it = usage_.find(request.session);
  if (usage_it != usage_.end() && usage_it->second.inflight > 0) {
    usage_it->second.inflight -= 1;
  }
  requests_.erase(it);
  update_gauges_locked();
  return out;
}

bool ServiceCore::cancel(SessionId session, std::uint64_t request_id) {
  const sync::LockGuard lock(mutex_);
  const auto it = requests_.find(request_id);
  if (it == requests_.end() ||
      (it->second->session != session && it->second->session != 0)) {
    return false;
  }
  Request& request = *it->second;
  switch (request.state) {
    case State::queued: {
      const auto pos = std::find(queue_.begin(), queue_.end(), request_id);
      if (pos != queue_.end()) queue_.erase(pos);
      request.state = State::cancelled;
      obs::count(obs::names::kServiceRequestsCancelled);
      update_gauges_locked();
      return true;
    }
    case State::running:
      // Cooperative: the worker's pipeline raises PipelineCancelled at the
      // next stage boundary and the entry lands in `cancelled` via finish().
      request.cancel.request_cancel();
      return true;
    case State::done:
    case State::failed:
    case State::cancelled:
      return true;  // Already terminal; cancel is a no-op, not an error.
  }
  return false;
}

void ServiceCore::forget_session(SessionId session) {
  const sync::LockGuard lock(mutex_);
  usage_.erase(session);
  for (auto it = requests_.begin(); it != requests_.end();) {
    Request& request = *it->second;
    if (request.session != session) {
      ++it;
      continue;
    }
    if (request.state == State::running) {
      // The worker holds a pointer to this entry: signal it and let
      // finish() reap the orphan instead of pulling the entry out from
      // under the analysis.
      request.cancel.request_cancel();
      request.orphaned = true;
      ++it;
      continue;
    }
    if (request.state == State::queued) {
      const auto pos = std::find(queue_.begin(), queue_.end(), request.id);
      if (pos != queue_.end()) queue_.erase(pos);
    }
    it = requests_.erase(it);
  }
  update_gauges_locked();
}

ServiceCore::Request* ServiceCore::claim_next_locked() {
  if (queue_.empty()) return nullptr;
  const std::uint64_t id = queue_.front();
  queue_.pop_front();
  const auto it = requests_.find(id);
  if (it == requests_.end()) return nullptr;  // Cancelled out of the queue.
  it->second->state = State::running;
  running_ += 1;
  if (obs::enabled()) {
    it->second->started_ns = obs::Tracer::instance().now_ns();
  }
  update_gauges_locked();
  return it->second.get();
}

void ServiceCore::execute(Request* request) {
  obs::Span span("service.request");
  span.arg("id", request->id);
  if (request->body.trace_id != 0) span.arg("trace", request->body.trace_id);
  // Arm the per-request deadline at execution start: the budget covers the
  // ANALYSIS, not the queue wait (queue pressure is the client's signal via
  // retry_after, not a reason to fail work already accepted).
  std::chrono::nanoseconds timeout = options_.default_analysis_timeout;
  if (request->body.deadline_ns != 0) {
    const std::chrono::nanoseconds requested{
        static_cast<std::int64_t>(request->body.deadline_ns)};
    if (timeout.count() == 0 || requested < timeout) timeout = requested;
  }
  if (timeout.count() > 0 && options_.clock != nullptr) {
    request->cancel.arm_deadline(options_.clock,
                                 options_.clock->now() + timeout);
  }
  EngineOutcome outcome =
      run_analysis(catalog_, request->body, &request->cancel);
  span.end();
  // Latency histogram behind the span: bench/service_load scrapes its
  // percentiles over the wire, and --stats exports it without trace
  // post-processing.
  obs::observe(obs::names::kServiceRequestNs,
               static_cast<double>(span.duration_ns()));
  finish(request, std::move(outcome));
}

void ServiceCore::finish(Request* request, EngineOutcome outcome) {
  if (obs::enabled()) {
    // Flight recorder: one bounded summary per request, whatever its fate
    // -- the ring is what a SIGUSR1 dump (or the crash path) shows.
    obs::FlightRecord rec;
    rec.request_id = request->id;
    rec.session_id = request->session;
    rec.trace_id = request->body.trace_id;
    rec.bytes = request->body_bytes;
    rec.category = request->body.category;
    if (outcome.ok) {
      rec.verdict = "ok";
    } else if (outcome.code == wire::ErrorCode::cancelled) {
      rec.verdict = "cancelled";
    } else if (outcome.code == wire::ErrorCode::deadline_exceeded) {
      rec.verdict = "deadline";
    } else {
      rec.verdict = "failed";
    }
    rec.enqueued_ns = request->enqueued_ns;
    rec.started_ns = request->started_ns;
    rec.finished_ns = obs::Tracer::instance().now_ns();
    obs::FlightRecorder::instance().record(std::move(rec));
  }
  const sync::LockGuard lock(mutex_);
  running_ -= 1;
  if (request->orphaned) {
    // Owner session is gone; nobody will ever poll this.
    requests_.erase(request->id);
    update_gauges_locked();
    return;
  }
  if (outcome.ok) {
    request->state = State::done;
  } else if (outcome.code == wire::ErrorCode::cancelled) {
    request->state = State::cancelled;
    obs::count(obs::names::kServiceRequestsCancelled);
  } else {
    request->state = State::failed;
  }
  request->outcome = std::move(outcome);
  update_gauges_locked();
}

void ServiceCore::worker_loop() {
  for (;;) {
    Request* request = nullptr;
    {
      sync::UniqueLock lock(mutex_);
      // Manual wait loop (not the predicate overload): the predicate would
      // read guarded fields from a lambda TSA cannot see through.
      while (queue_.empty() && !shutting_down_) {
        work_cv_.wait(lock);
      }
      if (queue_.empty()) return;  // Shutting down, nothing left to claim.
      request = claim_next_locked();
    }
    if (request != nullptr) execute(request);
  }
}

bool ServiceCore::run_one() {
  Request* request = nullptr;
  {
    const sync::LockGuard lock(mutex_);
    request = claim_next_locked();
  }
  if (request == nullptr) return false;
  execute(request);
  return true;
}

void ServiceCore::begin_shutdown() {
  const sync::LockGuard lock(mutex_);
  if (shutting_down_) return;
  shutting_down_ = true;
  checkpoint_queued_locked();
  // Queued-unstarted work will NOT run in this process: dequeue it and give
  // pollers the typed truth.  (The checkpoint above preserves it for the
  // next daemon; running analyses keep going -- that is the drain.)
  while (!queue_.empty()) {
    const std::uint64_t id = queue_.front();
    queue_.pop_front();
    const auto it = requests_.find(id);
    if (it == requests_.end()) continue;
    it->second->state = State::failed;
    it->second->outcome.ok = false;
    it->second->outcome.code = wire::ErrorCode::shutting_down;
    it->second->outcome.message =
        options_.checkpoint_dir.empty()
            ? "daemon shut down before this request started"
            : "daemon shut down; request checkpointed for restart";
  }
  update_gauges_locked();
  work_cv_.notify_all();
}

void ServiceCore::checkpoint_queued_locked() {
  if (options_.checkpoint_dir.empty() || queue_.empty()) return;
  std::size_t written = 0;
  for (const std::uint64_t id : queue_) {
    const auto it = requests_.find(id);
    if (it == requests_.end()) continue;
    try {
      core::json::Value root = core::json::Value::object();
      root["format"] = kServiceCheckpointFormat;
      root["id"] = static_cast<double>(id);
      root["category"] = it->second->body.category;
      root["payload"] = to_hex(wire::encode_submit(it->second->body));
      core::write_text_file_atomic(
          checkpoint_path(options_.checkpoint_dir, id),
          core::json::dump(root));
      ++written;
    } catch (const std::exception&) {
      obs::count(obs::names::kServiceCheckpointWriteFailed);
    }
  }
  obs::count(obs::names::kServiceRequestsCheckpointed, written);
}

bool ServiceCore::drained() const {
  const sync::LockGuard lock(mutex_);
  return shutting_down_ && queue_.empty() && running_ == 0;
}

bool ServiceCore::shutting_down() const {
  const sync::LockGuard lock(mutex_);
  return shutting_down_;
}

std::size_t ServiceCore::queued_count() const {
  const sync::LockGuard lock(mutex_);
  return queue_.size();
}

std::size_t ServiceCore::running_count() const {
  const sync::LockGuard lock(mutex_);
  return running_;
}

}  // namespace catalyst::service
