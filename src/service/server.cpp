#include "service/server.hpp"

#include <algorithm>

#include "obs/names.hpp"
#include "obs/trace.hpp"
#include "service/io.hpp"

namespace catalyst::service {

Server::Server(ServiceCore& core, Options options)
    : core_(core), options_(std::move(options)) {
  listen_fd_ = io::listen_unix(options_.socket_path);
  pipe_ = io::make_pipe();
}

Server::~Server() {
  for (Conn& conn : conns_) {
    if (conn.fd >= 0) io::close_fd(conn.fd);
  }
  io::close_fd(listen_fd_);
  io::close_fd(pipe_.read_end);
  io::close_fd(pipe_.write_end);
}

void Server::accept_new() {
  for (;;) {
    const int fd = io::accept_client(listen_fd_);
    if (fd < 0) return;
    if (conns_.size() >= options_.max_sessions) {
      // Load shedding at the door: a connection we cannot serve is closed
      // immediately rather than admitted and starved.
      obs::count(obs::names::kServiceSessionsTurnedAway);
      io::close_fd(fd);
      continue;
    }
    Conn conn;
    conn.fd = fd;
    conn.session = std::make_unique<Session>(
        next_session_id_++, &core_, options_.session_limits,
        options_.clock->now());
    if (core_.shutting_down()) conn.session->begin_shutdown();
    conns_.push_back(std::move(conn));
    sessions_served_.fetch_add(1, std::memory_order_relaxed);
    obs::count(obs::names::kServiceSessionsAccepted);
    obs::gauge(obs::names::kServiceSessionsOpen,
               static_cast<std::int64_t>(conns_.size()));
  }
}

bool Server::service_reads(Conn& conn, std::chrono::nanoseconds now) {
  char buf[16 * 1024];
  for (;;) {
    const io::IoResult r = io::read_some(conn.fd, buf, sizeof(buf));
    switch (r.kind) {
      case io::IoResult::Kind::ok:
        conn.session->on_bytes(now, buf, r.bytes);
        continue;
      case io::IoResult::Kind::would_block:
        return true;
      case io::IoResult::Kind::eof:
        conn.session->on_eof();
        return false;
      case io::IoResult::Kind::error:
        conn.session->on_eof();
        return false;
    }
  }
}

bool Server::flush_writes(Conn& conn) {
  if (conn.session->has_output()) conn.outbuf += conn.session->take_output();
  while (!conn.outbuf.empty()) {
    const io::IoResult r =
        io::write_some(conn.fd, conn.outbuf.data(), conn.outbuf.size());
    if (r.kind == io::IoResult::Kind::ok) {
      conn.outbuf.erase(0, r.bytes);
      continue;
    }
    if (r.kind == io::IoResult::Kind::would_block) return true;
    return false;  // Peer gone mid-write.
  }
  return true;
}

void Server::drop(Conn& conn) {
  if (conn.fd >= 0) {
    io::close_fd(conn.fd);
    conn.fd = -1;
  }
  if (conn.session != nullptr) {
    core_.forget_session(conn.session->id());
    conn.session.reset();
  }
  obs::count(obs::names::kServiceSessionsClosed);
}

void Server::run(const std::atomic<bool>& stop) {
  bool shutdown_started = false;
  std::chrono::nanoseconds drained_at{0};
  for (;;) {
    if (!shutdown_started && stop.load(std::memory_order_relaxed)) {
      shutdown_started = true;
      obs::count(obs::names::kServiceShutdowns);
      // Order matters: the core first (refuse new work, checkpoint the
      // queue), then the door (no new connections), then the sessions
      // (future SUBMITs on live connections answer shutting_down; polls
      // keep working so the drain is observable).
      core_.begin_shutdown();
      io::close_fd(listen_fd_);
      listen_fd_ = -1;
      for (Conn& conn : conns_) {
        if (conn.session != nullptr) conn.session->begin_shutdown();
      }
    }
    if (shutdown_started) {
      const std::chrono::nanoseconds now = options_.clock->now();
      if (core_.drained()) {
        if (drained_at.count() == 0) drained_at = now;
        if (now - drained_at >= options_.drain_linger) break;
      }
    }

    std::vector<io::PollItem> items;
    items.reserve(conns_.size() + 2);
    {
      io::PollItem wake;
      wake.fd = pipe_.read_end;
      wake.want_read = true;
      items.push_back(wake);
    }
    const std::size_t listen_slot = items.size();
    if (listen_fd_ >= 0) {
      io::PollItem listen;
      listen.fd = listen_fd_;
      listen.want_read = true;
      items.push_back(listen);
    }
    const std::size_t conn_base = items.size();
    for (const Conn& conn : conns_) {
      io::PollItem item;
      item.fd = conn.fd;
      item.want_read = !conn.session->closed();
      item.want_write =
          !conn.outbuf.empty() || conn.session->has_output();
      items.push_back(item);
    }

    io::poll_fds(items, options_.poll_interval_ms);
    const std::chrono::nanoseconds now = options_.clock->now();

    if (items[0].readable) {
      io::drain_pipe(pipe_.read_end);
      if (options_.on_wake) options_.on_wake();
    }
    if (listen_fd_ >= 0 && items[listen_slot].readable) accept_new();

    // accept_new() may have appended connections that were never polled;
    // only the first `polled` entries have a matching PollItem.  The new
    // ones get their first poll next iteration.
    const std::size_t polled = items.size() - conn_base;
    for (std::size_t i = 0; i < polled; ++i) {
      Conn& conn = conns_[i];
      const io::PollItem& item = items[conn_base + i];
      bool alive = true;
      if (item.broken && !item.readable) {
        conn.session->on_eof();
        alive = false;
      }
      if (alive && item.readable) alive = service_reads(conn, now);
      if (alive) conn.session->on_tick(now);
      // Always try to flush: an ERROR + close decided this iteration must
      // reach the wire before the fd is dropped.
      if (!flush_writes(conn)) alive = false;
      if (!alive || conn.session->finished()) drop(conn);
    }
    const std::size_t before = conns_.size();
    conns_.erase(std::remove_if(conns_.begin(), conns_.end(),
                                [](const Conn& c) { return c.fd < 0; }),
                 conns_.end());
    if (conns_.size() != before) {
      obs::gauge(obs::names::kServiceSessionsOpen,
                 static_cast<std::int64_t>(conns_.size()));
    }
  }
  // Shutdown epilogue: best-effort flush of goodbye bytes, then close.
  for (Conn& conn : conns_) {
    flush_writes(conn);
    drop(conn);
  }
  conns_.clear();
}

}  // namespace catalyst::service
