// catalyst/service -- the ONLY file pair in src/ allowed to make raw
// socket / file-descriptor syscalls (catalyst-lint: raw-socket-io).
//
// Everything here is a thin, error-normalising wrapper: EINTR is retried,
// EAGAIN/EWOULDBLOCK becomes IoResult::would_block, real errors become
// IoResult::error with errno captured.  Keeping the syscall surface in one
// place means the rest of the service layer (server, client, tests) is
// testable without a kernel and auditable at a glance.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace catalyst::service::io {

/// Outcome of a non-blocking read/write attempt.
struct IoResult {
  enum class Kind {
    ok,           ///< `bytes` transferred (> 0).
    would_block,  ///< Try again when poll says so.
    eof,          ///< Peer closed (read only).
    error,        ///< Connection-fatal; `err` holds errno.
  };
  Kind kind = Kind::error;
  std::size_t bytes = 0;
  int err = 0;
};

/// Creates, binds, and listens on a Unix-domain stream socket; any stale
/// socket file at `path` is removed first.  The fd is non-blocking and
/// close-on-exec.  Throws std::runtime_error on failure.
int listen_unix(const std::string& path, int backlog = 64);

/// Accepts one pending connection (returned fd non-blocking, cloexec);
/// -1 when none is pending or on a transient accept failure.
int accept_client(int listen_fd);

/// Connects to a Unix-domain socket (blocking fd).  Throws on failure.
int connect_unix(const std::string& path);

IoResult read_some(int fd, char* buf, std::size_t size);
IoResult write_some(int fd, const char* data, std::size_t size);

void set_nonblocking(int fd);
void close_fd(int fd) noexcept;

/// A pipe for self-pipe signal wakeups: `write_end` is async-signal-safe to
/// poke via notify_pipe(); the read end participates in poll sets.
struct Pipe {
  int read_end = -1;
  int write_end = -1;
};
Pipe make_pipe();

/// Writes one byte, ignoring every error (async-signal-safe: the only
/// caller is a signal handler waking the poll loop).
void notify_pipe(int write_end) noexcept;

/// Drains any bytes pending on the pipe's read end.
void drain_pipe(int read_end) noexcept;

/// One entry of a poll set.
struct PollItem {
  int fd = -1;
  bool want_read = false;
  bool want_write = false;
  // Filled by poll_fds():
  bool readable = false;
  bool writable = false;
  bool broken = false;  ///< HUP / ERR / NVAL.
};

/// poll(2) over the set; returns the number of ready items (0 = timeout).
/// EINTR reports as 0 ready -- callers loop anyway.
int poll_fds(std::vector<PollItem>& items, int timeout_ms);

}  // namespace catalyst::service::io
