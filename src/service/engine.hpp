// catalyst/service -- request execution: one SUBMIT in, one rendered
// report (or a typed failure) out.
//
// The engine is where a decoded wire::SubmitBody meets the analysis
// library.  It resolves the category through the SharedCatalog, rebuilds
// the measurement tensor (bulk move for packed submissions, the archive
// loader for JSON ones), runs core::analyze_measurements with the caller's
// CancelToken threaded through, and renders the result with the SAME
// report helpers the CLI uses -- format_selected_events plus
// format_metric_table -- so a RESULT payload is byte-identical to the
// corresponding `catalyst analyze` output.
//
// Failures never escape as raw exceptions: every outcome is an
// EngineOutcome carrying a wire::ErrorCode, because the caller is a worker
// thread whose job is to park a typed verdict in the request table.
#pragma once

#include <string>

#include "core/io.hpp"
#include "core/pipeline.hpp"
#include "service/catalog.hpp"
#include "service/wire.hpp"

namespace catalyst::service {

struct EngineOutcome {
  bool ok = false;
  std::string text;          ///< ok: the rendered report.
  wire::ErrorCode code = wire::ErrorCode::analysis_failed;
  std::string message;       ///< !ok: bounded human-readable reason.
};

/// Runs one analysis.  `cancel` may be null; when set, the pipeline stages
/// poll it and a cancel/deadline surfaces as ErrorCode::cancelled /
/// deadline_exceeded.  Thread-safe: catalog entries are immutable shared
/// state and everything else is request-local.
EngineOutcome run_analysis(SharedCatalog& catalog,
                           const wire::SubmitBody& submit,
                           const core::CancelToken* cancel);

/// The CLI-identical rendering of a finished pipeline run (exposed so the
/// byte-identity test can compare against it directly).
std::string render_result(const core::PipelineResult& result);

/// Flattens a measurement archive into a packed SUBMIT body (the client's
/// and bench's fast path: the daemon decodes it without parsing JSON).
/// A non-zero `trace_id` stamps the submission for end-to-end tracing.
wire::SubmitBody packed_submit_from_archive(
    const core::MeasurementArchive& archive, const std::string& category,
    std::uint64_t deadline_ns = 0, std::uint64_t trace_id = 0);

}  // namespace catalyst::service
