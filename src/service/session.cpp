#include "service/session.hpp"

#include "core/io.hpp"
#include "obs/names.hpp"
#include "obs/trace.hpp"

namespace catalyst::service {

Session::Session(SessionId id, RequestBroker* broker, Limits limits,
                 std::chrono::nanoseconds now)
    : id_(id),
      broker_(broker),
      limits_(limits),
      decoder_(limits.max_frame_payload),
      connected_at_(now),
      last_bytes_at_(now) {}

void Session::send(wire::FrameType type, const std::string& payload) {
  output_ += wire::encode_frame(type, payload);
}

void Session::send_error(std::uint64_t request_id, wire::ErrorCode code,
                         const std::string& message) {
  wire::ErrorBody body;
  body.request_id = request_id;
  body.code = code;
  body.message = message;  // encode_error applies the excerpt bound.
  send(wire::FrameType::error, wire::encode_error(body));
  obs::count(obs::names::kServiceErrorsSent);
}

void Session::fail_session(wire::ErrorCode code, const std::string& message) {
  send_error(0, code, message);
  close();
}

void Session::close() {
  state_ = State::closed;
}

void Session::on_eof() {
  // The peer is gone; flushing a goodbye at a closed pipe is pointless.
  output_.clear();
  state_ = State::closed;
}

void Session::on_bytes(std::chrono::nanoseconds now, const char* data,
                       std::size_t size) {
  if (state_ == State::closed) return;
  last_bytes_at_ = now;
  decoder_.feed(data, size);
  while (state_ != State::closed) {
    if (decoder_.error().has_value()) {
      // The stream is garbage from here on: every parse failure becomes a
      // typed ERROR frame followed by teardown, never a crash and never a
      // guess at resynchronisation.
      obs::count(obs::names::kServiceMalformedFrames);
      fail_session(decoder_.error()->code, decoder_.error()->message);
      return;
    }
    const auto frame = decoder_.next();
    if (!frame.has_value()) break;
    partial_since_ = std::chrono::nanoseconds{0};
    handle_frame(*frame);
  }
  // A partial frame is now buffered (or still is): start / keep the
  // slow-loris stopwatch.  Completing any frame above reset it.
  if (state_ != State::closed && decoder_.mid_frame() &&
      partial_since_.count() == 0) {
    partial_since_ = now;
  }
}

void Session::on_tick(std::chrono::nanoseconds now) {
  if (state_ == State::closed) return;
  if (limits_.session_deadline.count() > 0 &&
      now - connected_at_ > limits_.session_deadline) {
    obs::count(obs::names::kServiceSessionsExpired);
    fail_session(wire::ErrorCode::deadline_exceeded,
                 "session lifetime limit reached");
    return;
  }
  if (partial_since_.count() != 0 &&
      now - partial_since_ > limits_.partial_frame_timeout) {
    // Slow loris: a frame has been dribbling in longer than any honest
    // client needs to send one.
    obs::count(obs::names::kServiceSlowLorisDrops);
    fail_session(wire::ErrorCode::deadline_exceeded,
                 "frame transfer too slow");
    return;
  }
  if (limits_.idle_timeout.count() > 0 &&
      now - last_bytes_at_ > limits_.idle_timeout) {
    obs::count(obs::names::kServiceIdleDrops);
    fail_session(wire::ErrorCode::deadline_exceeded, "session idle timeout");
    return;
  }
}

void Session::handle_frame(const wire::Frame& frame) {
  obs::count(obs::names::kServiceFramesReceived);
  switch (state_) {
    case State::handshake:
      if (frame.type != wire::FrameType::hello) {
        fail_session(wire::ErrorCode::bad_state,
                     std::string(wire::to_string(frame.type)) +
                         " before HELLO");
        return;
      }
      send(wire::FrameType::hello_ok, "catalystd/2");
      state_ = State::ready;
      return;
    case State::ready:
      break;
    case State::closed:
      return;
  }
  switch (frame.type) {
    case wire::FrameType::submit:
      handle_submit(frame);
      return;
    case wire::FrameType::poll:
      handle_poll(frame);
      return;
    case wire::FrameType::cancel:
      handle_cancel(frame);
      return;
    case wire::FrameType::stats:
      handle_stats(frame);
      return;
    case wire::FrameType::trace:
      handle_trace(frame);
      return;
    case wire::FrameType::bye:
      send(wire::FrameType::bye, "");
      close();
      return;
    default:
      // HELLO twice, or a server-to-client type echoed back: the client's
      // state machine is broken, so ours stops talking to it.
      fail_session(wire::ErrorCode::bad_state,
                   std::string(wire::to_string(frame.type)) +
                       " not valid here");
      return;
  }
}

void Session::handle_submit(const wire::Frame& frame) {
  if (shutting_down_) {
    send_error(0, wire::ErrorCode::shutting_down,
               "daemon is draining; resubmit later");
    return;
  }
  wire::SubmitBody body;
  try {
    body = wire::decode_submit(frame.payload);
  } catch (const wire::PayloadError& e) {
    // The frame was well-formed (magic/CRC passed) but its contents are
    // not a submission: recoverable, the session survives.
    send_error(0, wire::ErrorCode::bad_request, e.what());
    return;
  }
  const SubmitOutcome outcome = broker_->submit(id_, std::move(body));
  switch (outcome.kind) {
    case SubmitOutcome::Kind::accepted: {
      std::string payload;
      wire::put_u64(payload, outcome.request_id);
      send(wire::FrameType::accepted, payload);
      return;
    }
    case SubmitOutcome::Kind::retry_after: {
      std::string payload;
      wire::put_u64(payload, 0);
      wire::put_u64(payload,
                    static_cast<std::uint64_t>(outcome.retry_after.count()));
      send(wire::FrameType::retry_after, payload);
      return;
    }
    case SubmitOutcome::Kind::rejected:
      send_error(0, outcome.code, outcome.message);
      return;
  }
}

void Session::handle_poll(const wire::Frame& frame) {
  std::uint64_t request_id = 0;
  try {
    wire::Get cursor(frame.payload);
    request_id = cursor.u64();
    cursor.expect_done();
  } catch (const wire::PayloadError& e) {
    send_error(0, wire::ErrorCode::bad_request, e.what());
    return;
  }
  const PollOutcome outcome = broker_->poll(id_, request_id);
  std::string payload;
  wire::put_u64(payload, request_id);
  switch (outcome.kind) {
    case PollOutcome::Kind::unknown:
      send_error(request_id, wire::ErrorCode::unknown_request,
                 "no such request for this session");
      return;
    case PollOutcome::Kind::queued:
      payload.push_back(0);
      send(wire::FrameType::pending, payload);
      return;
    case PollOutcome::Kind::analyzing:
      payload.push_back(1);
      send(wire::FrameType::pending, payload);
      return;
    case PollOutcome::Kind::result:
      wire::put_string(payload, outcome.text);
      wire::put_u64(payload, outcome.trace_id);
      send(wire::FrameType::result, payload);
      return;
    case PollOutcome::Kind::failed:
      send_error(request_id, outcome.code, outcome.message);
      return;
    case PollOutcome::Kind::cancelled:
      send(wire::FrameType::cancelled, payload);
      return;
  }
}

void Session::handle_cancel(const wire::Frame& frame) {
  std::uint64_t request_id = 0;
  try {
    wire::Get cursor(frame.payload);
    request_id = cursor.u64();
    cursor.expect_done();
  } catch (const wire::PayloadError& e) {
    send_error(0, wire::ErrorCode::bad_request, e.what());
    return;
  }
  if (!broker_->cancel(id_, request_id)) {
    send_error(request_id, wire::ErrorCode::unknown_request,
               "no such request for this session");
    return;
  }
  std::string payload;
  wire::put_u64(payload, request_id);
  send(wire::FrameType::cancelled, payload);
}

void Session::handle_stats(const wire::Frame& frame) {
  // STATS carries no payload; trailing bytes mean the client is confused,
  // which is recoverable (the frame itself was sound).
  if (!frame.payload.empty()) {
    send_error(0, wire::ErrorCode::bad_request,
               "STATS takes no payload");
    return;
  }
  std::string payload;
  wire::put_string(payload, broker_->stats_json());
  send(wire::FrameType::stats_ok, payload);
}

void Session::handle_trace(const wire::Frame& frame) {
  std::uint64_t trace_id = 0;
  try {
    wire::Get cursor(frame.payload);
    trace_id = cursor.u64();
    cursor.expect_done();
  } catch (const wire::PayloadError& e) {
    send_error(0, wire::ErrorCode::bad_request, e.what());
    return;
  }
  std::string payload;
  wire::put_u64(payload, trace_id);
  wire::put_string(payload, broker_->trace_json(trace_id));
  send(wire::FrameType::trace_ok, payload);
}

std::string Session::take_output() {
  std::string out = std::move(output_);
  output_.clear();
  return out;
}

}  // namespace catalyst::service
