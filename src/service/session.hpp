// catalyst/service -- the per-connection protocol state machine.
//
// A Session is one client connection with the socket cut away: bytes go in
// through on_bytes(), frames come out through take_output(), and time is
// whatever timestamp the caller passes -- the session never reads a clock,
// which is why every timeout below is exact under FakeClock in tests.
//
//   HANDSHAKE --HELLO--> READY --BYE/teardown--> CLOSED
//
// In READY the session relays SUBMIT/POLL/CANCEL (and the v2 telemetry
// frames STATS/TRACE) to its RequestBroker and frames the outcomes.  Every way a connection can misbehave lands in one
// of exactly two shapes, both of which leave the daemon standing:
//
//   * recoverable request problems (unknown id, quota, bad payload): a
//     typed ERROR frame, session stays up;
//   * framing-level problems (bad magic/version/CRC, oversized length,
//     frames in the wrong state, timeouts): a typed ERROR frame and
//     teardown -- the byte stream has lost meaning, so the session drains
//     its output buffer and closes.
//
// Timers (all caller-driven via on_tick):
//   * idle timeout     -- no client bytes for too long;
//   * partial-frame timeout -- bytes mid-frame dribbling in too slowly
//     (the slow-loris defense: a client cannot hold a connection open by
//     sending one header byte per minute);
//   * session deadline -- absolute lifetime cap.
#pragma once

#include <chrono>
#include <cstdint>
#include <string>

#include "service/servicecore.hpp"
#include "service/wire.hpp"

namespace catalyst::service {

class Session {
 public:
  struct Limits {
    std::uint32_t max_frame_payload = wire::kMaxPayloadBytes;
    std::chrono::nanoseconds idle_timeout = std::chrono::seconds(30);
    std::chrono::nanoseconds partial_frame_timeout = std::chrono::seconds(5);
    /// Absolute session lifetime; zero disables.
    std::chrono::nanoseconds session_deadline{0};
  };

  enum class State { handshake, ready, closed };

  /// `broker` must outlive the session.  `now` stamps the connection time
  /// for the idle / lifetime timers.
  Session(SessionId id, RequestBroker* broker, Limits limits,
          std::chrono::nanoseconds now);

  // --- input ---------------------------------------------------------------
  /// Feeds client bytes; responses accumulate in the output buffer.
  void on_bytes(std::chrono::nanoseconds now, const char* data,
                std::size_t size);
  /// Clock edge: fires whichever timeout has expired, if any.
  void on_tick(std::chrono::nanoseconds now);
  /// Daemon is draining: future SUBMITs get shutting_down; POLLs still work
  /// so clients can collect results already in flight.
  void begin_shutdown() { shutting_down_ = true; }
  /// Peer closed its end (EOF) -- immediate close, nothing to flush.
  void on_eof();

  // --- output --------------------------------------------------------------
  /// Encoded frames awaiting the socket; the server moves them out and
  /// writes.  May be non-empty after close (the goodbye must still flush).
  std::string take_output();
  bool has_output() const noexcept { return !output_.empty(); }

  State state() const noexcept { return state_; }
  SessionId id() const noexcept { return id_; }
  bool closed() const noexcept { return state_ == State::closed; }
  /// True once closed AND every pending byte was taken: the server's cue to
  /// drop the connection.
  bool finished() const noexcept { return closed() && output_.empty(); }

 private:
  void handle_frame(const wire::Frame& frame);
  void handle_submit(const wire::Frame& frame);
  void handle_poll(const wire::Frame& frame);
  void handle_cancel(const wire::Frame& frame);
  void handle_stats(const wire::Frame& frame);
  void handle_trace(const wire::Frame& frame);
  void send(wire::FrameType type, const std::string& payload);
  void send_error(std::uint64_t request_id, wire::ErrorCode code,
                  const std::string& message);
  /// Typed ERROR then teardown (framing-level failure).
  void fail_session(wire::ErrorCode code, const std::string& message);
  void close();

  SessionId id_;
  RequestBroker* broker_;
  Limits limits_;
  State state_ = State::handshake;
  bool shutting_down_ = false;
  wire::FrameDecoder decoder_;
  std::string output_;

  std::chrono::nanoseconds connected_at_;
  std::chrono::nanoseconds last_bytes_at_;
  /// When the current partial frame started dribbling in; reset on every
  /// completed frame.  Zero = not mid-frame.
  std::chrono::nanoseconds partial_since_{0};
};

}  // namespace catalyst::service
