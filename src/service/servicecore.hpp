// catalyst/service -- the request broker: bounded queue, worker pool,
// per-session quotas, cooperative cancellation, and shutdown drain.
//
// ServiceCore is the daemon with the sockets cut away.  Sessions talk to it
// through the RequestBroker interface (submit / poll / cancel keyed by an
// opaque session id); workers pull from its bounded queue; shutdown drains
// in-flight work and checkpoints queued-unstarted requests through the PR 3
// checkpoint machinery (write_text_file_atomic under a CheckpointDirLease)
// so a restarted daemon resumes exactly where the SIGTERM landed.
//
// Everything is driven by an injectable faults::Clock and is fully
// exercisable without threads: tests construct a core with zero workers and
// call run_one() to execute queued requests synchronously in queue order,
// which is what makes the shutdown-drain test deterministic.
//
// Robustness decisions, each load-bearing:
//   * the queue is BOUNDED: when full, submit() answers retry_after with a
//     backoff hint instead of queueing unboundedly (load shedding beats
//     collapse);
//   * per-session inflight and byte quotas are enforced here (the session
//     enforces frame-level ones): a greedy client gets quota_exceeded, the
//     daemon keeps serving everyone else;
//   * a request's CancelToken is owned by its table entry, so CANCEL and
//     per-request deadlines reach a *running* analysis mid-stage;
//   * results are kept until polled once (then freed) or their session
//     closes -- a client that never polls cannot leak daemon memory
//     forever.
#pragma once

#include <chrono>
#include <cstdint>
#include <deque>
#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/campaign.hpp"
#include "core/pipeline.hpp"
#include "faults/faults.hpp"
#include "obs/export.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "service/catalog.hpp"
#include "service/engine.hpp"
#include "service/wire.hpp"
#include "sync/annotations.hpp"
#include "sync/mutex.hpp"

namespace catalyst::service {

using SessionId = std::uint64_t;

/// What a session learns from submit().
struct SubmitOutcome {
  enum class Kind {
    accepted,     ///< Queued; `request_id` is live.
    retry_after,  ///< Queue full; come back after `retry_after`.
    rejected,     ///< Quota / shutdown; `code` + `message` say why.
  };
  Kind kind = Kind::rejected;
  std::uint64_t request_id = 0;
  std::chrono::nanoseconds retry_after{0};
  wire::ErrorCode code = wire::ErrorCode::quota_exceeded;
  std::string message;
};

/// What a session learns from poll().
struct PollOutcome {
  enum class Kind {
    unknown,    ///< Not this session's id (or already collected).
    queued,     ///< Still waiting for a worker.
    analyzing,  ///< A worker is on it.
    result,     ///< Done; `text` is the rendered report (entry freed).
    failed,     ///< Done; `code` + `message` (entry freed).
    cancelled,  ///< Cancelled before completion (entry freed).
  };
  Kind kind = Kind::unknown;
  std::string text;
  /// Echo of the SUBMIT's trace id (0 = untraced); rides the RESULT frame
  /// so the client can fetch the request's trace fragment afterwards.
  std::uint64_t trace_id = 0;
  wire::ErrorCode code = wire::ErrorCode::analysis_failed;
  std::string message;
};

// Renders the STATS answer / TRACE fragment for the obs mode the calling
// translation unit was compiled under.  The two variants live in distinct
// inline namespaces (the obs noop/live idiom) so a CATALYST_OBS=OFF TU and
// a regular TU linked into one binary never ODR-collide: each calls its
// own symbol.  Under OFF, STATS still gets a *valid* catalyst-metrics-v1
// document -- explicitly flagged compiled_out, so a scraper can tell "no
// load" apart from "observability compiled out".
#if defined(CATALYST_OBS_DISABLED)
inline namespace telemetry_noop {

inline std::string render_stats_exposition() {
  return obs::kMetricsCompiledOutJson;
}

inline std::string render_trace_fragment(std::uint64_t trace_id,
                                         std::size_t* matched = nullptr) {
  return obs::trace_fragment_json(std::vector<obs::SpanRecord>{}, trace_id,
                                  matched);
}

}  // namespace telemetry_noop
#else
inline namespace telemetry_live {

inline std::string render_stats_exposition() {
  return obs::to_metrics_json(obs::Metrics::instance().snapshot());
}

/// One request's Chrome trace fragment by trace id (the spans the request
/// stamped on its way through session -> queue -> execute -> pipeline).
/// `matched` (optional) reports how many spans carried the id.
inline std::string render_trace_fragment(std::uint64_t trace_id,
                                         std::size_t* matched = nullptr) {
  return obs::trace_fragment_json(obs::Tracer::instance().buffer().snapshot(),
                                  trace_id, matched);
}

}  // namespace telemetry_live
#endif  // CATALYST_OBS_DISABLED

/// The session-facing face of the core.  Sessions hold a RequestBroker*,
/// never a ServiceCore*, so protocol tests drive them with a scripted fake.
class RequestBroker {
 public:
  virtual ~RequestBroker() = default;
  virtual SubmitOutcome submit(SessionId session, wire::SubmitBody body) = 0;
  virtual PollOutcome poll(SessionId session, std::uint64_t request_id) = 0;
  /// True if the id was live (queued request dropped / running analysis
  /// signalled); false for unknown ids.
  virtual bool cancel(SessionId session, std::uint64_t request_id) = 0;

  // Live-telemetry hooks behind the v2 STATS/TRACE frames.  Non-pure with
  // working defaults (defined once in servicecore.cpp, under the library's
  // obs mode) so brokers that only script submit/poll/cancel -- the
  // protocol-test fakes -- stay source-compatible.
  /// Metrics exposition JSON ("catalyst-metrics-v1") for a STATS frame.
  virtual std::string stats_json();
  /// Chrome trace fragment for one trace id, for a TRACE frame.
  virtual std::string trace_json(std::uint64_t trace_id);
};

/// The service-checkpoint format marker.
extern const char* const kServiceCheckpointFormat;

class ServiceCore final : public RequestBroker {
 public:
  struct Options {
    int workers = 1;                     ///< Worker-loop count (may be 0).
    std::size_t queue_capacity = 64;     ///< Global bounded-queue depth.
    std::size_t max_inflight_per_session = 8;
    std::uint64_t max_bytes_per_session = 256ull * 1024 * 1024;
    /// Default per-request analysis timeout; a SUBMIT's deadline_ns (if
    /// non-zero and tighter) overrides it.  Zero disables.
    std::chrono::nanoseconds default_analysis_timeout{0};
    /// Backoff hint attached to retry_after answers.
    std::chrono::nanoseconds retry_after_hint = std::chrono::milliseconds(50);
    /// Queued-unstarted requests are checkpointed here on shutdown and
    /// restored (re-enqueued in id order) on construction.  Empty disables.
    std::string checkpoint_dir;
    faults::Clock* clock = nullptr;  ///< Required for deadlines; not owned.
  };

  explicit ServiceCore(Options options);
  ~ServiceCore() override;

  ServiceCore(const ServiceCore&) = delete;
  ServiceCore& operator=(const ServiceCore&) = delete;

  // --- RequestBroker --------------------------------------------------------
  SubmitOutcome submit(SessionId session, wire::SubmitBody body) override
      CATALYST_EXCLUDES(mutex_);
  PollOutcome poll(SessionId session, std::uint64_t request_id) override
      CATALYST_EXCLUDES(mutex_);
  bool cancel(SessionId session, std::uint64_t request_id) override
      CATALYST_EXCLUDES(mutex_);
  std::string stats_json() override;
  std::string trace_json(std::uint64_t trace_id) override;

  /// Drops every finished entry of a closed session and cancels its live
  /// ones: a vanished client must not pin queue slots or result memory.
  void forget_session(SessionId session) CATALYST_EXCLUDES(mutex_);

  // --- execution ------------------------------------------------------------
  /// Blocking worker loop; returns when shutdown drains the queue.  The
  /// daemon runs Options::workers of these on core::parallel_for units.
  void worker_loop() CATALYST_EXCLUDES(mutex_);

  /// Synchronously executes the oldest queued request on the calling
  /// thread; false when the queue is empty.  The deterministic test/drain
  /// driver (equivalent to one worker_loop iteration).
  bool run_one() CATALYST_EXCLUDES(mutex_);

  /// Begins shutdown: refuse new submits (shutting_down), wake workers.
  /// Running analyses finish normally (drain) -- they are NOT cancelled --
  /// and queued-unstarted requests are checkpointed to checkpoint_dir and
  /// marked failed(shutting_down) so pollers learn the truth.  Idempotent.
  void begin_shutdown() CATALYST_EXCLUDES(mutex_);

  /// True once shutdown began and no request is queued or running.
  bool drained() const CATALYST_EXCLUDES(mutex_);

  bool shutting_down() const CATALYST_EXCLUDES(mutex_);

  /// Requests restored from checkpoints at construction (observability +
  /// the restart test).  Restored requests belong to session 0 -- any
  /// session may poll/cancel them after handshake via their stable ids.
  std::size_t restored_requests() const noexcept { return restored_; }

  std::size_t queued_count() const CATALYST_EXCLUDES(mutex_);
  std::size_t running_count() const CATALYST_EXCLUDES(mutex_);

  SharedCatalog& catalog() noexcept { return catalog_; }
  const Options& options() const noexcept { return options_; }

 private:
  enum class State { queued, running, done, failed, cancelled };

  struct Request {
    std::uint64_t id = 0;
    SessionId session = 0;
    wire::SubmitBody body;
    std::uint64_t body_bytes = 0;  ///< Encoded size (session byte quota).
    State state = State::queued;
    /// Owner session closed while this ran; finish() reaps the entry.
    bool orphaned = false;
    core::CancelToken cancel;  ///< Live for the entry's whole lifetime.
    EngineOutcome outcome;     ///< Valid in done/failed.
    /// Flight-recorder timestamps (obs::Tracer time base, matching spans).
    std::int64_t enqueued_ns = 0;
    std::int64_t started_ns = 0;
  };

  /// Claims the oldest queued request (marks it running) or returns
  /// nullptr.  Pointer stays valid: entries live in `requests_` and are
  /// only erased by poll/forget, never while running.
  Request* claim_next_locked() CATALYST_REQUIRES(mutex_);
  void finish(Request* request, EngineOutcome outcome)
      CATALYST_EXCLUDES(mutex_);
  void execute(Request* request);

  void checkpoint_queued_locked() CATALYST_REQUIRES(mutex_);
  void restore_checkpoints();

  /// Publishes the live-pressure gauges (queue depth, inflight entries,
  /// busy workers); called at every queue/table mutation point.
  void update_gauges_locked() CATALYST_REQUIRES(mutex_);

  Options options_;
  SharedCatalog catalog_;
  std::optional<core::CheckpointDirLease> lease_;
  std::size_t restored_ = 0;

  mutable sync::Mutex mutex_{"service.core"};
  sync::CondVar work_cv_;  ///< Signalled on enqueue and on shutdown.
  std::uint64_t next_id_ CATALYST_GUARDED_BY(mutex_) = 1;
  bool shutting_down_ CATALYST_GUARDED_BY(mutex_) = false;
  /// Queued ids in arrival order; entries themselves live in requests_.
  std::deque<std::uint64_t> queue_ CATALYST_GUARDED_BY(mutex_);
  std::unordered_map<std::uint64_t, std::unique_ptr<Request>> requests_
      CATALYST_GUARDED_BY(mutex_);
  std::size_t running_ CATALYST_GUARDED_BY(mutex_) = 0;
  struct SessionUsage {
    std::size_t inflight = 0;     ///< queued + running + unpolled results.
    std::uint64_t bytes = 0;      ///< Cumulative submitted payload bytes.
  };
  std::unordered_map<SessionId, SessionUsage> usage_
      CATALYST_GUARDED_BY(mutex_);
};

}  // namespace catalyst::service
