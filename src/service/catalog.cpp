#include "service/catalog.hpp"

#include "cat/cat.hpp"
#include "core/signatures.hpp"
#include "pmu/pmu.hpp"

namespace catalyst::service {

std::optional<pmu::Machine> machine_by_name(const std::string& name) {
  if (name == "saphira") return pmu::saphira_cpu();
  if (name == "tempest") return pmu::tempest_gpu();
  if (name == "vesuvio") return pmu::vesuvio_cpu();
  return std::nullopt;
}

const std::vector<std::string>& machine_names() {
  static const std::vector<std::string> names = {"saphira", "tempest",
                                                 "vesuvio"};
  return names;
}

std::optional<CategorySetup> category_setup(const std::string& category) {
  CategorySetup s;
  if (category == "cpu_flops") {
    s.benchmark = cat::cpu_flops_benchmark();
    s.signatures = core::cpu_flops_signatures();
    s.default_machine = "saphira";
  } else if (category == "gpu_flops") {
    s.benchmark = cat::gpu_flops_benchmark();
    s.signatures = core::gpu_flops_signatures();
    s.default_machine = "tempest";
  } else if (category == "branch") {
    s.benchmark = cat::branch_benchmark();
    s.signatures = core::branch_signatures();
    s.default_machine = "saphira";
  } else if (category == "gpu_dcache") {
    s.benchmark = cat::gpu_dcache_benchmark();
    s.signatures = core::gpu_dcache_signatures();
    s.options.tau = 1e-1;
    s.options.alpha = 5e-2;
    s.options.projection_max_error = 1e-1;
    s.options.fitness_threshold = 5e-2;
    s.default_machine = "tempest";
  } else if (category == "icache") {
    s.benchmark = cat::icache_benchmark();
    s.signatures = core::icache_signatures();
    s.options.tau = 1e-1;
    s.options.alpha = 5e-2;
    s.options.projection_max_error = 1e-1;
    s.options.fitness_threshold = 5e-2;
    s.default_machine = "saphira";
  } else if (category == "dcache") {
    cat::DcacheOptions chase;
    chase.threads = 3;
    s.benchmark = cat::dcache_benchmark(chase);
    s.signatures = core::dcache_signatures();
    s.options.tau = 1e-1;
    s.options.alpha = 5e-2;
    s.options.projection_max_error = 1e-1;
    s.options.fitness_threshold = 5e-2;
    s.default_machine = "saphira";
  } else {
    return std::nullopt;
  }
  return s;
}

const std::vector<std::string>& category_names() {
  static const std::vector<std::string> names = {
      "cpu_flops", "gpu_flops", "branch", "dcache", "icache", "gpu_dcache"};
  return names;
}

namespace {

/// Double-checked insert shared by both caches: a read-locked lookup on the
/// hit path, an exclusive build-and-insert on the first miss.  Losing a
/// build race is harmless -- the first inserted entry wins and the loser's
/// build is discarded -- because entries are pure functions of their name.
template <typename Map, typename Build>
const typename Map::mapped_type::element_type* find_or_build(
    sync::SharedMutex& mutex, Map& map, const std::string& name,
    Build&& build) CATALYST_NO_THREAD_SAFETY_ANALYSIS {
  {
    const sync::ReadLockGuard lock(mutex);
    const auto it = map.find(name);
    if (it != map.end()) return it->second.get();
  }
  auto built = build(name);  // Built outside any lock: may be expensive.
  if (built == nullptr) return nullptr;
  const sync::WriteLockGuard lock(mutex);
  auto [it, inserted] = map.emplace(name, std::move(built));
  return it->second.get();
}

}  // namespace

const CategorySetup* SharedCatalog::category(const std::string& name) {
  return find_or_build(
      mutex_, categories_, name,
      [](const std::string& n) -> std::unique_ptr<CategorySetup> {
        auto setup = category_setup(n);
        if (!setup.has_value()) return nullptr;
        return std::make_unique<CategorySetup>(std::move(*setup));
      });
}

const pmu::Machine* SharedCatalog::machine(const std::string& name) {
  return find_or_build(
      mutex_, machines_, name,
      [](const std::string& n) -> std::unique_ptr<pmu::Machine> {
        auto machine = machine_by_name(n);
        if (!machine.has_value()) return nullptr;
        return std::make_unique<pmu::Machine>(std::move(*machine));
      });
}

}  // namespace catalyst::service
