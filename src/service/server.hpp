// catalyst/service -- the socket front end: accept loop, per-connection
// Session plumbing, and the graceful-shutdown sequence.
//
// One thread runs Server::run() (the daemon gives it worker-pool unit 0);
// it multiplexes the listening socket, a self-pipe (so a signal handler can
// wake the poll), and every client connection.  All protocol logic lives in
// Session; all syscalls live in service/io.  The server only moves bytes
// and lifecycles connections:
//
//   readable  -> read_some -> session.on_bytes -> take_output -> write
//   each tick -> session.on_tick(now)          (timeouts, slow-loris)
//   stop flag -> core.begin_shutdown (drain + checkpoint), stop accepting,
//                keep serving polls until the core drains, linger briefly
//                so pollers can collect, then close everything.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "faults/faults.hpp"
#include "service/io.hpp"
#include "service/servicecore.hpp"
#include "service/session.hpp"

namespace catalyst::service {

class Server {
 public:
  struct Options {
    std::string socket_path;
    Session::Limits session_limits;
    std::size_t max_sessions = 64;  ///< Excess connections are turned away.
    int poll_interval_ms = 20;      ///< Tick granularity for timeouts.
    /// After the core drains, keep answering polls this long before
    /// closing remaining sessions (gives in-flight pollers their results).
    std::chrono::nanoseconds drain_linger = std::chrono::milliseconds(200);
    faults::Clock* clock = nullptr;  ///< Session timer source; required.
    /// Runs on the event-loop thread whenever the self-pipe wakes the
    /// poll -- the safe place to do signal-requested work (the SIGUSR1
    /// flight-recorder dump) outside any signal handler.
    std::function<void()> on_wake;
  };

  /// Binds and listens immediately (so callers know the socket is ready
  /// before spawning clients).  Throws std::runtime_error on bind failure.
  Server(ServiceCore& core, Options options);
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// The event loop.  Returns once `stop` was observed true AND the core
  /// drained (plus the linger window).  `stop` is typically flipped by a
  /// SIGTERM handler that then pokes wake_fd().
  void run(const std::atomic<bool>& stop);

  /// Write end of the self-pipe: async-signal-safe wakeup target.
  int wake_fd() const noexcept { return pipe_.write_end; }

  std::uint64_t sessions_served() const noexcept {
    return sessions_served_.load(std::memory_order_relaxed);
  }

 private:
  struct Conn {
    int fd = -1;
    std::unique_ptr<Session> session;
    std::string outbuf;  ///< Bytes taken from the session, not yet written.
  };

  void accept_new();
  /// Reads everything available; feeds the session.  False = drop conn.
  bool service_reads(Conn& conn, std::chrono::nanoseconds now);
  /// Flushes outbuf as far as the socket allows.  False = drop conn.
  bool flush_writes(Conn& conn);
  void drop(Conn& conn);

  ServiceCore& core_;
  Options options_;
  int listen_fd_ = -1;
  io::Pipe pipe_;
  std::vector<Conn> conns_;
  SessionId next_session_id_ = 1;
  std::atomic<std::uint64_t> sessions_served_{0};
};

}  // namespace catalyst::service
