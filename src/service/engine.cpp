#include "service/engine.hpp"

#include <algorithm>
#include <stdexcept>
#include <utility>
#include <vector>

#include "core/io.hpp"
#include "core/report.hpp"
#include "obs/names.hpp"
#include "obs/trace.hpp"

namespace catalyst::service {

std::string render_result(const core::PipelineResult& result) {
  return core::format_selected_events(result) + "\n" +
         core::format_metric_table("metrics", result.metrics);
}

wire::SubmitBody packed_submit_from_archive(
    const core::MeasurementArchive& archive, const std::string& category,
    std::uint64_t deadline_ns, std::uint64_t trace_id) {
  wire::SubmitBody body;
  body.kind = wire::SubmitKind::packed;
  body.category = category;
  body.deadline_ns = deadline_ns;
  body.trace_id = trace_id;
  body.collection_mode =
      static_cast<std::uint8_t>(archive.collection_mode);
  body.event_names = archive.event_names;
  body.repetitions = archive.measurements.empty()
                         ? 0
                         : static_cast<std::uint32_t>(
                               archive.measurements.front().size());
  body.slots = static_cast<std::uint32_t>(archive.slot_names.size());
  body.values.reserve(archive.event_names.size() * body.repetitions *
                      body.slots);
  for (const auto& per_event : archive.measurements) {
    for (const auto& per_rep : per_event) {
      body.values.insert(body.values.end(), per_rep.begin(), per_rep.end());
    }
  }
  return body;
}

namespace {

EngineOutcome fail(wire::ErrorCode code, const std::string& message) {
  EngineOutcome out;
  out.ok = false;
  out.code = code;
  out.message = core::bounded_excerpt(message, wire::kMaxErrorMessageBytes);
  return out;
}

/// Reshapes a packed value block into the measurements[e][r][k] tensor
/// analyze_measurements expects.  Sizes were validated by decode_submit;
/// this is pure copying.
std::vector<std::vector<std::vector<double>>> unpack_values(
    const wire::SubmitBody& submit) {
  const std::size_t n_events = submit.event_names.size();
  const std::size_t n_reps = submit.repetitions;
  const std::size_t n_slots = submit.slots;
  std::vector<std::vector<std::vector<double>>> m(
      n_events, std::vector<std::vector<double>>(
                    n_reps, std::vector<double>(n_slots)));
  const double* src = submit.values.data();
  for (std::size_t e = 0; e < n_events; ++e) {
    for (std::size_t r = 0; r < n_reps; ++r) {
      std::copy(src, src + n_slots, m[e][r].begin());
      src += n_slots;
    }
  }
  return m;
}

}  // namespace

EngineOutcome run_analysis(SharedCatalog& catalog,
                           const wire::SubmitBody& submit,
                           const core::CancelToken* cancel) {
  obs::Span span("service.analyze");
  span.arg("category", submit.category);
  if (submit.trace_id != 0) span.arg("trace", submit.trace_id);
  const CategorySetup* setup = catalog.category(submit.category);
  if (setup == nullptr) {
    return fail(wire::ErrorCode::bad_request,
                "unknown category '" + submit.category + "'");
  }
  core::PipelineOptions options = setup->options;
  options.cancel = cancel;

  try {
    core::PipelineResult result;
    if (submit.kind == wire::SubmitKind::json) {
      const core::MeasurementArchive archive =
          core::load_archive(submit.archive_json);
      result = core::analyze_archive(archive, setup->signatures, options);
    } else {
      if (submit.repetitions < 2) {
        return fail(wire::ErrorCode::bad_request,
                    "packed SUBMIT needs >= 2 repetitions");
      }
      if (submit.slots != static_cast<std::size_t>(
                              setup->benchmark.basis.e.rows())) {
        return fail(wire::ErrorCode::bad_request,
                    "packed SUBMIT slot count does not match category '" +
                        submit.category + "'");
      }
      result = core::analyze_measurements(setup->benchmark.basis.e,
                                          submit.event_names,
                                          unpack_values(submit),
                                          setup->signatures, options);
    }
    EngineOutcome out;
    out.ok = true;
    out.text = render_result(result);
    obs::count(obs::names::kServiceAnalysesOk);
    return out;
  } catch (const core::PipelineCancelled& e) {
    obs::count(obs::names::kServiceAnalysesCancelled);
    return fail(e.reason() == core::PipelineCancelled::Reason::deadline
                    ? wire::ErrorCode::deadline_exceeded
                    : wire::ErrorCode::cancelled,
                e.what());
  } catch (const std::exception& e) {
    // load_archive / analyze_measurements rejections (ArchiveError, shape
    // and finiteness contracts): data problems, typed as analysis_failed.
    obs::count(obs::names::kServiceAnalysesFailed);
    return fail(wire::ErrorCode::analysis_failed, e.what());
  }
}

}  // namespace catalyst::service
