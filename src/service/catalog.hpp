// catalyst/service -- the category/machine catalog and its shared caches.
//
// One source of truth for "what does category C mean": its benchmark (and
// therefore expectation basis), its metric signatures, its default pipeline
// thresholds, and its default machine.  Both front ends resolve requests
// through THIS table -- the `catalyst` CLI directly, `catalystd` via the
// engine -- which is what makes the byte-identity guarantee structural: a
// category analyzed over the service path runs the same benchmark, basis,
// signatures, and thresholds as the same category analyzed by the CLI,
// because there is only one place any of them is defined.
//
// SharedCatalog adds the daemon-grade layer: benchmark construction (the
// dcache pointer-chase simulations especially) and machine-model
// construction are not free, so a long-running server builds each entry
// once and shares the immutable result across its worker pool behind a
// sync::SharedMutex (readers concurrent, first-builder exclusive).
#pragma once

#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "cat/benchmark.hpp"
#include "core/metrics.hpp"
#include "core/pipeline.hpp"
#include "pmu/machine.hpp"
#include "sync/annotations.hpp"
#include "sync/mutex.hpp"

namespace catalyst::service {

/// Everything a category implies beyond the machine choice.
struct CategorySetup {
  cat::Benchmark benchmark;
  std::vector<core::MetricSignature> signatures;
  core::PipelineOptions options;  ///< Category-default thresholds.
  std::string default_machine;
};

/// The machine registry ("saphira" | "tempest" | "vesuvio").
std::optional<pmu::Machine> machine_by_name(const std::string& name);
const std::vector<std::string>& machine_names();

/// Builds a category's setup from scratch; nullopt for unknown names.
/// Categories: cpu_flops | gpu_flops | branch | dcache | icache |
/// gpu_dcache.
std::optional<CategorySetup> category_setup(const std::string& category);
const std::vector<std::string>& category_names();

/// Build-once, share-forever cache of catalog entries.  Returned pointers
/// are stable for the cache's lifetime and the pointees immutable, so
/// workers hold them across an entire analysis with no lock held.
class SharedCatalog {
 public:
  /// nullptr for an unknown category / machine (never throws: the daemon
  /// maps the miss to a typed bad_request error).
  const CategorySetup* category(const std::string& name)
      CATALYST_EXCLUDES(mutex_);
  const pmu::Machine* machine(const std::string& name)
      CATALYST_EXCLUDES(mutex_);

 private:
  mutable sync::SharedMutex mutex_{"service.catalog"};
  std::unordered_map<std::string, std::unique_ptr<CategorySetup>> categories_
      CATALYST_GUARDED_BY(mutex_);
  std::unordered_map<std::string, std::unique_ptr<pmu::Machine>> machines_
      CATALYST_GUARDED_BY(mutex_);
};

}  // namespace catalyst::service
