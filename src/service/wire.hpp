// catalyst/service -- the catalyst-wire-v2 framing layer.
//
// catalystd speaks a length-prefixed binary protocol over a Unix-domain
// socket.  Every frame is
//
//   magic   u32 LE  0x4C544143 ("CATL")
//   version u16 LE  2
//   type    u16 LE  FrameType
//   length  u32 LE  payload byte count
//   crc32   u32 LE  CRC-32 (IEEE) of the payload bytes
//   payload length bytes
//
// The 16-byte header is fixed (version currently 3); everything that can go
// wrong -- truncated frames, garbage magic, future versions, absurd
// lengths, corrupt payloads -- is detected HERE, before any payload byte is
// interpreted, and surfaces as a typed DecodeError the session turns into
// an ERROR frame.  The decoder is incremental (feed() arbitrary byte
// slices) and never throws on wire data: a daemon must not be crashable by
// anything a client sends.
//
// Payload encodings are little-endian and length-prefixed throughout; the
// SUBMIT payload carries either a packed binary measurement block (the hot
// path -- decoding is a bounds-checked memcpy, never a JSON parse) or a
// JSON measurement archive (compatibility with `catalyst collect` output).
//
// Version history: v1 shipped frame types 1-12 (handshake, submit/poll/
// cancel, results).  v2 adds live telemetry -- a client trace id in SUBMIT
// (echoed in RESULT), STATS/STATS_OK metrics scraping, and TRACE/TRACE_OK
// per-request trace fetch.  v3 adds the collection-mode byte to SUBMIT
// (counting / sampling / strobed, vpapi/sampling.hpp) so the daemon can
// record how a submission's measurements were collected.  The version is a
// strict equality check at the header stage; every codec in this
// repository compiles against one kVersion, so mixed-version peers fail
// fast with bad_version instead of misparsing each other.
#pragma once

#include <cstdint>
#include <deque>
#include <optional>
#include <stdexcept>
#include <string>
#include <vector>

namespace catalyst::service::wire {

inline constexpr std::uint32_t kMagic = 0x4C544143u;  // "CATL" little-endian.
inline constexpr std::uint16_t kVersion = 3;
inline constexpr std::size_t kHeaderBytes = 16;

/// Hard ceiling on a frame payload.  Anything larger is load-shed at the
/// header stage -- the decoder refuses to even buffer the payload, so a
/// hostile length field cannot make the daemon allocate.
inline constexpr std::uint32_t kMaxPayloadBytes = 64u * 1024u * 1024u;

enum class FrameType : std::uint16_t {
  hello = 1,        ///< client -> server: protocol + client name.
  hello_ok = 2,     ///< server -> client: accepted; server banner.
  submit = 3,       ///< client -> server: one analysis request.
  accepted = 4,     ///< server -> client: request id assigned.
  poll = 5,         ///< client -> server: ask about a request id.
  pending = 6,      ///< server -> client: still queued / analyzing.
  result = 7,       ///< server -> client: rendered analysis report.
  error = 8,        ///< server -> client: typed failure.
  cancel = 9,       ///< client -> server: abandon a request id.
  cancelled = 10,   ///< server -> client: cancellation acknowledged.
  retry_after = 11, ///< server -> client: queue full, back off.
  bye = 12,         ///< either direction: orderly goodbye.
  stats = 13,       ///< client -> server: scrape the live metrics (v2).
  stats_ok = 14,    ///< server -> client: metrics exposition JSON (v2).
  trace = 15,       ///< client -> server: fetch one request's trace (v2).
  trace_ok = 16,    ///< server -> client: Chrome trace fragment JSON (v2).
};

/// Everything that can be wrong with a request, as seen on the wire.
/// Stable numeric values -- they are the protocol, not an implementation
/// detail.
enum class ErrorCode : std::uint16_t {
  malformed_frame = 1,   ///< Bad magic / garbage header.
  bad_version = 2,       ///< Frame version != kVersion.
  bad_crc = 3,           ///< Payload checksum mismatch.
  oversized_frame = 4,   ///< Length field beyond the payload ceiling.
  quota_exceeded = 5,    ///< Per-session byte / inflight quota hit.
  bad_state = 6,         ///< Frame type illegal in the session's state.
  bad_request = 7,       ///< Payload decoded but is semantically invalid.
  unknown_request = 8,   ///< POLL/CANCEL for an id this session never got.
  deadline_exceeded = 9, ///< Request or session deadline passed.
  cancelled = 10,        ///< Request was cancelled before completing.
  analysis_failed = 11,  ///< The pipeline itself rejected the data.
  shutting_down = 12,    ///< Daemon is draining; resubmit elsewhere/later.
};

const char* to_string(FrameType type) noexcept;
const char* to_string(ErrorCode code) noexcept;

/// CRC-32 (IEEE 802.3, reflected, init/xorout 0xFFFFFFFF).  crc32 of
/// "123456789" is 0xCBF43926 -- the standard check value, asserted in
/// tests.
std::uint32_t crc32(const void* data, std::size_t size) noexcept;

struct Frame {
  FrameType type = FrameType::error;
  std::string payload;
};

/// Serializes one frame (header + payload), ready to write to the socket.
std::string encode_frame(FrameType type, const std::string& payload);

/// Why the decoder gave up on a connection.  After an error the decoder is
/// poisoned: the byte stream has lost framing, so the only safe move is to
/// report and close (resynchronising on attacker-controlled bytes is how
/// parsers get confused).
struct DecodeError {
  ErrorCode code = ErrorCode::malformed_frame;
  std::string message;  ///< Bounded; safe to echo into an ERROR frame.
};

/// Incremental frame parser.  feed() buffers bytes and surfaces complete
/// frames via next(); any malformation sets error() and discards the rest.
class FrameDecoder {
 public:
  /// `max_payload` lets a session impose a quota tighter than the protocol
  /// ceiling (it is clamped to kMaxPayloadBytes).
  explicit FrameDecoder(std::uint32_t max_payload = kMaxPayloadBytes);

  /// Consumes a byte slice.  Safe to call after an error (bytes are
  /// dropped).
  void feed(const char* data, std::size_t size);

  /// Pops the next complete frame, if any.
  std::optional<Frame> next();

  /// Set once the stream is unrecoverable; sticky.
  const std::optional<DecodeError>& error() const noexcept { return error_; }

  /// True while a frame is partially buffered (header or payload): the
  /// slow-loris detector asks this to distinguish "idle between frames"
  /// from "dribbling a frame byte by byte".
  bool mid_frame() const noexcept { return !buffer_.empty(); }

  /// Bytes consumed over the decoder's lifetime (session byte quotas).
  std::uint64_t bytes_consumed() const noexcept { return bytes_consumed_; }

 private:
  void fail(ErrorCode code, std::string message);

  std::uint32_t max_payload_;
  std::string buffer_;
  std::deque<Frame> ready_;
  std::optional<DecodeError> error_;
  std::uint64_t bytes_consumed_ = 0;
};

// --- payload codecs ---------------------------------------------------------
// Append/read little-endian scalars and length-prefixed strings.  The `Get`
// cursor is bounds-checked: running off the end throws PayloadError, which
// the session maps to ErrorCode::bad_request (the frame itself was sound;
// its contents were not).

class PayloadError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

void put_u8(std::string& out, std::uint8_t v);
void put_u16(std::string& out, std::uint16_t v);
void put_u32(std::string& out, std::uint32_t v);
void put_u64(std::string& out, std::uint64_t v);
void put_f64(std::string& out, double v);
void put_string(std::string& out, const std::string& s);  ///< u32 len + bytes.

class Get {
 public:
  explicit Get(const std::string& payload) : data_(payload) {}
  std::uint8_t u8();
  std::uint16_t u16();
  std::uint32_t u32();
  std::uint64_t u64();
  double f64();
  /// Reads n doubles in one bounds check (a bulk memcpy on little-endian
  /// hosts) -- the packed-SUBMIT hot path.
  void f64_block(double* out, std::size_t n);
  std::string string(std::size_t max_len = kMaxPayloadBytes);
  bool done() const noexcept { return pos_ == data_.size(); }
  /// Throws PayloadError unless every byte was consumed (trailing garbage
  /// in a payload is a malformation, not padding).
  void expect_done() const;

 private:
  const std::string& data_;
  std::size_t pos_ = 0;
};

// --- request payloads -------------------------------------------------------

/// How the measurements of a SUBMIT are encoded.
enum class SubmitKind : std::uint8_t {
  packed = 0,  ///< Binary block; decoding is bounds-checked memcpy.
  json = 1,    ///< A catalyst-measurements-v{1,2} archive.
};

/// A decoded SUBMIT.  `category` names a catalog entry (the server resolves
/// benchmark basis, signatures, and default thresholds from it -- clients
/// never ship a basis, so a request cannot smuggle an inconsistent one).
struct SubmitBody {
  SubmitKind kind = SubmitKind::packed;
  std::string category;
  std::uint64_t deadline_ns = 0;  ///< 0 = server default analysis timeout.
  /// Client-chosen trace id (0 = untraced).  Stamped onto every span the
  /// request touches server-side and echoed in the RESULT frame, so the
  /// whole request can be fetched later with TRACE.
  std::uint64_t trace_id = 0;
  /// How the submitted measurements were collected (v3): a
  /// vpapi::CollectionMode value (0 counting, 1 sampling, 2 strobed).
  /// Values above 2 are rejected at decode as bad_request.
  std::uint8_t collection_mode = 0;
  // kind == json:
  std::string archive_json;
  // kind == packed: measurements[e][r][k] flattened row-major.
  std::vector<std::string> event_names;
  std::uint32_t repetitions = 0;
  std::uint32_t slots = 0;
  std::vector<double> values;
};

std::string encode_submit(const SubmitBody& body);
/// Throws PayloadError on any inconsistency (lengths, counts, overflow).
SubmitBody decode_submit(const std::string& payload);

/// ERROR payload: request id (0 = session-scoped), code, bounded message.
struct ErrorBody {
  std::uint64_t request_id = 0;
  ErrorCode code = ErrorCode::malformed_frame;
  std::string message;
};
std::string encode_error(const ErrorBody& body);
ErrorBody decode_error(const std::string& payload);

/// Hard ceiling on an outgoing ERROR message -- the bounded-excerpt rule of
/// core::ArchiveError applied at the wire: no failure may echo a multi-GB
/// submission back at its sender.
inline constexpr std::size_t kMaxErrorMessageBytes = 512;

}  // namespace catalyst::service::wire
