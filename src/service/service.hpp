// catalyst/service -- umbrella header.
#pragma once

#include "service/catalog.hpp"     // IWYU pragma: export
#include "service/engine.hpp"      // IWYU pragma: export
#include "service/io.hpp"          // IWYU pragma: export
#include "service/server.hpp"      // IWYU pragma: export
#include "service/servicecore.hpp" // IWYU pragma: export
#include "service/session.hpp"     // IWYU pragma: export
#include "service/wire.hpp"        // IWYU pragma: export
