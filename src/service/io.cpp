#include "service/io.hpp"

#include <cerrno>
#include <cstring>
#include <stdexcept>

#include <fcntl.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

namespace catalyst::service::io {

namespace {

[[noreturn]] void throw_errno(const std::string& what) {
  throw std::runtime_error(what + ": " + std::strerror(errno));
}

sockaddr_un make_addr(const std::string& path) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (path.size() >= sizeof(addr.sun_path)) {
    throw std::runtime_error("socket path too long: " + path);
  }
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  return addr;
}

}  // namespace

void set_nonblocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0 || ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) < 0) {
    throw_errno("fcntl(O_NONBLOCK)");
  }
}

void close_fd(int fd) noexcept {
  if (fd >= 0) ::close(fd);
}

int listen_unix(const std::string& path, int backlog) {
  const int fd = ::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd < 0) throw_errno("socket(AF_UNIX)");
  ::unlink(path.c_str());  // Stale socket file from a previous daemon.
  const sockaddr_un addr = make_addr(path);
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    const int saved = errno;
    ::close(fd);
    errno = saved;
    throw_errno("bind(" + path + ")");
  }
  if (::listen(fd, backlog) != 0) {
    const int saved = errno;
    ::close(fd);
    errno = saved;
    throw_errno("listen(" + path + ")");
  }
  set_nonblocking(fd);
  return fd;
}

int accept_client(int listen_fd) {
  for (;;) {
    const int fd = ::accept(listen_fd, nullptr, nullptr);
    if (fd >= 0) {
      set_nonblocking(fd);
      const int flags = ::fcntl(fd, F_GETFD, 0);
      if (flags >= 0) ::fcntl(fd, F_SETFD, flags | FD_CLOEXEC);
      return fd;
    }
    if (errno == EINTR) continue;
    return -1;  // EAGAIN or a transient per-connection failure: no client.
  }
}

int connect_unix(const std::string& path) {
  const int fd = ::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd < 0) throw_errno("socket(AF_UNIX)");
  const sockaddr_un addr = make_addr(path);
  for (;;) {
    if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                  sizeof(addr)) == 0) {
      return fd;
    }
    if (errno == EINTR) continue;
    const int saved = errno;
    ::close(fd);
    errno = saved;
    throw_errno("connect(" + path + ")");
  }
}

IoResult read_some(int fd, char* buf, std::size_t size) {
  for (;;) {
    const ssize_t n = ::read(fd, buf, size);
    if (n > 0) return {IoResult::Kind::ok, static_cast<std::size_t>(n), 0};
    if (n == 0) return {IoResult::Kind::eof, 0, 0};
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      return {IoResult::Kind::would_block, 0, 0};
    }
    return {IoResult::Kind::error, 0, errno};
  }
}

IoResult write_some(int fd, const char* data, std::size_t size) {
  for (;;) {
    // MSG_NOSIGNAL: a peer that closed mid-write must produce EPIPE, not a
    // process-killing SIGPIPE -- a daemon dies for no client's sake.
    const ssize_t n = ::send(fd, data, size, MSG_NOSIGNAL);
    if (n >= 0) return {IoResult::Kind::ok, static_cast<std::size_t>(n), 0};
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      return {IoResult::Kind::would_block, 0, 0};
    }
    return {IoResult::Kind::error, 0, errno};
  }
}

Pipe make_pipe() {
  int fds[2];
  if (::pipe(fds) != 0) throw_errno("pipe");
  set_nonblocking(fds[0]);
  set_nonblocking(fds[1]);
  return {fds[0], fds[1]};
}

void notify_pipe(int write_end) noexcept {
  const char byte = 1;
  // Failure modes (full pipe = wakeup already pending, closed = shutting
  // down) are all benign; a signal handler cannot do anything about them.
  [[maybe_unused]] const ssize_t n = ::write(write_end, &byte, 1);
}

void drain_pipe(int read_end) noexcept {
  char buf[64];
  while (::read(read_end, buf, sizeof(buf)) > 0) {
  }
}

int poll_fds(std::vector<PollItem>& items, int timeout_ms) {
  std::vector<pollfd> fds;
  fds.reserve(items.size());
  for (const PollItem& item : items) {
    pollfd p{};
    p.fd = item.fd;
    p.events = static_cast<short>((item.want_read ? POLLIN : 0) |
                                  (item.want_write ? POLLOUT : 0));
    fds.push_back(p);
  }
  const int ready = ::poll(fds.data(), fds.size(), timeout_ms);
  if (ready <= 0) {
    for (PollItem& item : items) {
      item.readable = item.writable = item.broken = false;
    }
    return 0;  // Timeout or EINTR: nothing ready, caller loops.
  }
  for (std::size_t i = 0; i < items.size(); ++i) {
    items[i].readable = (fds[i].revents & POLLIN) != 0;
    items[i].writable = (fds[i].revents & POLLOUT) != 0;
    items[i].broken =
        (fds[i].revents & (POLLHUP | POLLERR | POLLNVAL)) != 0;
  }
  return ready;
}

}  // namespace catalyst::service::io
