// catalyst/sync -- umbrella header for the annotated concurrency layer.
//
// One include gives a translation unit the whole lock discipline:
//   * sync/annotations.hpp  Clang thread-safety capability macros
//                           (CATALYST_GUARDED_BY, CATALYST_REQUIRES, ...)
//   * sync/mutex.hpp        Mutex / SharedMutex / CondVar / guards
//   * sync/lock_order.hpp   runtime acquisition-order validator
//
// See DESIGN.md "Concurrency correctness" for the capability model and the
// lock-order graph, and TESTING.md for the lint rules that fence raw std
// primitives out of the rest of the tree.
#pragma once

#include "sync/annotations.hpp"
#include "sync/lock_order.hpp"
#include "sync/mutex.hpp"
