#include "sync/lock_order.hpp"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <mutex>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

namespace catalyst::sync::order {

namespace {

bool enabled_from_env() noexcept {
  const char* env = std::getenv("CATALYST_LOCK_ORDER");
  if (env == nullptr) return false;
  return std::strcmp(env, "1") == 0 || std::strcmp(env, "on") == 0 ||
         std::strcmp(env, "true") == 0;
}

std::atomic<bool>& enabled_slot() noexcept {
  static std::atomic<bool> on{enabled_from_env()};
  return on;
}

/// One lock the calling thread currently holds.  The name pointer is the
/// Mutex's construction-site label (a string literal in practice); the
/// address disambiguates instances on release.
struct Held {
  const void* mtx;
  const char* name;
};

std::vector<Held>& held_stack() noexcept {
  thread_local std::vector<Held> stack;
  return stack;
}

/// A directed order edge `from -> to`, plus the held stack that first
/// established it -- the "other side" printed when an inversion aborts.
struct Edge {
  std::vector<std::string> held_when_recorded;
};

struct Graph {
  std::mutex mutex;
  /// edges[from][to]: `from` has been held while acquiring `to`.
  std::unordered_map<std::string, std::unordered_map<std::string, Edge>>
      edges;
};

/// Leaky singleton: locks may still be taken during static destruction
/// (process-wide registries), so the graph must outlive every other static.
Graph& graph() noexcept {
  static Graph* g = new Graph;
  return *g;
}

void print_stack(const char* label, const std::vector<std::string>& names) {
  std::fprintf(stderr, "  %s (bottom -> top):", label);
  if (names.empty()) std::fprintf(stderr, " <none>");
  for (const std::string& n : names) std::fprintf(stderr, " \"%s\"", n.c_str());
  std::fputc('\n', stderr);
}

std::vector<std::string> snapshot_held() {
  std::vector<std::string> out;
  out.reserve(held_stack().size());
  for (const Held& h : held_stack()) out.emplace_back(h.name);
  return out;
}

/// Finds a path `from ~> goal` in the edge graph; on success fills `path`
/// with the node sequence (from .. goal) and returns true.  Called with
/// graph().mutex held.
bool find_path(const Graph& g, const std::string& from,
               const std::string& goal, std::vector<std::string>& path) {
  std::unordered_map<std::string, std::string> parent;
  std::unordered_set<std::string> visited{from};
  std::vector<std::string> frontier{from};
  while (!frontier.empty()) {
    const std::string node = frontier.back();
    frontier.pop_back();
    if (node == goal) {
      path.clear();
      for (std::string n = goal; !n.empty();) {
        path.insert(path.begin(), n);
        const auto it = parent.find(n);
        n = it != parent.end() ? it->second : std::string();
      }
      return true;
    }
    const auto it = g.edges.find(node);
    if (it == g.edges.end()) continue;
    for (const auto& [next, edge] : it->second) {
      (void)edge;
      if (visited.insert(next).second) {
        parent[next] = node;
        frontier.push_back(next);
      }
    }
  }
  return false;
}

[[noreturn]] void abort_inversion(const Graph& g, const char* acquiring,
                                  const std::vector<std::string>& path) {
  std::fprintf(stderr,
               "catalyst sync: lock-order inversion detected while acquiring "
               "\"%s\"\n",
               acquiring);
  print_stack("currently held", snapshot_held());
  std::fprintf(stderr, "  conflicting established order:");
  for (std::size_t i = 0; i < path.size(); ++i) {
    std::fprintf(stderr, "%s\"%s\"", i == 0 ? " " : " -> ", path[i].c_str());
  }
  std::fputc('\n', stderr);
  // The stack that first ordered `acquiring` before the rest of the path.
  if (path.size() >= 2) {
    const auto from_it = g.edges.find(path[0]);
    if (from_it != g.edges.end()) {
      const auto edge_it = from_it->second.find(path[1]);
      if (edge_it != from_it->second.end()) {
        print_stack("held when that order was first recorded",
                    edge_it->second.held_when_recorded);
      }
    }
  }
  std::fprintf(stderr,
               "  the same locks have been taken in both orders; this is a "
               "latent deadlock\n");
  std::abort();
}

}  // namespace

bool enabled() noexcept {
  return enabled_slot().load(std::memory_order_relaxed);
}

void set_enabled(bool on) noexcept {
  enabled_slot().store(on, std::memory_order_relaxed);
}

void on_acquire(const void* mtx, const char* name) noexcept {
  if (!enabled()) return;
  Graph& g = graph();
  {
    const std::lock_guard<std::mutex> lock(g.mutex);
    const std::string acquiring(name);
    // An inversion exists iff the graph already orders `acquiring` before
    // (transitively) some lock we currently hold.
    for (const Held& h : held_stack()) {
      if (acquiring == h.name) continue;  // self-edge: see header comment
      std::vector<std::string> path;
      if (find_path(g, acquiring, h.name, path)) {
        abort_inversion(g, name, path);
      }
    }
    // Record held -> acquiring for every currently held lock (not just the
    // top: release order is not required to be LIFO, so every pair is an
    // ordering commitment).
    for (const Held& h : held_stack()) {
      if (acquiring == h.name) continue;
      auto& out = g.edges[h.name];
      if (out.find(acquiring) == out.end()) {
        out.emplace(acquiring, Edge{snapshot_held()});
      }
    }
  }
  held_stack().push_back({mtx, name});
}

void on_try_acquire(const void* mtx, const char* name) noexcept {
  if (!enabled()) return;
  held_stack().push_back({mtx, name});
}

void on_release(const void* mtx) noexcept {
  // Runs regardless of enabled(): a lock acquired while the validator was
  // on must drop off the stack even if validation was toggled off since.
  std::vector<Held>& stack = held_stack();
  for (std::size_t i = stack.size(); i-- > 0;) {
    if (stack[i].mtx == mtx) {
      stack.erase(stack.begin() + static_cast<std::ptrdiff_t>(i));
      return;
    }
  }
}

std::size_t this_thread_held() noexcept { return held_stack().size(); }

void reset() noexcept {
  Graph& g = graph();
  const std::lock_guard<std::mutex> lock(g.mutex);
  g.edges.clear();
  held_stack().clear();
}

}  // namespace catalyst::sync::order
