// catalyst/sync -- annotated synchronization primitives.
//
// Thin wrappers over the std primitives carrying Clang thread-safety
// capability annotations (sync/annotations.hpp) and, when compiled in,
// runtime lock-order validation hooks (sync/lock_order.hpp).  These are the
// ONLY lock types allowed outside src/sync/ -- catalyst-lint's
// raw-sync-primitive rule fences raw std::mutex & friends -- so every lock
// in the tree is simultaneously:
//
//   * statically checked: fields tagged CATALYST_GUARDED_BY(mutex_) cannot
//     be touched without the lock under `check.sh thread_safety`;
//   * dynamically checked: acquisition order feeds the lock-order graph,
//     and an ABBA inversion aborts with both held-lock stacks.
//
// Naming: give process-wide or long-lived mutexes a construction-site label
// ("obs.metrics", "core.campaign.checkpoint_dirs"); the validator keys its
// order graph by that label, so the name IS the lock's identity in deadlock
// reports.  Short-lived per-call locks (merge accumulators) get one too --
// instances share a graph node, which is exactly right for order analysis.
//
// The validated and unchecked variants live in distinct inline namespaces
// (the obs noop/live split): a binary mixing CATALYST_SYNC_DISABLE_VALIDATOR
// translation units with regular ones never ODR-collides.  Both variants
// have identical layout (std lock + name pointer).
#pragma once

#include <chrono>
#include <condition_variable>
#include <mutex>
#include <shared_mutex>

#include "sync/annotations.hpp"
#include "sync/lock_order.hpp"

namespace catalyst::sync {

#if defined(CATALYST_SYNC_DISABLE_VALIDATOR)
inline namespace unchecked {

namespace detail {
inline void hook_acquire(const void*, const char*) noexcept {}
inline void hook_try_acquire(const void*, const char*) noexcept {}
inline void hook_release(const void*) noexcept {}
}  // namespace detail

#else
inline namespace checked {

namespace detail {
inline void hook_acquire(const void* m, const char* name) noexcept {
  order::on_acquire(m, name);
}
inline void hook_try_acquire(const void* m, const char* name) noexcept {
  order::on_try_acquire(m, name);
}
inline void hook_release(const void* m) noexcept { order::on_release(m); }
}  // namespace detail

#endif  // CATALYST_SYNC_DISABLE_VALIDATOR

/// Annotated exclusive mutex.  Non-recursive, non-copyable.
class CATALYST_CAPABILITY("mutex") Mutex {
 public:
  Mutex() noexcept = default;
  explicit Mutex(const char* name) noexcept : name_(name) {}
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() CATALYST_ACQUIRE() {
    // Order validation runs BEFORE blocking: the inversion must be reported
    // by the thread about to deadlock, not discovered post-mortem.
    detail::hook_acquire(this, name_);
    m_.lock();
  }
  void unlock() CATALYST_RELEASE() {
    m_.unlock();
    detail::hook_release(this);
  }
  bool try_lock() CATALYST_TRY_ACQUIRE(true) {
    if (!m_.try_lock()) return false;
    detail::hook_try_acquire(this, name_);
    return true;
  }

  const char* name() const noexcept { return name_; }

 private:
  std::mutex m_;
  const char* name_ = "sync.Mutex";
};

/// Annotated reader/writer mutex.  The validator treats shared and
/// exclusive acquisition identically for ordering purposes: a reader
/// participating in an ABBA cycle deadlocks just as surely.
class CATALYST_CAPABILITY("shared_mutex") SharedMutex {
 public:
  SharedMutex() noexcept = default;
  explicit SharedMutex(const char* name) noexcept : name_(name) {}
  SharedMutex(const SharedMutex&) = delete;
  SharedMutex& operator=(const SharedMutex&) = delete;

  void lock() CATALYST_ACQUIRE() {
    detail::hook_acquire(this, name_);
    m_.lock();
  }
  void unlock() CATALYST_RELEASE() {
    m_.unlock();
    detail::hook_release(this);
  }
  void lock_shared() CATALYST_ACQUIRE_SHARED() {
    detail::hook_acquire(this, name_);
    m_.lock_shared();
  }
  void unlock_shared() CATALYST_RELEASE_SHARED() {
    m_.unlock_shared();
    detail::hook_release(this);
  }

  const char* name() const noexcept { return name_; }

 private:
  std::shared_mutex m_;
  const char* name_ = "sync.SharedMutex";
};

/// RAII exclusive guard (std::lock_guard shape).
class CATALYST_SCOPED_CAPABILITY LockGuard {
 public:
  explicit LockGuard(Mutex& m) CATALYST_ACQUIRE(m) : m_(m) { m_.lock(); }
  ~LockGuard() CATALYST_RELEASE() { m_.unlock(); }
  LockGuard(const LockGuard&) = delete;
  LockGuard& operator=(const LockGuard&) = delete;

 private:
  Mutex& m_;
};

/// RAII exclusive guard over a SharedMutex (the writer side).
class CATALYST_SCOPED_CAPABILITY WriteLockGuard {
 public:
  explicit WriteLockGuard(SharedMutex& m) CATALYST_ACQUIRE(m) : m_(m) {
    m_.lock();
  }
  ~WriteLockGuard() CATALYST_RELEASE() { m_.unlock(); }
  WriteLockGuard(const WriteLockGuard&) = delete;
  WriteLockGuard& operator=(const WriteLockGuard&) = delete;

 private:
  SharedMutex& m_;
};

/// RAII shared guard over a SharedMutex (the reader side).
class CATALYST_SCOPED_CAPABILITY ReadLockGuard {
 public:
  explicit ReadLockGuard(SharedMutex& m) CATALYST_ACQUIRE_SHARED(m) : m_(m) {
    m_.lock_shared();
  }
  ~ReadLockGuard() CATALYST_RELEASE_GENERIC() { m_.unlock_shared(); }
  ReadLockGuard(const ReadLockGuard&) = delete;
  ReadLockGuard& operator=(const ReadLockGuard&) = delete;

 private:
  SharedMutex& m_;
};

/// Relockable scoped guard (std::unique_lock shape); the lock type CondVar
/// waits on.  Unlike LockGuard it may be released and reacquired mid-scope.
class CATALYST_SCOPED_CAPABILITY UniqueLock {
 public:
  explicit UniqueLock(Mutex& m) CATALYST_ACQUIRE(m) : m_(&m), owns_(true) {
    m_->lock();
  }
  UniqueLock(Mutex& m, std::defer_lock_t) CATALYST_EXCLUDES(m)
      : m_(&m), owns_(false) {}
  ~UniqueLock() CATALYST_RELEASE() {
    if (owns_) m_->unlock();
  }
  UniqueLock(const UniqueLock&) = delete;
  UniqueLock& operator=(const UniqueLock&) = delete;

  void lock() CATALYST_ACQUIRE() {
    m_->lock();
    owns_ = true;
  }
  void unlock() CATALYST_RELEASE() {
    owns_ = false;
    m_->unlock();
  }
  bool owns_lock() const noexcept { return owns_; }
  Mutex* mutex() const noexcept { return m_; }

 private:
  Mutex* m_;
  bool owns_;
};

/// Condition variable over sync::Mutex (via UniqueLock).
///
/// Thread-safety analysis cannot model a wait's release-and-reacquire, so
/// wait() carries no capability annotation; the UniqueLock parameter makes
/// the holding requirement structural instead.  The lock-order validator
/// stays exact through waits: the wait releases through UniqueLock::unlock
/// (popping the held stack) and reacquires through UniqueLock::lock.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  void notify_one() noexcept { cv_.notify_one(); }
  void notify_all() noexcept { cv_.notify_all(); }

  /// Caller must hold `lock` (it is released while blocked, reacquired
  /// before return).  Use the predicate overload: bare waits wake
  /// spuriously.
  void wait(UniqueLock& lock) { cv_.wait(lock); }
  template <typename Pred>
  void wait(UniqueLock& lock, Pred pred) {
    cv_.wait(lock, pred);
  }
  template <typename Rep, typename Period>
  std::cv_status wait_for(UniqueLock& lock,
                          const std::chrono::duration<Rep, Period>& d) {
    return cv_.wait_for(lock, d);
  }
  template <typename Rep, typename Period, typename Pred>
  bool wait_for(UniqueLock& lock, const std::chrono::duration<Rep, Period>& d,
                Pred pred) {
    return cv_.wait_for(lock, d, pred);
  }

 private:
  std::condition_variable_any cv_;
};

}  // inline namespace (checked / unchecked)

}  // namespace catalyst::sync
