// catalyst/sync -- Clang thread-safety-analysis attribute macros.
//
// These wrap the Clang `-Wthread-safety` capability attributes so lock
// discipline is checked at COMPILE TIME: a field tagged CATALYST_GUARDED_BY
// can only be touched while its mutex is held, a function tagged
// CATALYST_REQUIRES can only be called with the lock already taken, and a
// forgotten unlock is a build error under `scripts/check.sh thread_safety`
// (clang + -Wthread-safety -Wthread-safety-beta, warnings as errors).
//
// On compilers without the attributes (gcc, msvc) every macro expands to
// nothing, so annotated code is plain C++ everywhere and analyzed C++ under
// clang.  Defining CATALYST_SYNC_NO_ANNOTATIONS forces the empty expansion
// even under clang (used by tests to prove annotated and unannotated builds
// behave identically).
//
// Naming follows the Clang documentation's mutex.h reference sheet; only
// the spellings this codebase uses are provided.  The annotated wrapper
// types live in sync/mutex.hpp; catalyst-lint's raw-sync-primitive rule
// keeps raw std::mutex & friends from bypassing them.
#pragma once

#if defined(__clang__) && !defined(CATALYST_SYNC_NO_ANNOTATIONS)
#define CATALYST_TSA(x) __attribute__((x))
#else
#define CATALYST_TSA(x)  // not clang (or annotations forced off): plain C++
#endif

/// Marks a class as a lockable capability ("mutex", "shared_mutex", ...).
#define CATALYST_CAPABILITY(x) CATALYST_TSA(capability(x))

/// Marks an RAII class whose constructor acquires and destructor releases.
#define CATALYST_SCOPED_CAPABILITY CATALYST_TSA(scoped_lockable)

/// Field may only be read/written while holding `x`.
#define CATALYST_GUARDED_BY(x) CATALYST_TSA(guarded_by(x))

/// Pointer field: the pointee may only be touched while holding `x`.
#define CATALYST_PT_GUARDED_BY(x) CATALYST_TSA(pt_guarded_by(x))

/// Function requires the listed capabilities held on entry (and exit).
#define CATALYST_REQUIRES(...) CATALYST_TSA(requires_capability(__VA_ARGS__))
#define CATALYST_REQUIRES_SHARED(...) \
  CATALYST_TSA(requires_shared_capability(__VA_ARGS__))

/// Function acquires the capability and holds it past return.
#define CATALYST_ACQUIRE(...) CATALYST_TSA(acquire_capability(__VA_ARGS__))
#define CATALYST_ACQUIRE_SHARED(...) \
  CATALYST_TSA(acquire_shared_capability(__VA_ARGS__))

/// Function releases the capability (held on entry, released on return).
#define CATALYST_RELEASE(...) CATALYST_TSA(release_capability(__VA_ARGS__))
#define CATALYST_RELEASE_SHARED(...) \
  CATALYST_TSA(release_shared_capability(__VA_ARGS__))
/// Releases a capability acquired either exclusively or shared (scoped
/// guards whose destructor must match both modes).
#define CATALYST_RELEASE_GENERIC(...) \
  CATALYST_TSA(release_generic_capability(__VA_ARGS__))

/// Function acquires the capability only when returning `b`.
#define CATALYST_TRY_ACQUIRE(b, ...) \
  CATALYST_TSA(try_acquire_capability(b, __VA_ARGS__))

/// Caller must NOT hold the listed capabilities (deadlock prevention for
/// non-reentrant locks).
#define CATALYST_EXCLUDES(...) CATALYST_TSA(locks_excluded(__VA_ARGS__))

/// Declares a static acquisition order between two capability members.
#define CATALYST_ACQUIRED_BEFORE(...) \
  CATALYST_TSA(acquired_before(__VA_ARGS__))
#define CATALYST_ACQUIRED_AFTER(...) CATALYST_TSA(acquired_after(__VA_ARGS__))

/// Function returns a reference to the capability guarding its result.
#define CATALYST_RETURN_CAPABILITY(x) CATALYST_TSA(lock_returned(x))

/// Asserts (runtime-trusted) that the capability is held at this point.
#define CATALYST_ASSERT_CAPABILITY(x) CATALYST_TSA(assert_capability(x))

/// Escape hatch: body is not analyzed.  Used sparingly -- death-test
/// helpers that deliberately abort mid-hold, and nothing else.
#define CATALYST_NO_THREAD_SAFETY_ANALYSIS \
  CATALYST_TSA(no_thread_safety_analysis)
