// catalyst/sync -- runtime lock-order validator.
//
// The Clang annotations (sync/annotations.hpp) prove WHO must hold a lock;
// they cannot prove locks are always taken in a consistent ORDER across
// call chains, which is the deadlock class a long-running `catalystd`
// worker pool actually dies of.  This validator checks that dynamically:
//
//   * each thread keeps a stack of the locks it currently holds;
//   * every acquisition records directed edges  held-lock -> new-lock  in a
//     process-wide acquisition-order graph, keyed by the mutex's NAME (the
//     site label passed at construction), together with a snapshot of the
//     held stack that first established the edge;
//   * if acquiring L while a path L ~> H exists for some held lock H, the
//     program has taken the two locks in both orders -- a latent deadlock
//     -- and the validator aborts, printing BOTH held-lock stacks: the one
//     recorded when the opposite order was first seen, and the current one.
//
// Cost model (same shape as catalyst::obs):
//   * compiled out (CATALYST_SYNC_DISABLE_VALIDATOR): sync::Mutex never
//     calls these hooks; the validator is zero-cost and this header is
//     declarations only;
//   * compiled in, disabled (default): one relaxed atomic load per lock;
//   * enabled (CATALYST_LOCK_ORDER=1 or set_enabled(true)): a thread-local
//     stack push plus a global-graph update under an internal mutex --
//     debug-build tooling, not a production hot path.
//
// Keying by name means two instances sharing a construction site are one
// graph node: an inconsistent order between two *instances* of the same
// class is reported too.  Self-edges (nested acquisition of two same-named
// locks) are skipped rather than reported, so recursive structures do not
// false-positive; give such locks distinct names if their order matters.
#pragma once

#include <cstddef>

namespace catalyst::sync::order {

/// Runtime switch.  Initialized from the CATALYST_LOCK_ORDER environment
/// variable ("1"/"on"/"true"); tests flip it explicitly.
bool enabled() noexcept;
void set_enabled(bool on) noexcept;

/// Called by sync::Mutex/SharedMutex before blocking on an acquisition:
/// records order edges, checks for an inversion (abort on detection), and
/// pushes the lock onto this thread's held stack.
void on_acquire(const void* mtx, const char* name) noexcept;

/// Called after a successful try_lock: pushes the hold WITHOUT recording
/// order edges or checking for inversions -- a try-lock cannot deadlock, so
/// opportunistic acquisition patterns stay legal.
void on_try_acquire(const void* mtx, const char* name) noexcept;

/// Called on release: drops the lock from this thread's held stack (no-op
/// if it was never pushed, e.g. acquired while the validator was disabled).
void on_release(const void* mtx) noexcept;

/// Number of locks the calling thread currently holds (validator's view).
std::size_t this_thread_held() noexcept;

/// Forgets the acquisition-order graph and the calling thread's held stack
/// (tests only; other threads' stacks are thread-local and unreachable).
void reset() noexcept;

}  // namespace catalyst::sync::order
