// catalyst/cachesim -- umbrella header for the cache hierarchy simulator.
#pragma once

#include "cachesim/cache.hpp"         // IWYU pragma: export
#include "cachesim/config.hpp"        // IWYU pragma: export
#include "cachesim/pointer_chase.hpp" // IWYU pragma: export
#include "cachesim/tlb.hpp"           // IWYU pragma: export
