// catalyst/cachesim -- cache hierarchy configuration.
//
// The simulator stands in for the real Sapphire Rapids data caches that the
// paper's CAT pointer-chase benchmark exercises.  Only the properties the
// analysis depends on are modelled: capacities, line size, associativity and
// LRU replacement, which together determine where in the hierarchy a chase
// of a given footprint hits.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

namespace catalyst::cachesim {

/// Thrown for invalid cache geometry.
class ConfigError : public std::runtime_error {
 public:
  explicit ConfigError(const std::string& what) : std::runtime_error(what) {}
};

/// Hardware prefetch policy of a level.
enum class PrefetchPolicy {
  none,       ///< Demand fetches only.
  next_line,  ///< On a demand miss, also install the next sequential line.
};

/// Geometry of one cache level.
struct LevelConfig {
  std::string name;             ///< e.g. "L1D".
  std::uint64_t size_bytes = 0; ///< Total capacity.
  std::uint32_t line_bytes = 64;
  std::uint32_t associativity = 8;
  PrefetchPolicy prefetch = PrefetchPolicy::none;
  /// Lines fetched ahead per demand miss (next_line policy only).
  std::uint32_t prefetch_degree = 1;

  std::uint64_t num_sets() const {
    return size_bytes / (static_cast<std::uint64_t>(line_bytes) *
                         associativity);
  }

  /// Throws ConfigError unless sizes are positive powers of two and the
  /// geometry divides evenly.
  void validate() const;
};

/// An ordered list of levels, closest (L1) first.
struct HierarchyConfig {
  std::vector<LevelConfig> levels;

  void validate() const;

  /// Three-level geometry loosely modelled on a Sapphire Rapids core:
  /// 48 KiB/12-way L1D, 2 MiB/16-way L2, 8 MiB/16-way L3 slice; 64 B lines.
  /// (The real L3 is larger and shared; a per-core slice keeps simulation
  /// footprints small while preserving the L2 < footprint < L3 regime.)
  static HierarchyConfig saphira();

  /// A tiny geometry (256 B / 1 KiB / 4 KiB, 2-way) for fast unit tests.
  static HierarchyConfig tiny();
};

}  // namespace catalyst::cachesim
