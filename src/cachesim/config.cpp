#include "cachesim/config.hpp"

#include "core/contract.hpp"

namespace catalyst::cachesim {

namespace {

bool is_pow2(std::uint64_t v) { return v != 0 && (v & (v - 1)) == 0; }

}  // namespace

void LevelConfig::validate() const {
  CATALYST_REQUIRE_AS(size_bytes != 0 && line_bytes != 0 && associativity != 0,
                      ConfigError, name + ": zero-sized geometry field");
  CATALYST_REQUIRE_AS(is_pow2(line_bytes), ConfigError,
                      name + ": line size must be a power of two");
  const std::uint64_t way_bytes =
      static_cast<std::uint64_t>(line_bytes) * associativity;
  CATALYST_REQUIRE_AS(size_bytes % way_bytes == 0, ConfigError,
                      name + ": capacity not divisible by line*assoc");
  CATALYST_REQUIRE_AS(is_pow2(num_sets()), ConfigError,
                      name + ": number of sets must be a power of two");
}

void HierarchyConfig::validate() const {
  CATALYST_REQUIRE_AS(!levels.empty(), ConfigError, "hierarchy has no levels");
  for (const auto& l : levels) l.validate();
  for (std::size_t i = 1; i < levels.size(); ++i) {
    CATALYST_REQUIRE_AS(levels[i].size_bytes >= levels[i - 1].size_bytes,
                        ConfigError,
                        levels[i].name +
                            ": outer level smaller than inner level");
    CATALYST_REQUIRE_AS(levels[i].line_bytes == levels[0].line_bytes,
                        ConfigError,
                        levels[i].name +
                            ": mixed line sizes are not supported");
  }
}

HierarchyConfig HierarchyConfig::saphira() {
  HierarchyConfig h;
  h.levels = {
      LevelConfig{"L1D", 48u * 1024u, 64, 12},
      LevelConfig{"L2", 2u * 1024u * 1024u, 64, 16},
      LevelConfig{"L3", 8u * 1024u * 1024u, 64, 16},
  };
  return h;
}

HierarchyConfig HierarchyConfig::tiny() {
  HierarchyConfig h;
  h.levels = {
      LevelConfig{"L1D", 256, 32, 2},
      LevelConfig{"L2", 1024, 32, 2},
      LevelConfig{"L3", 4096, 32, 2},
  };
  return h;
}

}  // namespace catalyst::cachesim
