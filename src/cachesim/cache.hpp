// catalyst/cachesim -- set-associative LRU cache level and hierarchy.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "cachesim/config.hpp"

namespace catalyst::cachesim {

/// Demand-access statistics for one level.
struct LevelStats {
  std::uint64_t demand_hits = 0;
  std::uint64_t demand_misses = 0;
  std::uint64_t prefetches_issued = 0;  ///< Lines installed by prefetching.
  std::uint64_t accesses() const { return demand_hits + demand_misses; }
};

/// One set-associative cache level with true-LRU replacement.
///
/// Addresses are byte addresses; the level indexes by
/// (addr / line_bytes) % num_sets and tags by addr / line_bytes.
class CacheLevel {
 public:
  explicit CacheLevel(const LevelConfig& config);

  const LevelConfig& config() const noexcept { return config_; }
  const LevelStats& stats() const noexcept { return stats_; }

  /// Demand access.  Returns true on hit.  On miss the line is installed
  /// (allocate-on-miss), possibly evicting the LRU way.
  bool access(std::uint64_t addr);

  /// Probes without updating LRU or stats (for assertions in tests).
  bool contains(std::uint64_t addr) const;

  /// Installs a line without counting a demand access (used for fills
  /// initiated by an inner level's miss path and for prefetches).
  void install(std::uint64_t addr);

  /// Invalidates everything and zeroes statistics.
  void reset();

 private:
  struct Way {
    std::uint64_t tag = 0;
    std::uint64_t lru_stamp = 0;  // larger == more recently used
    bool valid = false;
  };

  std::uint64_t set_index(std::uint64_t line) const noexcept {
    return line & set_mask_;
  }

  Way* find(std::uint64_t line);
  const Way* find(std::uint64_t line) const;
  Way* victim(std::uint64_t line);

  LevelConfig config_;
  std::uint64_t set_mask_;
  std::uint32_t line_shift_;
  std::uint64_t clock_ = 0;
  std::vector<Way> ways_;  // num_sets * associativity, set-major
  LevelStats stats_;
};

/// A multi-level hierarchy with non-inclusive, allocate-everywhere fills:
/// a demand access probes L1, then L2, ... until it hits (or misses to
/// memory), installing the line into every level it missed in.
///
/// This matches the counting semantics of the events the paper analyzes:
/// MEM_LOAD_RETIRED:L1_HIT / L1_MISS, L2 demand hits, L3 hits -- each level
/// only sees the demand stream filtered by the levels above it.
class CacheHierarchy {
 public:
  explicit CacheHierarchy(const HierarchyConfig& config);

  std::size_t num_levels() const noexcept { return levels_.size(); }
  const CacheLevel& level(std::size_t i) const { return levels_.at(i); }

  /// Result of a demand access: index of the level that hit, or nullopt if
  /// the access missed all the way to memory.
  std::optional<std::size_t> access(std::uint64_t addr);

  /// Total demand accesses that missed every level (served by memory).
  std::uint64_t memory_accesses() const noexcept { return memory_accesses_; }

  void reset();

 private:
  std::vector<CacheLevel> levels_;
  std::uint64_t memory_accesses_ = 0;
};

}  // namespace catalyst::cachesim
