// catalyst/cachesim -- TLB hierarchy simulator.
//
// The paper's Section II names "events that measure TLB misses" as the
// archetypal all-zero column during FLOPs kernels; for the data-cache
// benchmark, large-footprint chases genuinely miss the TLBs.  This model
// provides the ground truth behind the Saphira DTLB events: a two-level
// translation hierarchy (L1 DTLB + unified STLB) with LRU replacement,
// reusing the set-associative machinery of CacheLevel with page-sized
// "lines".
#pragma once

#include <cstdint>
#include <optional>

#include "cachesim/cache.hpp"

namespace catalyst::cachesim {

/// Geometry of one TLB level.
struct TlbLevelConfig {
  std::string name;              ///< e.g. "DTLB".
  std::uint32_t entries = 64;
  std::uint32_t associativity = 4;
  std::uint32_t page_bytes = 4096;

  /// Equivalent cache geometry (page-sized lines).
  LevelConfig as_cache_config() const {
    return LevelConfig{name,
                       static_cast<std::uint64_t>(entries) * page_bytes,
                       page_bytes, associativity, PrefetchPolicy::none, 1};
  }
};

/// Two-level TLB configuration.
struct TlbConfig {
  TlbLevelConfig l1{"DTLB", 64, 4, 4096};
  TlbLevelConfig l2{"STLB", 2048, 8, 4096};

  void validate() const;

  /// Sapphire-Rapids-flavoured defaults (also the default constructor).
  static TlbConfig saphira() { return {}; }
  /// A tiny TLB (4 + 16 entries, 64 B pages) for fast unit tests.
  static TlbConfig tiny();
};

/// Per-level and walk statistics.
struct TlbStats {
  std::uint64_t l1_hits = 0;
  std::uint64_t l1_misses = 0;
  std::uint64_t l2_hits = 0;   ///< STLB hits (after an L1 miss).
  std::uint64_t walks = 0;     ///< Page walks (missed both levels).
  std::uint64_t accesses() const { return l1_hits + l1_misses; }
};

/// A two-level TLB: translations probe the L1 DTLB, then the STLB, then
/// take a page walk; the translation is installed in both levels on a walk
/// (and promoted into L1 on an STLB hit).
class TlbHierarchy {
 public:
  explicit TlbHierarchy(const TlbConfig& config = TlbConfig::saphira());

  /// Translates one byte address.  Returns the level that hit (0 = DTLB,
  /// 1 = STLB) or nullopt for a page walk.
  std::optional<std::size_t> access(std::uint64_t addr);

  const TlbStats& stats() const noexcept { return stats_; }
  void reset();

 private:
  CacheLevel l1_;
  CacheLevel l2_;
  TlbStats stats_;
};

}  // namespace catalyst::cachesim
