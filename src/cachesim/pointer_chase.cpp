#include "cachesim/pointer_chase.hpp"

#include <random>
#include <stdexcept>

namespace catalyst::cachesim {

std::vector<std::uint64_t> build_chain(const ChaseConfig& config) {
  if (config.num_pointers == 0) {
    throw std::invalid_argument("build_chain: empty chain");
  }
  if (config.stride_bytes == 0) {
    throw std::invalid_argument("build_chain: zero stride");
  }
  std::vector<std::uint64_t> order(config.num_pointers);
  for (std::uint64_t i = 0; i < config.num_pointers; ++i) order[i] = i;
  if (config.order == ChainOrder::random_cycle) {
    // Sattolo's algorithm: a uniform random cyclic permutation.  Walking
    // the resulting order visits every element exactly once per traversal
    // with no short cycles, mirroring how CAT builds its chase buffer.
    std::mt19937_64 rng(config.seed);
    for (std::uint64_t i = config.num_pointers - 1; i > 0; --i) {
      std::uniform_int_distribution<std::uint64_t> pick(0, i - 1);
      std::swap(order[i], order[pick(rng)]);
    }
  }
  std::vector<std::uint64_t> addrs(config.num_pointers);
  for (std::uint64_t i = 0; i < config.num_pointers; ++i) {
    addrs[i] = config.base_addr + order[i] * config.stride_bytes;
  }
  return addrs;
}

ChaseResult run_chase(CacheHierarchy& hierarchy, const ChaseConfig& config,
                      TlbHierarchy* tlb) {
  if (config.warmup_traversals < 0 || config.measured_traversals <= 0) {
    throw std::invalid_argument("run_chase: bad traversal counts");
  }
  const std::vector<std::uint64_t> chain = build_chain(config);

  // Warm up to steady state, snapshot the counters, then diff after the
  // measured traversals; this leaves cache contents untouched between the
  // two phases.
  for (int t = 0; t < config.warmup_traversals; ++t) {
    for (std::uint64_t a : chain) {
      if (tlb) tlb->access(a);
      hierarchy.access(a);
    }
  }
  std::vector<LevelStats> before(hierarchy.num_levels());
  for (std::size_t i = 0; i < hierarchy.num_levels(); ++i) {
    before[i] = hierarchy.level(i).stats();
  }
  const std::uint64_t mem_before = hierarchy.memory_accesses();
  const TlbStats tlb_before = tlb ? tlb->stats() : TlbStats{};

  for (int t = 0; t < config.measured_traversals; ++t) {
    for (std::uint64_t a : chain) {
      if (tlb) tlb->access(a);
      hierarchy.access(a);
    }
  }

  ChaseResult res;
  res.level_stats.resize(hierarchy.num_levels());
  for (std::size_t i = 0; i < hierarchy.num_levels(); ++i) {
    const LevelStats& now = hierarchy.level(i).stats();
    res.level_stats[i].demand_hits = now.demand_hits - before[i].demand_hits;
    res.level_stats[i].demand_misses =
        now.demand_misses - before[i].demand_misses;
  }
  res.memory_accesses = hierarchy.memory_accesses() - mem_before;
  res.total_accesses = static_cast<std::uint64_t>(config.measured_traversals) *
                       config.num_pointers;
  if (tlb) {
    const TlbStats& now = tlb->stats();
    res.tlb.l1_hits = now.l1_hits - tlb_before.l1_hits;
    res.tlb.l1_misses = now.l1_misses - tlb_before.l1_misses;
    res.tlb.l2_hits = now.l2_hits - tlb_before.l2_hits;
    res.tlb.walks = now.walks - tlb_before.walks;
  }
  return res;
}

}  // namespace catalyst::cachesim
