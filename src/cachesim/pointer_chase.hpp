// catalyst/cachesim -- CAT-style pointer-chase workload.
//
// The CAT data-cache benchmark walks a cyclic pointer chain laid out over a
// buffer.  The chain order is a seeded random permutation of the buffer's
// cache blocks so that hardware-style next-line prefetching cannot predict
// it; the footprint (chain size * stride) decides which level of the cache
// hierarchy the steady-state walk hits.
#pragma once

#include <cstdint>
#include <vector>

#include "cachesim/cache.hpp"
#include "cachesim/tlb.hpp"

namespace catalyst::cachesim {

/// Order in which the chain visits the buffer's elements.
enum class ChainOrder {
  /// A seeded random single-cycle permutation (CAT's choice): hardware
  /// next-line prefetchers cannot predict the walk, so hit/miss counts
  /// reflect true capacity behaviour.
  random_cycle,
  /// Ascending addresses: a streaming scan, trivially prefetchable.  Used
  /// by the ablation bench that motivates the random order.
  sequential,
};

/// Parameters of one pointer-chase run.
struct ChaseConfig {
  std::uint64_t num_pointers = 0; ///< Chain length (number of elements).
  std::uint32_t stride_bytes = 64;///< Distance between consecutive elements.
  std::uint64_t base_addr = 0;    ///< Starting byte address of the buffer.
  std::uint64_t seed = 1;         ///< Permutation seed.
  int warmup_traversals = 1;      ///< Full-chain walks before counting.
  int measured_traversals = 1;    ///< Full-chain walks that are counted.
  ChainOrder order = ChainOrder::random_cycle;
};

/// Per-level outcome of a measured chase.
struct ChaseResult {
  std::vector<LevelStats> level_stats; ///< One entry per hierarchy level.
  std::uint64_t memory_accesses = 0;   ///< Demand misses past the last level.
  std::uint64_t total_accesses = 0;    ///< Measured demand accesses issued.
  TlbStats tlb;                        ///< Zeroes when no TLB was supplied.
};

/// Builds the cyclic chain as a sequence of byte addresses in chase order.
/// The permutation is a seeded Fisher-Yates shuffle (Sattolo variant, which
/// guarantees a single cycle covering every element).
std::vector<std::uint64_t> build_chain(const ChaseConfig& config);

/// Runs the chase against a hierarchy: `warmup_traversals` untimed walks to
/// reach steady state, then `measured_traversals` counted walks.  The
/// hierarchy's stats are reset after warmup so the result reflects only the
/// measured phase.  When `tlb` is non-null every access is also translated
/// through it and the measured-phase TLB statistics are reported.
ChaseResult run_chase(CacheHierarchy& hierarchy, const ChaseConfig& config,
                      TlbHierarchy* tlb = nullptr);

}  // namespace catalyst::cachesim
