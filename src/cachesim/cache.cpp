#include "cachesim/cache.hpp"

#include <bit>

namespace catalyst::cachesim {

CacheLevel::CacheLevel(const LevelConfig& config) : config_(config) {
  config_.validate();
  const std::uint64_t sets = config_.num_sets();
  set_mask_ = sets - 1;
  line_shift_ = static_cast<std::uint32_t>(
      std::countr_zero(static_cast<std::uint64_t>(config_.line_bytes)));
  ways_.assign(sets * config_.associativity, Way{});
}

CacheLevel::Way* CacheLevel::find(std::uint64_t line) {
  const std::uint64_t set = set_index(line);
  Way* base = ways_.data() + set * config_.associativity;
  for (std::uint32_t w = 0; w < config_.associativity; ++w) {
    if (base[w].valid && base[w].tag == line) return &base[w];
  }
  return nullptr;
}

const CacheLevel::Way* CacheLevel::find(std::uint64_t line) const {
  const std::uint64_t set = set_index(line);
  const Way* base = ways_.data() + set * config_.associativity;
  for (std::uint32_t w = 0; w < config_.associativity; ++w) {
    if (base[w].valid && base[w].tag == line) return &base[w];
  }
  return nullptr;
}

CacheLevel::Way* CacheLevel::victim(std::uint64_t line) {
  const std::uint64_t set = set_index(line);
  Way* base = ways_.data() + set * config_.associativity;
  Way* v = base;
  for (std::uint32_t w = 0; w < config_.associativity; ++w) {
    if (!base[w].valid) return &base[w];
    if (base[w].lru_stamp < v->lru_stamp) v = &base[w];
  }
  return v;
}

bool CacheLevel::access(std::uint64_t addr) {
  const std::uint64_t line = addr >> line_shift_;
  ++clock_;
  if (Way* w = find(line)) {
    w->lru_stamp = clock_;
    ++stats_.demand_hits;
    return true;
  }
  ++stats_.demand_misses;
  Way* v = victim(line);
  v->tag = line;
  v->valid = true;
  v->lru_stamp = clock_;
  if (config_.prefetch == PrefetchPolicy::next_line) {
    // Install the next `prefetch_degree` sequential lines (if absent)
    // without touching the demand statistics -- a simple hardware streamer.
    for (std::uint32_t d = 1; d <= config_.prefetch_degree; ++d) {
      const std::uint64_t next = line + d;
      ++clock_;
      if (!find(next)) {
        Way* p = victim(next);
        p->tag = next;
        p->valid = true;
        p->lru_stamp = clock_;
        ++stats_.prefetches_issued;
      }
    }
  }
  return false;
}

bool CacheLevel::contains(std::uint64_t addr) const {
  return find(addr >> line_shift_) != nullptr;
}

void CacheLevel::install(std::uint64_t addr) {
  const std::uint64_t line = addr >> line_shift_;
  ++clock_;
  if (Way* w = find(line)) {
    w->lru_stamp = clock_;
    return;
  }
  Way* v = victim(line);
  v->tag = line;
  v->valid = true;
  v->lru_stamp = clock_;
}

void CacheLevel::reset() {
  for (Way& w : ways_) w = Way{};
  clock_ = 0;
  stats_ = LevelStats{};
}

CacheHierarchy::CacheHierarchy(const HierarchyConfig& config) {
  config.validate();
  levels_.reserve(config.levels.size());
  for (const auto& lc : config.levels) levels_.emplace_back(lc);
}

std::optional<std::size_t> CacheHierarchy::access(std::uint64_t addr) {
  for (std::size_t i = 0; i < levels_.size(); ++i) {
    if (levels_[i].access(addr)) {
      return i;
    }
  }
  ++memory_accesses_;
  return std::nullopt;
}

void CacheHierarchy::reset() {
  for (auto& l : levels_) l.reset();
  memory_accesses_ = 0;
}

}  // namespace catalyst::cachesim
