#include "cachesim/tlb.hpp"

namespace catalyst::cachesim {

void TlbConfig::validate() const {
  l1.as_cache_config().validate();
  l2.as_cache_config().validate();
  if (l1.page_bytes != l2.page_bytes) {
    throw ConfigError("TlbConfig: mixed page sizes are not supported");
  }
  if (l2.entries < l1.entries) {
    throw ConfigError("TlbConfig: STLB smaller than DTLB");
  }
}

TlbConfig TlbConfig::tiny() {
  TlbConfig c;
  c.l1 = {"DTLB", 4, 2, 64};
  c.l2 = {"STLB", 16, 2, 64};
  return c;
}

TlbHierarchy::TlbHierarchy(const TlbConfig& config)
    : l1_((config.validate(), config.l1.as_cache_config())),
      l2_(config.l2.as_cache_config()) {}

std::optional<std::size_t> TlbHierarchy::access(std::uint64_t addr) {
  if (l1_.access(addr)) {
    ++stats_.l1_hits;
    return 0;
  }
  ++stats_.l1_misses;
  if (l2_.access(addr)) {
    ++stats_.l2_hits;
    return 1;  // translation promoted into L1 by the access() install
  }
  ++stats_.walks;
  return std::nullopt;
}

void TlbHierarchy::reset() {
  l1_.reset();
  l2_.reset();
  stats_ = TlbStats{};
}

}  // namespace catalyst::cachesim
