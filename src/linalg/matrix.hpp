// catalyst/linalg -- dense column-major matrix and vector types.
//
// The analysis pipeline manipulates "measurement matrices" whose columns are
// per-event measurement vectors.  Column-major storage keeps each event's
// vector contiguous, which is what the Householder QR kernels and the
// pivoting schemes in catalyst::core iterate over.
#pragma once

#include <cstddef>
#include <initializer_list>
#include <iosfwd>
#include <span>
#include <vector>

#include "linalg/error.hpp"

namespace catalyst::linalg {

using Vector = std::vector<double>;
using index_t = std::ptrdiff_t;

/// Dense, heap-allocated, column-major matrix of doubles.
///
/// Invariants:
///   * data_.size() == rows_ * cols_ at all times;
///   * element (i, j) lives at data_[j * rows_ + i].
///
/// The class is a regular value type: copyable, movable, equality-comparable
/// (exact element-wise comparison; use `max_abs_diff` for tolerant checks).
class Matrix {
 public:
  /// Creates an empty 0x0 matrix.
  Matrix() = default;

  /// Creates a rows x cols matrix with every element set to `fill`.
  Matrix(index_t rows, index_t cols, double fill = 0.0);

  /// Creates a matrix from nested initializer lists, row by row:
  /// `Matrix{{1, 2}, {3, 4}}` is [[1,2],[3,4]].
  Matrix(std::initializer_list<std::initializer_list<double>> rows);

  /// Builds a matrix column-by-column.  Every column must have equal length.
  static Matrix from_columns(const std::vector<Vector>& columns);

  /// Builds a matrix row-by-row.  Every row must have equal length.
  static Matrix from_rows(const std::vector<Vector>& rows);

  /// The n x n identity.
  static Matrix identity(index_t n);

  /// A matrix whose single column is `v`.
  static Matrix column_vector(const Vector& v);

  index_t rows() const noexcept { return rows_; }
  index_t cols() const noexcept { return cols_; }
  bool empty() const noexcept { return rows_ == 0 || cols_ == 0; }

  /// Unchecked element access (asserts in debug builds only).
  double& operator()(index_t i, index_t j) noexcept {
    return data_[static_cast<std::size_t>(j * rows_ + i)];
  }
  double operator()(index_t i, index_t j) const noexcept {
    return data_[static_cast<std::size_t>(j * rows_ + i)];
  }

  /// Checked element access; throws DimensionError when out of range.
  double& at(index_t i, index_t j);
  double at(index_t i, index_t j) const;

  /// Contiguous view of column j (length rows()).
  std::span<double> col(index_t j);
  std::span<const double> col(index_t j) const;

  /// Copies column j out into a Vector.
  Vector col_copy(index_t j) const;

  /// Copies row i out into a Vector.
  Vector row_copy(index_t i) const;

  /// Overwrites column j with `v` (must have length rows()).
  void set_col(index_t j, std::span<const double> v);

  /// Overwrites row i with `v` (must have length cols()).
  void set_row(index_t i, std::span<const double> v);

  /// Swaps columns j1 and j2 in place.
  void swap_cols(index_t j1, index_t j2);

  /// Returns the transpose as a new matrix.
  Matrix transposed() const;

  /// Returns the sub-block [r0, r0+nr) x [c0, c0+nc) as a new matrix.
  Matrix block(index_t r0, index_t c0, index_t nr, index_t nc) const;

  /// Returns a new matrix made of the given columns, in the given order.
  Matrix select_columns(std::span<const index_t> indices) const;

  /// Appends the columns of `other` (same row count) to the right.
  void append_columns(const Matrix& other);

  /// Raw storage access (column-major, rows()*cols() elements).
  std::span<double> data() noexcept { return data_; }
  std::span<const double> data() const noexcept { return data_; }

  // Element-wise arithmetic ------------------------------------------------
  Matrix& operator+=(const Matrix& rhs);
  Matrix& operator-=(const Matrix& rhs);
  Matrix& operator*=(double s) noexcept;
  friend Matrix operator+(Matrix lhs, const Matrix& rhs) { return lhs += rhs; }
  friend Matrix operator-(Matrix lhs, const Matrix& rhs) { return lhs -= rhs; }
  friend Matrix operator*(Matrix m, double s) { return m *= s; }
  friend Matrix operator*(double s, Matrix m) { return m *= s; }
  friend bool operator==(const Matrix& a, const Matrix& b);

  /// max_ij |a_ij - b_ij|; throws DimensionError on shape mismatch.
  static double max_abs_diff(const Matrix& a, const Matrix& b);

 private:
  void check_index(index_t i, index_t j) const;

  index_t rows_ = 0;
  index_t cols_ = 0;
  std::vector<double> data_;
};

/// Streams a matrix in a compact bracketed text form (for diagnostics).
std::ostream& operator<<(std::ostream& os, const Matrix& m);

}  // namespace catalyst::linalg
