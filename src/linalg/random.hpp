// catalyst/linalg -- seeded random matrix generators (tests & benches).
//
// Every generator takes an explicit seed; nothing in catalyst draws from a
// global or time-based source, so all experiments are reproducible.
#pragma once

#include <cstdint>

#include "linalg/matrix.hpp"

namespace catalyst::linalg {

/// m x n matrix with i.i.d. standard normal entries.
Matrix random_gaussian(index_t m, index_t n, std::uint64_t seed);

/// m x n matrix with i.i.d. uniform entries in [lo, hi].
Matrix random_uniform(index_t m, index_t n, double lo, double hi,
                      std::uint64_t seed);

/// m x n matrix (m >= n) with orthonormal columns, built by QR of a Gaussian.
Matrix random_orthonormal(index_t m, index_t n, std::uint64_t seed);

/// m x n matrix of exact rank r (r <= min(m, n)): product of an m x r and an
/// r x n Gaussian factor.  Useful for rank-detection tests.
Matrix random_rank_deficient(index_t m, index_t n, index_t r,
                             std::uint64_t seed);

/// m x n matrix with singular values logarithmically spaced between 1 and
/// 1/cond; exercises conditioning-sensitive paths.
Matrix random_with_condition(index_t m, index_t n, double cond,
                             std::uint64_t seed);

}  // namespace catalyst::linalg
