#include "linalg/audit.hpp"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdlib>
#include <cstring>
#include <limits>

#include "core/contract.hpp"
#include "linalg/blas.hpp"
#include "linalg/qr.hpp"
#include "sync/annotations.hpp"
#include "sync/mutex.hpp"

namespace catalyst::linalg::audit {

namespace {

bool enabled_from_env() noexcept {
  const char* env = std::getenv("CATALYST_AUDIT");
  if (env == nullptr) return false;
  return std::strcmp(env, "1") == 0 || std::strcmp(env, "on") == 0 ||
         std::strcmp(env, "true") == 0;
}

std::atomic<bool>& enabled_slot() noexcept {
  static std::atomic<bool> on{enabled_from_env()};
  return on;
}

// Audit bookkeeping: a mutex-guarded registry rather than per-field
// atomics, so counts() returns a CONSISTENT snapshot (four independent
// atomics could be observed mid-update from another thread).  Audits fire
// per factorization, not per reading -- contention is irrelevant.
struct CountRegistry {
  sync::Mutex mutex{"linalg.audit.counts"};
  AuditCounts counts CATALYST_GUARDED_BY(mutex);

  void bump(std::size_t AuditCounts::* field) CATALYST_EXCLUDES(mutex) {
    const sync::LockGuard lock(mutex);
    ++(counts.*field);
  }
};

CountRegistry& count_registry() noexcept {
  static CountRegistry registry;
  return registry;
}

// Factorization-accuracy tolerance: rounding error of a Householder QR of an
// m x n matrix grows like O(max(m, n) * eps); the factor 100 absorbs the
// constants without letting genuine breakage through.
double accuracy_tol(index_t m, index_t n) noexcept {
  const auto dim = static_cast<double>(std::max<index_t>({m, n, 1}));
  return 100.0 * dim * std::numeric_limits<double>::epsilon();
}

}  // namespace

bool enabled() noexcept {
  return enabled_slot().load(std::memory_order_relaxed);
}

void set_enabled(bool on) noexcept {
  enabled_slot().store(on, std::memory_order_relaxed);
}

AuditCounts counts() noexcept {
  CountRegistry& reg = count_registry();
  const sync::LockGuard lock(reg.mutex);
  return reg.counts;
}

void reset_counts() noexcept {
  CountRegistry& reg = count_registry();
  const sync::LockGuard lock(reg.mutex);
  reg.counts = AuditCounts{};
}

double orthogonality_error(const Matrix& q) {
  const Matrix qtq = matmul_tn(q, q);
  return norm_frobenius(qtq - Matrix::identity(q.cols()));
}

double max_below_diagonal(const Matrix& r) {
  double worst = 0.0;
  for (index_t j = 0; j < r.cols(); ++j) {
    for (index_t i = j + 1; i < r.rows(); ++i) {
      worst = std::max(worst, std::fabs(r(i, j)));
    }
  }
  return worst;
}

double normal_equations_residual(const Matrix& a, std::span<const double> x,
                                 std::span<const double> b) {
  CATALYST_REQUIRE_AS(static_cast<index_t>(x.size()) == a.cols() &&
                          static_cast<index_t>(b.size()) == a.rows(),
                      DimensionError,
                      "normal_equations_residual: shape mismatch");
  Vector r(b.begin(), b.end());
  gemv(-1.0, a, x, 1.0, r);  // r = b - A x
  return nrm2(matvec_t(a, r));
}

void check_orthonormal(const Matrix& q) {
  count_registry().bump(&AuditCounts::orthogonality);
  const double err = orthogonality_error(q);
  const double tol = accuracy_tol(q.rows(), q.cols());
  CATALYST_INVARIANT_AS(err <= tol, AuditError,
                        "audit: ||Q^T Q - I||_F = " + std::to_string(err) +
                            " exceeds " + std::to_string(tol));
}

void check_upper_triangular(const Matrix& r) {
  count_registry().bump(&AuditCounts::triangularity);
  const double below = max_below_diagonal(r);
  CATALYST_INVARIANT_AS(below == 0.0, AuditError,
                        "audit: R has a below-diagonal entry of magnitude " +
                            std::to_string(below));
}

void check_factorization(const Matrix& original_permuted, const Matrix& q,
                         const Matrix& r) {
  count_registry().bump(&AuditCounts::factorization);
  CATALYST_REQUIRE_AS(q.cols() == r.rows() &&
                          q.rows() == original_permuted.rows() &&
                          r.cols() == original_permuted.cols(),
                      DimensionError, "check_factorization: shape mismatch");
  const Matrix residual = original_permuted - matmul(q, r);
  const double err = norm_frobenius(residual);
  const double tol = accuracy_tol(original_permuted.rows(),
                                  original_permuted.cols()) *
                     std::max(norm_frobenius(original_permuted), 1.0);
  CATALYST_INVARIANT_AS(err <= tol, AuditError,
                        "audit: ||A P - Q R||_F = " + std::to_string(err) +
                            " exceeds " + std::to_string(tol));
}

void check_lstsq_optimal(const Matrix& a, std::span<const double> x,
                         std::span<const double> b) {
  count_registry().bump(&AuditCounts::lstsq);
  const double grad = normal_equations_residual(a, x, b);
  // At the minimizer, A^T r is pure rounding noise: bounded by the scale of
  // the quantities that produced it, ||A|| * (||A|| ||x|| + ||b||), times
  // factorization accuracy.
  const double na = norm_frobenius(a);
  const double scale = na * (na * nrm2(x) + nrm2(b));
  const double tol = accuracy_tol(a.rows(), a.cols()) * std::max(scale, 1.0);
  CATALYST_INVARIANT_AS(
      grad <= tol, AuditError,
      "audit: least-squares gradient ||A^T (b - A x)|| = " +
          std::to_string(grad) + " exceeds " + std::to_string(tol) +
          "; the solution does not minimize the residual");
}

void check_qr(const Matrix& original, const QrFactorization& qr) {
  const Matrix q = qr.q_thin();
  const Matrix r = qr.r();
  check_orthonormal(q);
  check_upper_triangular(r);
  check_factorization(original, q, r);
}

}  // namespace catalyst::linalg::audit
