#include "linalg/qrcp.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <utility>

#include "core/contract.hpp"
#include "core/parallel.hpp"
#include "linalg/audit.hpp"
#include "linalg/blas.hpp"
#include "linalg/householder.hpp"
#include "linalg/qr.hpp"

namespace catalyst::linalg {

Matrix QrcpResult::r() const {
  const auto k = static_cast<index_t>(taus.size());
  const index_t n = packed.cols();
  Matrix out(k, n);
  for (index_t j = 0; j < n; ++j) {
    const index_t top = std::min<index_t>(j + 1, k);
    for (index_t i = 0; i < top; ++i) out(i, j) = packed(i, j);
  }
  return out;
}

const std::vector<double>& QrcpResult::r_diagonal_abs() const {
  if (r_diag_abs_cache_.size() != taus.size()) {
    r_diag_abs_cache_.resize(taus.size());
    for (std::size_t i = 0; i < taus.size(); ++i) {
      r_diag_abs_cache_[i] = std::fabs(
          packed(static_cast<index_t>(i), static_cast<index_t>(i)));
    }
  }
  return r_diag_abs_cache_;
}

namespace {

// Reforms Q from the packed reflectors (same accumulation as
// QrFactorization::q_thin) and verifies orthonormality, triangularity of R,
// and the reconstruction against the pivoted input.  R is materialized once
// and shared between the checks.
void audit_qrcp(const Matrix& original, const QrcpResult& res) {
  const index_t m = res.packed.rows();
  const auto k = static_cast<index_t>(res.taus.size());
  Matrix q(m, k);
  for (index_t j = 0; j < k; ++j) q(j, j) = 1.0;
  for (index_t j = k - 1; j >= 0; --j) {
    auto cj = res.packed.col(j);
    auto v = cj.subspan(static_cast<std::size_t>(j + 1));
    apply_reflector_left(q, j, 0, v, res.taus[static_cast<std::size_t>(j)]);
  }
  const Matrix r = res.r();
  audit::check_orthonormal(q);
  audit::check_upper_triangular(r);
  audit::check_factorization(original.select_columns(res.permutation), q, r);
}

// dlaqps-style blocked QRCP.  Within a panel starting at column/step k0, the
// accumulated reflector applications are carried in F (stored transposed,
// nb x (n - k0), column j - k0 holding column j's coefficients contiguously):
// after kk factored steps,
//
//   A_updated(r, j) = A(r, j) - sum_c A(r, k0 + c) * F(c, j - k0)
//
// for rows r below the finalized region.  Each step finalizes its own pivot
// column (rows i:m) and pivot row i exactly; everything else is deferred to
// one trailing gemm per panel.  The LINPACK downdate sees the final row i
// values, so the pivot sequence matches the scalar path except when the
// recompute safeguard fires (then the panel is cut short and flagged norms
// are recomputed after the gemm -- LAPACK's LSTICC mechanism; the recomputed
// norms differ from the scalar path's by roundoff only).
QrcpResult qrcp_blocked(Matrix a, double rank_tol_rel, index_t nb,
                        int threads) {
  Matrix original;
  if (audit::enabled()) original = a;
  QrcpResult res;
  const index_t m = a.rows();
  const index_t n = a.cols();
  const index_t kmax = std::min(m, n);

  res.permutation.resize(static_cast<std::size_t>(n));
  std::iota(res.permutation.begin(), res.permutation.end(), index_t{0});
  res.taus.assign(static_cast<std::size_t>(std::max<index_t>(kmax, 0)), 0.0);

  std::vector<double> pnorm(static_cast<std::size_t>(n));
  std::vector<double> pnorm_exact(static_cast<std::size_t>(n));
  double max_initial_norm = 0.0;
  for (index_t j = 0; j < n; ++j) {
    const double nj = nrm2(a.col(j));
    pnorm[static_cast<std::size_t>(j)] = nj;
    pnorm_exact[static_cast<std::size_t>(j)] = nj;
    max_initial_norm = std::max(max_initial_norm, nj);
  }
  const double stop_tol = rank_tol_rel * max_initial_norm;

  constexpr std::size_t kGrain = 256;  // columns per worker chunk
  // Scratch reused across panels: the fused sweep's per-step coefficients
  // and the flag mask it raises for columns needing a post-gemm norm
  // recompute (consumed -- and cleared -- right after each sweep).
  std::vector<double> auxv(static_cast<std::size_t>(std::max<index_t>(nb, 1)));
  std::vector<double> arow(static_cast<std::size_t>(std::max<index_t>(nb, 1)));
  std::vector<unsigned char> flag_mask(static_cast<std::size_t>(n), 0);
  bool stopped = false;
  index_t i = 0;  // global step / row
  while (i < kmax && !stopped) {
    const index_t k0 = i;
    const index_t panel_max = std::min(nb, kmax - k0);
    // F is stored transposed relative to LAPACK (nb x (n - k0)): column
    // j - k0 holds that column's coefficients contiguously, so the fused
    // sweep and the trailing gemm's packing both walk F sequentially.
    Matrix fmat(panel_max, n - k0, 0.0);
    std::vector<index_t> flagged;  // columns needing a post-gemm recompute
    index_t kb = 0;                // factored columns in this panel

    for (index_t kk = 0; kk < panel_max; ++kk) {
      i = k0 + kk;

      // Pivot: trailing column with the largest partial norm (strict >, so
      // ties keep the earliest column -- identical to the scalar scan).
      index_t pivot = i;
      for (index_t j = i + 1; j < n; ++j) {
        if (pnorm[static_cast<std::size_t>(j)] >
            pnorm[static_cast<std::size_t>(pivot)]) {
          pivot = j;
        }
      }
      if (pnorm[static_cast<std::size_t>(pivot)] <= stop_tol) {
        stopped = true;  // kb already counts the completed steps
        break;
      }
      if (pivot != i) {
        a.swap_cols(i, pivot);
        std::swap(res.permutation[static_cast<std::size_t>(i)],
                  res.permutation[static_cast<std::size_t>(pivot)]);
        std::swap(pnorm[static_cast<std::size_t>(i)],
                  pnorm[static_cast<std::size_t>(pivot)]);
        std::swap(pnorm_exact[static_cast<std::size_t>(i)],
                  pnorm_exact[static_cast<std::size_t>(pivot)]);
        for (index_t c = 0; c < kk; ++c) {
          std::swap(fmat(c, i - k0), fmat(c, pivot - k0));
        }
      }

      // Apply the panel's pending reflectors to the pivot column:
      // A(i:m, i) -= A(i:m, k0:k0+kk) * F(0:kk, i - k0).
      auto ci = a.col(i);
      for (index_t c = 0; c < kk; ++c) {
        const double f = fmat(c, i - k0);
        if (f == 0.0) continue;
        const auto vc = a.col(k0 + c);
        for (index_t r = i; r < m; ++r) {
          ci[static_cast<std::size_t>(r)] -=
              f * vc[static_cast<std::size_t>(r)];
        }
      }

      auto head = ci.subspan(static_cast<std::size_t>(i));
      const Reflector h = make_reflector(head);
      res.taus[static_cast<std::size_t>(i)] = h.tau;

      // v_full = (1, essential part) lives in A(i:m, i) while the diagonal
      // temporarily holds 1.
      ci[static_cast<std::size_t>(i)] = 1.0;
      const std::span<const double> vfull(ci.data() + i,
                                          static_cast<std::size_t>(m - i));

      // Panel-step coefficients for the fused sweep: auxv[c] = A(i:m, k0+c).v
      // (the deferred-update correction) and arow[c] = a(i, k0+c) (the
      // finalized row-i entries of the panel).
      for (index_t c = 0; c < kk; ++c) {
        if (h.tau != 0.0) {
          const auto vc = a.col(k0 + c);
          const std::span<const double> tail(
              vc.data() + i, static_cast<std::size_t>(m - i));
          auxv[static_cast<std::size_t>(c)] = dot_unrolled(tail, vfull);
        }
        arow[static_cast<std::size_t>(c)] = a(i, k0 + c);
      }

      // One fused pass per trailing column: F entry (dot + correction),
      // exact row-i finalization, and LINPACK downdate with the dgeqp3
      // safeguard (flagged columns cannot be recomputed yet -- rows below i
      // are stale -- so the sweep only marks them).  Each column is
      // self-contained; chunk boundaries are thread-agnostic.
      detail::QrcpPanelStep st;
      st.a = a.data().data();
      st.lda = m;
      st.i = i;
      st.m = m;
      st.k0 = k0;
      st.kk = kk;
      st.tau = h.tau;
      st.vfull = vfull.data();
      st.f = fmat.data().data();
      st.ldf = panel_max;
      st.auxv = auxv.data();
      st.arow = arow.data();
      core::parallel_for_chunks(
          static_cast<std::size_t>(n - (i + 1)), threads, kGrain,
          [&](std::size_t b, std::size_t e) {
            detail::qrcp_panel_sweep(st, i + 1 + static_cast<index_t>(b),
                                     i + 1 + static_cast<index_t>(e),
                                     pnorm.data(), pnorm_exact.data(),
                                     flag_mask.data());
          });
      ci[static_cast<std::size_t>(i)] = h.beta;

      // Collect the safeguard flags in column order (deterministic for any
      // chunking) and cut the panel short when any fired.
      for (index_t j = i + 1; j < n; ++j) {
        if (flag_mask[static_cast<std::size_t>(j)] != 0) {
          flag_mask[static_cast<std::size_t>(j)] = 0;
          flagged.push_back(j);
        }
      }
      kb = kk + 1;
      if (!flagged.empty()) break;
    }

    // One gemm finishes every deferred update of this panel:
    // A(k0+kb:m, k0+kb:n) -= V * F(0:kb, kb:) with V = A(k0+kb:m, k0:k0+kb)
    // (all essential reflector entries; the unit diagonals live in rows that
    // are already final).
    if (kb > 0) {
      const index_t rlo = k0 + kb;
      const index_t ntrail = n - (k0 + kb);
      if (rlo < m && ntrail > 0) {
        gemm_view(-1.0, subview(std::as_const(a), rlo, k0, m - rlo, kb),
                  false, subview(std::as_const(fmat), 0, kb, kb, ntrail),
                  false, 1.0, subview(a, rlo, k0 + kb, m - rlo, ntrail),
                  threads);
      }
      for (const index_t j : flagged) {
        const auto cj = a.col(j);
        const double nj = rlo < m
                              ? nrm2(cj.subspan(static_cast<std::size_t>(rlo)))
                              : 0.0;
        pnorm[static_cast<std::size_t>(j)] = nj;
        pnorm_exact[static_cast<std::size_t>(j)] = nj;
      }
    }
    i = k0 + kb;
  }

  res.rank = i;
  // Finish the factorization without pivoting so that the packed form is a
  // complete QR of A*P (needed to reconstruct A for verification).
  if (i < kmax) detail::blocked_qr_tail(a, res.taus, i, nb, threads);
  res.packed = std::move(a);
  CATALYST_ENSURE(res.rank >= 0 && res.rank <= kmax,
                  "qrcp: rank outside [0, min(m, n)]");
  if (audit::enabled()) audit_qrcp(original, res);
  return res;
}

}  // namespace

QrcpResult qrcp(Matrix a, double rank_tol_rel) {
  CATALYST_REQUIRE_AS(rank_tol_rel >= 0.0, ArgumentError,
                      "qrcp: negative rank tolerance");
  CATALYST_ASSUME_FINITE_AS(a.data(), ArgumentError,
                            "qrcp: input matrix has NaN/Inf entries");
  // Opt-in numerical audit needs the pre-factorization matrix to verify the
  // reconstruction A*P = Q*R afterwards.
  Matrix original;
  if (audit::enabled()) original = a;
  QrcpResult res;
  const index_t m = a.rows();
  const index_t n = a.cols();
  const index_t kmax = std::min(m, n);

  res.permutation.resize(static_cast<std::size_t>(n));
  std::iota(res.permutation.begin(), res.permutation.end(), index_t{0});

  // Partial column norms and their last exact values, for the LINPACK
  // downdating formula with the dgeqp3 recomputation safeguard.
  std::vector<double> pnorm(static_cast<std::size_t>(n));
  std::vector<double> pnorm_exact(static_cast<std::size_t>(n));
  double max_initial_norm = 0.0;
  for (index_t j = 0; j < n; ++j) {
    const double nj = nrm2(a.col(j));
    pnorm[static_cast<std::size_t>(j)] = nj;
    pnorm_exact[static_cast<std::size_t>(j)] = nj;
    max_initial_norm = std::max(max_initial_norm, nj);
  }
  const double stop_tol = rank_tol_rel * max_initial_norm;

  res.taus.reserve(static_cast<std::size_t>(kmax));
  index_t i = 0;
  for (; i < kmax; ++i) {
    // Pivot: trailing column with the largest partial norm.
    index_t pivot = i;
    for (index_t j = i + 1; j < n; ++j) {
      if (pnorm[static_cast<std::size_t>(j)] >
          pnorm[static_cast<std::size_t>(pivot)]) {
        pivot = j;
      }
    }
    if (pnorm[static_cast<std::size_t>(pivot)] <= stop_tol) {
      break;  // Remaining columns are numerically negligible.
    }
    if (pivot != i) {
      a.swap_cols(i, pivot);
      std::swap(res.permutation[static_cast<std::size_t>(i)],
                res.permutation[static_cast<std::size_t>(pivot)]);
      std::swap(pnorm[static_cast<std::size_t>(i)],
                pnorm[static_cast<std::size_t>(pivot)]);
      std::swap(pnorm_exact[static_cast<std::size_t>(i)],
                pnorm_exact[static_cast<std::size_t>(pivot)]);
    }

    auto ci = a.col(i);
    auto head = ci.subspan(static_cast<std::size_t>(i));
    Reflector h = make_reflector(head);
    res.taus.push_back(h.tau);
    auto v = head.subspan(1);
    apply_reflector_left(a, i, i + 1, v, h.tau);
    ci[static_cast<std::size_t>(i)] = h.beta;

    // Downdate the partial norms of the trailing columns:
    // ||A[i+1:, j]||^2 = ||A[i:, j]||^2 - A(i, j)^2.
    for (index_t j = i + 1; j < n; ++j) {
      double& pn = pnorm[static_cast<std::size_t>(j)];
      if (pn == 0.0) continue;
      const double t = std::fabs(a(i, j)) / pn;
      double f = std::max(0.0, (1.0 - t) * (1.0 + t));
      // dgeqp3 safeguard: when cancellation has eaten too much of the exact
      // norm, recompute from scratch instead of trusting the recurrence.
      const double ratio = pn / pnorm_exact[static_cast<std::size_t>(j)];
      if (f * ratio * ratio <= 1e-14) {
        const auto cj = a.col(j);
        pn = nrm2(cj.subspan(static_cast<std::size_t>(i + 1)));
        pnorm_exact[static_cast<std::size_t>(j)] = pn;
      } else {
        pn *= std::sqrt(f);
      }
    }
  }
  res.rank = i;
  // Finish the factorization without pivoting so that the packed form is a
  // complete QR of A*P (needed to reconstruct A for verification).
  for (; i < kmax; ++i) {
    auto ci = a.col(i);
    auto head = ci.subspan(static_cast<std::size_t>(i));
    Reflector h = make_reflector(head);
    res.taus.push_back(h.tau);
    auto v = head.subspan(1);
    apply_reflector_left(a, i, i + 1, v, h.tau);
    ci[static_cast<std::size_t>(i)] = h.beta;
  }
  res.packed = std::move(a);
  CATALYST_ENSURE(res.rank >= 0 && res.rank <= kmax,
                  "qrcp: rank outside [0, min(m, n)]");
  if (audit::enabled()) audit_qrcp(original, res);
  return res;
}

QrcpResult qrcp(Matrix a, const QrcpOptions& options) {
  CATALYST_REQUIRE_AS(options.rank_tol_rel >= 0.0, ArgumentError,
                      "qrcp: negative rank tolerance");
  CATALYST_REQUIRE_AS(options.block_size >= 0, ArgumentError,
                      "qrcp: negative block size");
  index_t nb = options.block_size;
  if (nb == 0) nb = a.cols() < 64 ? 1 : 32;
  if (nb == 1) return qrcp(std::move(a), options.rank_tol_rel);
  CATALYST_ASSUME_FINITE_AS(a.data(), ArgumentError,
                            "qrcp: input matrix has NaN/Inf entries");
  return qrcp_blocked(std::move(a), options.rank_tol_rel, nb,
                      options.threads);
}

}  // namespace catalyst::linalg
