#include "linalg/qrcp.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "core/contract.hpp"
#include "linalg/audit.hpp"
#include "linalg/blas.hpp"
#include "linalg/householder.hpp"

namespace catalyst::linalg {

Matrix QrcpResult::r() const {
  const auto k = static_cast<index_t>(taus.size());
  const index_t n = packed.cols();
  Matrix out(k, n);
  for (index_t j = 0; j < n; ++j) {
    const index_t top = std::min<index_t>(j + 1, k);
    for (index_t i = 0; i < top; ++i) out(i, j) = packed(i, j);
  }
  return out;
}

std::vector<double> QrcpResult::r_diagonal_abs() const {
  std::vector<double> d(taus.size());
  for (std::size_t i = 0; i < taus.size(); ++i) {
    d[i] = std::fabs(packed(static_cast<index_t>(i), static_cast<index_t>(i)));
  }
  return d;
}

QrcpResult qrcp(Matrix a, double rank_tol_rel) {
  CATALYST_REQUIRE_AS(rank_tol_rel >= 0.0, ArgumentError,
                      "qrcp: negative rank tolerance");
  CATALYST_ASSUME_FINITE_AS(a.data(), ArgumentError,
                            "qrcp: input matrix has NaN/Inf entries");
  // Opt-in numerical audit needs the pre-factorization matrix to verify the
  // reconstruction A*P = Q*R afterwards.
  Matrix original;
  if (audit::enabled()) original = a;
  QrcpResult res;
  const index_t m = a.rows();
  const index_t n = a.cols();
  const index_t kmax = std::min(m, n);

  res.permutation.resize(static_cast<std::size_t>(n));
  std::iota(res.permutation.begin(), res.permutation.end(), index_t{0});

  // Partial column norms and their last exact values, for the LINPACK
  // downdating formula with the dgeqp3 recomputation safeguard.
  std::vector<double> pnorm(static_cast<std::size_t>(n));
  std::vector<double> pnorm_exact(static_cast<std::size_t>(n));
  double max_initial_norm = 0.0;
  for (index_t j = 0; j < n; ++j) {
    const double nj = nrm2(a.col(j));
    pnorm[static_cast<std::size_t>(j)] = nj;
    pnorm_exact[static_cast<std::size_t>(j)] = nj;
    max_initial_norm = std::max(max_initial_norm, nj);
  }
  const double stop_tol = rank_tol_rel * max_initial_norm;

  res.taus.reserve(static_cast<std::size_t>(kmax));
  index_t i = 0;
  for (; i < kmax; ++i) {
    // Pivot: trailing column with the largest partial norm.
    index_t pivot = i;
    for (index_t j = i + 1; j < n; ++j) {
      if (pnorm[static_cast<std::size_t>(j)] >
          pnorm[static_cast<std::size_t>(pivot)]) {
        pivot = j;
      }
    }
    if (pnorm[static_cast<std::size_t>(pivot)] <= stop_tol) {
      break;  // Remaining columns are numerically negligible.
    }
    if (pivot != i) {
      a.swap_cols(i, pivot);
      std::swap(res.permutation[static_cast<std::size_t>(i)],
                res.permutation[static_cast<std::size_t>(pivot)]);
      std::swap(pnorm[static_cast<std::size_t>(i)],
                pnorm[static_cast<std::size_t>(pivot)]);
      std::swap(pnorm_exact[static_cast<std::size_t>(i)],
                pnorm_exact[static_cast<std::size_t>(pivot)]);
    }

    auto ci = a.col(i);
    auto head = ci.subspan(static_cast<std::size_t>(i));
    Reflector h = make_reflector(head);
    res.taus.push_back(h.tau);
    auto v = head.subspan(1);
    apply_reflector_left(a, i, i + 1, v, h.tau);
    ci[static_cast<std::size_t>(i)] = h.beta;

    // Downdate the partial norms of the trailing columns:
    // ||A[i+1:, j]||^2 = ||A[i:, j]||^2 - A(i, j)^2.
    for (index_t j = i + 1; j < n; ++j) {
      double& pn = pnorm[static_cast<std::size_t>(j)];
      if (pn == 0.0) continue;
      const double t = std::fabs(a(i, j)) / pn;
      double f = std::max(0.0, (1.0 - t) * (1.0 + t));
      // dgeqp3 safeguard: when cancellation has eaten too much of the exact
      // norm, recompute from scratch instead of trusting the recurrence.
      const double ratio = pn / pnorm_exact[static_cast<std::size_t>(j)];
      if (f * ratio * ratio <= 1e-14) {
        const auto cj = a.col(j);
        pn = nrm2(cj.subspan(static_cast<std::size_t>(i + 1)));
        pnorm_exact[static_cast<std::size_t>(j)] = pn;
      } else {
        pn *= std::sqrt(f);
      }
    }
  }
  res.rank = i;
  // Finish the factorization without pivoting so that the packed form is a
  // complete QR of A*P (needed to reconstruct A for verification).
  for (; i < kmax; ++i) {
    auto ci = a.col(i);
    auto head = ci.subspan(static_cast<std::size_t>(i));
    Reflector h = make_reflector(head);
    res.taus.push_back(h.tau);
    auto v = head.subspan(1);
    apply_reflector_left(a, i, i + 1, v, h.tau);
    ci[static_cast<std::size_t>(i)] = h.beta;
  }
  res.packed = std::move(a);
  CATALYST_ENSURE(res.rank >= 0 && res.rank <= kmax,
                  "qrcp: rank outside [0, min(m, n)]");
  if (audit::enabled()) {
    // Reform Q from the packed reflectors (same accumulation as
    // QrFactorization::q_thin) and verify orthonormality, triangularity of
    // R, and the reconstruction against the pivoted input.
    const auto k = static_cast<index_t>(res.taus.size());
    Matrix q(m, k);
    for (index_t j = 0; j < k; ++j) q(j, j) = 1.0;
    for (index_t j = k - 1; j >= 0; --j) {
      auto cj = res.packed.col(j);
      auto v = cj.subspan(static_cast<std::size_t>(j + 1));
      apply_reflector_left(q, j, 0, v, res.taus[static_cast<std::size_t>(j)]);
    }
    audit::check_orthonormal(q);
    audit::check_upper_triangular(res.r());
    audit::check_factorization(original.select_columns(res.permutation), q,
                               res.r());
  }
  return res;
}

}  // namespace catalyst::linalg
