#include "linalg/qr.hpp"

#include <algorithm>
#include <cmath>
#include <utility>

#include "core/contract.hpp"
#include "linalg/audit.hpp"
#include "linalg/blas.hpp"
#include "linalg/householder.hpp"

namespace catalyst::linalg {

namespace detail {

void blocked_qr_tail(Matrix& a, std::vector<double>& taus, index_t k0,
                     index_t block_size, int threads) {
  CATALYST_REQUIRE_AS(block_size > 0, ArgumentError,
                      "blocked_qr_tail: block size must be positive");
  const index_t m = a.rows();
  const index_t n = a.cols();
  const index_t kmin = std::min(m, n);
  CATALYST_REQUIRE_AS(static_cast<index_t>(taus.size()) >= kmin,
                      DimensionError, "blocked_qr_tail: taus too small");

  for (index_t k = k0; k < kmin; k += block_size) {
    const index_t kb = std::min(block_size, kmin - k);

    // --- Factor the panel A[k:m, k:k+kb) unblocked -------------------------
    for (index_t j = k; j < k + kb; ++j) {
      auto cj = a.col(j);
      auto head = cj.subspan(static_cast<std::size_t>(j));
      const Reflector h = make_reflector(head);
      taus[static_cast<std::size_t>(j)] = h.tau;
      auto v = head.subspan(1);
      // Apply only within the panel here; the trailing matrix gets the
      // blocked update below.
      apply_reflector_left_cols(a, j, j + 1, k + kb, v, h.tau);
      cj[static_cast<std::size_t>(j)] = h.beta;
    }
    const index_t ntrail = n - (k + kb);
    if (ntrail <= 0) continue;

    // --- Build V (unit lower trapezoidal) and T (compact WY) ---------------
    const index_t vm = m - k;
    Matrix vmat(vm, kb, 0.0);
    for (index_t j = 0; j < kb; ++j) {
      vmat(j, j) = 1.0;
      for (index_t i = j + 1; i < vm; ++i) {
        vmat(i, j) = a(k + i, k + j);
      }
    }
    // dlarft (forward, columnwise): T is kb x kb upper triangular with
    // T(0:j, j) = -tau_j * T(0:j, 0:j) * (V^T * v_j), T(j, j) = tau_j.
    Matrix tmat(kb, kb, 0.0);
    for (index_t j = 0; j < kb; ++j) {
      const double tau = taus[static_cast<std::size_t>(k + j)];
      tmat(j, j) = tau;
      if (j == 0 || tau == 0.0) continue;
      // w = V(:, 0:j)^T * v_j  (only rows j.. contribute: v_j is zero above).
      Vector w(static_cast<std::size_t>(j), 0.0);
      for (index_t c = 0; c < j; ++c) {
        const auto len = static_cast<std::size_t>(vm - j);
        w[static_cast<std::size_t>(c)] = dot_unrolled(
            std::span<const double>(vmat.col(c)).subspan(
                static_cast<std::size_t>(j), len),
            std::span<const double>(vmat.col(j)).subspan(
                static_cast<std::size_t>(j), len));
      }
      // T(0:j, j) = -tau * T(0:j, 0:j) * w  (T upper triangular).
      for (index_t r = 0; r < j; ++r) {
        double s = 0.0;
        for (index_t c = r; c < j; ++c) {
          s += tmat(r, c) * w[static_cast<std::size_t>(c)];
        }
        tmat(r, j) = -tau * s;
      }
    }

    // --- Blocked trailing update: C <- C - V * T^T * (V^T C) ---------------
    // The trailing block is updated in place through subviews; no block
    // copy in or out.
    const ConstView c_in = subview(std::as_const(a), k, k + kb, vm, ntrail);
    const MutView c_out = subview(a, k, k + kb, vm, ntrail);
    Matrix w(kb, ntrail);
    gemm_view(1.0, view(vmat), true, c_in, false, 0.0, view(w),
              threads);                                   // W = V^T C
    Matrix tw(kb, ntrail);
    gemm(1.0, tmat, true, w, false, 0.0, tw, threads);    // TW = T^T W
    gemm_view(-1.0, view(vmat), false, view(std::as_const(tw)), false, 1.0,
              c_out, threads);                            // C -= V TW
  }
}

}  // namespace detail

QrFactorization::QrFactorization(Matrix a) : qr_(std::move(a)) {
  Matrix original;
  if (audit::enabled()) original = qr_;
  const index_t m = qr_.rows();
  const index_t n = qr_.cols();
  const index_t k = std::min(m, n);
  taus_.assign(static_cast<std::size_t>(std::max<index_t>(k, 0)), 0.0);
  for (index_t j = 0; j < k; ++j) {
    auto cj = qr_.col(j);
    auto head = cj.subspan(static_cast<std::size_t>(j));
    Reflector h = make_reflector(head);
    taus_[static_cast<std::size_t>(j)] = h.tau;
    // head[1:] now holds the essential reflector; head[0] must become beta,
    // but we keep the essential part stored below the diagonal, so write
    // beta into the diagonal slot after applying the reflector to the
    // trailing columns.
    auto v = head.subspan(1);
    apply_reflector_left(qr_, j, j + 1, v, h.tau);
    cj[static_cast<std::size_t>(j)] = h.beta;
  }
  cache_r_diagonal();
  if (audit::enabled()) audit::check_qr(original, *this);
}

QrFactorization::QrFactorization(Matrix a, index_t block_size, int threads)
    : qr_(std::move(a)) {
  Matrix original;
  if (audit::enabled()) original = qr_;
  const index_t kmin = std::min(qr_.rows(), qr_.cols());
  taus_.assign(static_cast<std::size_t>(std::max<index_t>(kmin, 0)), 0.0);
  detail::blocked_qr_tail(qr_, taus_, 0, block_size, threads);
  cache_r_diagonal();
  if (audit::enabled()) audit::check_qr(original, *this);
}

Matrix QrFactorization::r() const {
  const index_t k = reflectors();
  const index_t n = qr_.cols();
  Matrix out(k, n);
  for (index_t j = 0; j < n; ++j) {
    const index_t top = std::min<index_t>(j + 1, k);
    for (index_t i = 0; i < top; ++i) out(i, j) = qr_(i, j);
  }
  return out;
}

Matrix QrFactorization::q_thin() const {
  const index_t m = qr_.rows();
  const index_t k = reflectors();
  Matrix q(m, k);
  for (index_t j = 0; j < k; ++j) q(j, j) = 1.0;
  // Accumulate Q = H_0 H_1 ... H_{k-1} * I by applying reflectors from the
  // last to the first.
  for (index_t j = k - 1; j >= 0; --j) {
    auto cj = qr_.col(j);
    auto v = cj.subspan(static_cast<std::size_t>(j + 1));
    apply_reflector_left(q, j, 0, v, taus_[static_cast<std::size_t>(j)]);
  }
  return q;
}

void QrFactorization::apply_qt(std::span<double> b) const {
  CATALYST_REQUIRE_AS(static_cast<index_t>(b.size()) == qr_.rows(),
                      DimensionError, "apply_qt: wrong vector length");
  for (index_t j = 0; j < reflectors(); ++j) {
    auto cj = qr_.col(j);
    auto v = cj.subspan(static_cast<std::size_t>(j + 1));
    apply_reflector_vec(b, j, v, taus_[static_cast<std::size_t>(j)]);
  }
}

void QrFactorization::apply_q(std::span<double> b) const {
  CATALYST_REQUIRE_AS(static_cast<index_t>(b.size()) == qr_.rows(),
                      DimensionError, "apply_q: wrong vector length");
  for (index_t j = reflectors() - 1; j >= 0; --j) {
    auto cj = qr_.col(j);
    auto v = cj.subspan(static_cast<std::size_t>(j + 1));
    apply_reflector_vec(b, j, v, taus_[static_cast<std::size_t>(j)]);
  }
}

Vector QrFactorization::solve(std::span<const double> b) const {
  CATALYST_REQUIRE_AS(static_cast<index_t>(b.size()) == qr_.rows(),
                      DimensionError,
                      "QrFactorization::solve: wrong rhs length");
  CATALYST_REQUIRE_AS(qr_.rows() >= qr_.cols(), DimensionError,
                      "QrFactorization::solve: underdetermined system; use "
                      "lstsq_min_norm instead");
  Vector y(b.begin(), b.end());
  apply_qt(y);
  Vector x(y.begin(), y.begin() + qr_.cols());
  trsv_upper(qr_, x);
  return x;
}

void QrFactorization::cache_r_diagonal() {
  r_diag_abs_.resize(static_cast<std::size_t>(reflectors()));
  for (index_t i = 0; i < reflectors(); ++i) {
    r_diag_abs_[static_cast<std::size_t>(i)] = std::fabs(qr_(i, i));
  }
}

}  // namespace catalyst::linalg
