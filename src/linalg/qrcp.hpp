// catalyst/linalg -- column-pivoted QR (the paper's Algorithm 1).
//
// This is the *classic* QRCP: at step i the pivot is the trailing column
// with the largest partial norm (LAPACK dgeqp3's rule).  The paper's
// specialized pivoting scheme (Algorithm 2) lives in catalyst::core and is
// built on top of the same reflector primitives; keeping the classic scheme
// here lets the benches ablate "classic vs specialized" pivoting directly.
//
// Two implementations share the entry point:
//
//   * the scalar column-at-a-time loop (the original path, kept verbatim --
//     qrcp(a, tol) always takes it);
//   * a blocked dlaqps-style path (opt in through QrcpOptions): reflector
//     applications within a panel are accumulated in an auxiliary matrix F
//     (F = A^T V T, built one column per step), each pivot's row is finalized
//     incrementally, and the trailing matrix receives one gemm per panel
//     instead of one rank-1 update per column.  LINPACK norm downdating works
//     exactly as in the scalar path; when the downdating safeguard fires the
//     panel is cut short and the flagged norms are recomputed after the gemm
//     (LAPACK's LSTICC mechanism).
#pragma once

#include <vector>

#include "linalg/matrix.hpp"

namespace catalyst::linalg {

/// Result of a column-pivoted QR factorization.
struct QrcpResult {
  /// Packed factorization (R above the diagonal, reflectors below),
  /// of the column-permuted input.
  Matrix packed;
  /// Reflector coefficients.
  std::vector<double> taus;
  /// Permutation: permutation[i] is the index (into the ORIGINAL matrix) of
  /// the column that ended up in position i.
  std::vector<index_t> permutation;
  /// Numerical rank detected with the tolerance passed to qrcp().
  index_t rank = 0;

  /// The upper-trapezoidal factor R (min(m,n) x n) of A * P.
  Matrix r() const;
  /// |R(i,i)| for each factored step, cached on first call -- report/verify
  /// consumers poll this in loops and must not re-materialize R each time.
  const std::vector<double>& r_diagonal_abs() const;

 private:
  mutable std::vector<double> r_diag_abs_cache_;
};

/// Tuning knobs for qrcp().  The defaults reproduce the scalar path's exact
/// arithmetic on small problems and switch to the blocked path when the
/// column count makes it worthwhile.
struct QrcpOptions {
  /// Rank tolerance, as in qrcp(a, rank_tol_rel).
  double rank_tol_rel = 1e-12;
  /// Panel width.  0 = auto (scalar below 64 columns, 32 otherwise);
  /// 1 = force the scalar column-at-a-time path (the bench baseline);
  /// >= 2 = blocked path with this panel width.
  index_t block_size = 0;
  /// Worker count for the blocked path's per-column F updates and trailing
  /// gemms (shared worker pool).  Results are bit-identical for any value.
  int threads = 1;
};

/// Column-pivoted Householder QR with max-norm pivoting and LINPACK-style
/// partial column-norm downdating (with recomputation when cancellation
/// would make the downdated value untrustworthy).
///
/// `rank_tol_rel`: a column is considered negligible (and the rank scan
/// stops) when its partial norm falls below rank_tol_rel * (largest initial
/// column norm).  Pass 0 to factor all min(m, n) steps and report rank as
/// the number of steps with a nonzero diagonal.
QrcpResult qrcp(Matrix a, double rank_tol_rel = 1e-12);

/// As above with explicit blocking/threading control.  The blocked path
/// produces the same permutation and an R factor agreeing to roundoff (its
/// trailing updates associate differently); it is NOT bit-identical to the
/// scalar path, but IS bit-identical to itself for any thread count.
QrcpResult qrcp(Matrix a, const QrcpOptions& options);

}  // namespace catalyst::linalg
