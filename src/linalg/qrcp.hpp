// catalyst/linalg -- column-pivoted QR (the paper's Algorithm 1).
//
// This is the *classic* QRCP: at step i the pivot is the trailing column
// with the largest partial norm (LAPACK dgeqp3's rule).  The paper's
// specialized pivoting scheme (Algorithm 2) lives in catalyst::core and is
// built on top of the same reflector primitives; keeping the classic scheme
// here lets the benches ablate "classic vs specialized" pivoting directly.
#pragma once

#include <vector>

#include "linalg/matrix.hpp"

namespace catalyst::linalg {

/// Result of a column-pivoted QR factorization.
struct QrcpResult {
  /// Packed factorization (R above the diagonal, reflectors below),
  /// of the column-permuted input.
  Matrix packed;
  /// Reflector coefficients.
  std::vector<double> taus;
  /// Permutation: permutation[i] is the index (into the ORIGINAL matrix) of
  /// the column that ended up in position i.
  std::vector<index_t> permutation;
  /// Numerical rank detected with the tolerance passed to qrcp().
  index_t rank = 0;

  /// The upper-trapezoidal factor R (min(m,n) x n) of A * P.
  Matrix r() const;
  /// |R(i,i)| for each factored step.
  std::vector<double> r_diagonal_abs() const;
};

/// Column-pivoted Householder QR with max-norm pivoting and LINPACK-style
/// partial column-norm downdating (with recomputation when cancellation
/// would make the downdated value untrustworthy).
///
/// `rank_tol_rel`: a column is considered negligible (and the rank scan
/// stops) when its partial norm falls below rank_tol_rel * (largest initial
/// column norm).  Pass 0 to factor all min(m, n) steps and report rank as
/// the number of steps with a nonzero diagonal.
QrcpResult qrcp(Matrix a, double rank_tol_rel = 1e-12);

}  // namespace catalyst::linalg
