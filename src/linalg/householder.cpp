#include "linalg/householder.hpp"

#include <cmath>

#include "core/parallel.hpp"
#include "linalg/blas.hpp"

namespace catalyst::linalg {

Reflector make_reflector(std::span<double> x) {
  Reflector h;
  if (x.empty()) return h;
  const double alpha = x[0];
  auto tail = x.subspan(1);
  const double xnorm = nrm2(tail);
  if (xnorm == 0.0) {
    // Already of the form (alpha, 0, ..., 0): H = I.
    h.tau = 0.0;
    h.beta = alpha;
    return h;
  }
  double beta = -std::copysign(std::hypot(alpha, xnorm), alpha);
  h.tau = (beta - alpha) / beta;
  const double inv = 1.0 / (alpha - beta);
  scal(inv, tail);
  h.beta = beta;
  return h;
}

void apply_reflector_left(Matrix& a, index_t r0, index_t c0,
                          std::span<const double> v_essential, double tau) {
  if (tau == 0.0) return;
  const index_t m = a.rows();
  if (r0 < 0 || r0 >= m ||
      static_cast<index_t>(v_essential.size()) != m - r0 - 1) {
    throw DimensionError("apply_reflector_left: bad reflector length");
  }
  for (index_t j = c0; j < a.cols(); ++j) {
    auto cj = a.col(j);
    // w = v^T * A[r0:, j] with v = (1, v_essential).
    double w = cj[static_cast<std::size_t>(r0)];
    for (index_t i = r0 + 1; i < m; ++i) {
      w += v_essential[static_cast<std::size_t>(i - r0 - 1)] *
           cj[static_cast<std::size_t>(i)];
    }
    w *= tau;
    cj[static_cast<std::size_t>(r0)] -= w;
    for (index_t i = r0 + 1; i < m; ++i) {
      cj[static_cast<std::size_t>(i)] -=
          w * v_essential[static_cast<std::size_t>(i - r0 - 1)];
    }
  }
}

void apply_reflector_left(Matrix& a, index_t r0, index_t c0,
                          std::span<const double> v_essential, double tau,
                          int threads) {
  if (tau == 0.0) return;
  const index_t m = a.rows();
  if (r0 < 0 || r0 >= m ||
      static_cast<index_t>(v_essential.size()) != m - r0 - 1) {
    throw DimensionError("apply_reflector_left: bad reflector length");
  }
  const index_t ncols = a.cols() - c0;
  if (ncols <= 0) return;
  // Grain of 64 columns: enough work per chunk to amortize claiming, and the
  // chunk boundaries depend only on the column count (determinism contract).
  core::parallel_for_chunks(
      static_cast<std::size_t>(ncols), threads, 64,
      [&](std::size_t b, std::size_t e) {
        for (std::size_t jj = b; jj < e; ++jj) {
          const index_t j = c0 + static_cast<index_t>(jj);
          auto cj = a.col(j);
          double w = cj[static_cast<std::size_t>(r0)];
          for (index_t i = r0 + 1; i < m; ++i) {
            w += v_essential[static_cast<std::size_t>(i - r0 - 1)] *
                 cj[static_cast<std::size_t>(i)];
          }
          w *= tau;
          cj[static_cast<std::size_t>(r0)] -= w;
          for (index_t i = r0 + 1; i < m; ++i) {
            cj[static_cast<std::size_t>(i)] -=
                w * v_essential[static_cast<std::size_t>(i - r0 - 1)];
          }
        }
      });
}

void apply_reflector_left_cols(Matrix& a, index_t r0, index_t c0, index_t c1,
                               std::span<const double> v_essential,
                               double tau) {
  if (tau == 0.0) return;
  const index_t m = a.rows();
  if (r0 < 0 || r0 >= m ||
      static_cast<index_t>(v_essential.size()) != m - r0 - 1) {
    throw DimensionError("apply_reflector_left_cols: bad reflector length");
  }
  if (c0 < 0 || c1 > a.cols()) {
    throw DimensionError("apply_reflector_left_cols: bad column range");
  }
  for (index_t j = c0; j < c1; ++j) {
    auto cj = a.col(j);
    double w = cj[static_cast<std::size_t>(r0)];
    for (index_t i = r0 + 1; i < m; ++i) {
      w += v_essential[static_cast<std::size_t>(i - r0 - 1)] *
           cj[static_cast<std::size_t>(i)];
    }
    w *= tau;
    cj[static_cast<std::size_t>(r0)] -= w;
    for (index_t i = r0 + 1; i < m; ++i) {
      cj[static_cast<std::size_t>(i)] -=
          w * v_essential[static_cast<std::size_t>(i - r0 - 1)];
    }
  }
}

void apply_reflector_vec(std::span<double> b, index_t r0,
                         std::span<const double> v_essential, double tau) {
  if (tau == 0.0) return;
  const auto m = static_cast<index_t>(b.size());
  if (r0 < 0 || r0 >= m ||
      static_cast<index_t>(v_essential.size()) != m - r0 - 1) {
    throw DimensionError("apply_reflector_vec: bad reflector length");
  }
  double w = b[static_cast<std::size_t>(r0)];
  for (index_t i = r0 + 1; i < m; ++i) {
    w += v_essential[static_cast<std::size_t>(i - r0 - 1)] *
         b[static_cast<std::size_t>(i)];
  }
  w *= tau;
  b[static_cast<std::size_t>(r0)] -= w;
  for (index_t i = r0 + 1; i < m; ++i) {
    b[static_cast<std::size_t>(i)] -=
        w * v_essential[static_cast<std::size_t>(i - r0 - 1)];
  }
}

}  // namespace catalyst::linalg
