#include "linalg/random.hpp"

#include <algorithm>
#include <cmath>
#include <random>

#include "linalg/blas.hpp"
#include "linalg/qr.hpp"

namespace catalyst::linalg {

Matrix random_gaussian(index_t m, index_t n, std::uint64_t seed) {
  std::mt19937_64 rng(seed);
  std::normal_distribution<double> dist(0.0, 1.0);
  Matrix a(m, n);
  for (double& v : a.data()) v = dist(rng);
  return a;
}

Matrix random_uniform(index_t m, index_t n, double lo, double hi,
                      std::uint64_t seed) {
  if (lo > hi) throw ArgumentError("random_uniform: lo > hi");
  std::mt19937_64 rng(seed);
  std::uniform_real_distribution<double> dist(lo, hi);
  Matrix a(m, n);
  for (double& v : a.data()) v = dist(rng);
  return a;
}

Matrix random_orthonormal(index_t m, index_t n, std::uint64_t seed) {
  if (n > m) throw ArgumentError("random_orthonormal: need n <= m");
  QrFactorization qr(random_gaussian(m, n, seed));
  return qr.q_thin();
}

Matrix random_rank_deficient(index_t m, index_t n, index_t r,
                             std::uint64_t seed) {
  if (r > std::min(m, n)) {
    throw ArgumentError("random_rank_deficient: r > min(m, n)");
  }
  if (r == 0) return Matrix(m, n, 0.0);
  Matrix u = random_gaussian(m, r, seed);
  Matrix v = random_gaussian(r, n, seed ^ 0xabcdef1234567890ULL);
  return matmul(u, v);
}

Matrix random_with_condition(index_t m, index_t n, double cond,
                             std::uint64_t seed) {
  if (cond < 1.0) throw ArgumentError("random_with_condition: cond < 1");
  const index_t k = std::min(m, n);
  Matrix u = random_orthonormal(m, k, seed);
  Matrix v = random_orthonormal(n, k, seed ^ 0x5555aaaa5555aaaaULL);
  // Scale the columns of U by log-spaced singular values, then multiply.
  for (index_t j = 0; j < k; ++j) {
    const double t = (k == 1) ? 0.0
                              : static_cast<double>(j) /
                                    static_cast<double>(k - 1);
    const double sv = std::pow(cond, -t);
    scal(sv, u.col(j));
  }
  Matrix out(m, n);
  gemm(1.0, u, false, v, true, 0.0, out);
  return out;
}

}  // namespace catalyst::linalg
