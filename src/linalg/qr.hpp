// catalyst/linalg -- Householder QR factorization (no pivoting).
//
// Factorizes A (m x n, m >= n is typical but not required) as A = Q R with Q
// orthogonal (m x m, applied implicitly) and R upper trapezoidal.  The
// factored form stores the essential reflector vectors below the diagonal of
// the packed matrix, LAPACK dgeqrf-style, plus the tau coefficients.
#pragma once

#include <vector>

#include "linalg/matrix.hpp"

namespace catalyst::linalg {

/// Packed Householder QR factorization of a matrix.
class QrFactorization {
 public:
  /// Factors `a`; the input is copied and factored in place.
  explicit QrFactorization(Matrix a);

  /// Blocked factorization (compact-WY): panels of `block_size` columns are
  /// factored unblocked, then applied to the trailing matrix as
  /// A <- (I - V T^T V^T)^T A via two gemms (LAPACK dgeqrt-style).  The
  /// packed representation is identical to the unblocked constructor's (up
  /// to roundoff in the trailing updates); this is the cache-friendly path
  /// for the tall measurement matrices.  `threads` parallelizes the trailing
  /// gemms through the shared worker pool; results are bit-identical for any
  /// thread count.
  QrFactorization(Matrix a, index_t block_size, int threads = 1);

  index_t rows() const noexcept { return qr_.rows(); }
  index_t cols() const noexcept { return qr_.cols(); }

  /// Number of reflectors == min(rows, cols).
  index_t reflectors() const noexcept {
    return static_cast<index_t>(taus_.size());
  }

  /// The upper-trapezoidal factor R (min(m,n) x n).
  Matrix r() const;

  /// The thin orthogonal factor Q (m x min(m,n)), formed explicitly.
  Matrix q_thin() const;

  /// Applies Q^T to a vector of length rows() in place.
  void apply_qt(std::span<double> b) const;

  /// Applies Q to a vector of length rows() in place.
  void apply_q(std::span<double> b) const;

  /// Solves the least-squares problem min ||A x - b||_2 assuming A has full
  /// column rank (throws SingularError if an R diagonal entry is exactly
  /// zero).  `b` must have length rows(); the solution has length cols().
  Vector solve(std::span<const double> b) const;

  /// |R(i,i)| for i in [0, reflectors()): used by callers for rank checks.
  /// Cached at construction -- calling this in a loop costs nothing.
  const std::vector<double>& r_diagonal_abs() const noexcept {
    return r_diag_abs_;
  }

  /// Access to the packed factorization (R above diagonal, reflectors below).
  const Matrix& packed() const noexcept { return qr_; }
  const std::vector<double>& taus() const noexcept { return taus_; }

 private:
  void cache_r_diagonal();

  Matrix qr_;                      // packed R + reflectors
  std::vector<double> taus_;       // reflector coefficients
  std::vector<double> r_diag_abs_; // |R(i,i)|, cached at construction
};

namespace detail {

/// Factors columns [k0, min(m, n)) of `a` in place with compact-WY blocked
/// QR (no pivoting), writing tau coefficients into taus[k0..] (taus must
/// already have size >= min(m, n)).  Shared by the blocked QrFactorization
/// constructor and the unpivoted tail of the blocked QRCP.
void blocked_qr_tail(Matrix& a, std::vector<double>& taus, index_t k0,
                     index_t block_size, int threads);

}  // namespace detail

}  // namespace catalyst::linalg
