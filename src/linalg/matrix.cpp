#include "linalg/matrix.hpp"

#include <algorithm>
#include <cmath>
#include <ostream>
#include <sstream>

#include "core/contract.hpp"

namespace catalyst::linalg {

namespace {

[[noreturn]] void throw_shape(const char* op, index_t ar, index_t ac,
                              index_t br, index_t bc) {
  std::ostringstream os;
  os << op << ": incompatible shapes " << ar << "x" << ac << " vs " << br
     << "x" << bc;
  throw DimensionError(os.str());
}

}  // namespace

Matrix::Matrix(index_t rows, index_t cols, double fill)
    : rows_(rows), cols_(cols) {
  CATALYST_REQUIRE_AS(rows >= 0 && cols >= 0, ArgumentError,
                      "Matrix: negative dimension");
  data_.assign(static_cast<std::size_t>(rows) * static_cast<std::size_t>(cols),
               fill);
}

Matrix::Matrix(std::initializer_list<std::initializer_list<double>> rows) {
  rows_ = static_cast<index_t>(rows.size());
  cols_ = rows_ == 0 ? 0 : static_cast<index_t>(rows.begin()->size());
  data_.assign(static_cast<std::size_t>(rows_ * cols_), 0.0);
  index_t i = 0;
  for (const auto& row : rows) {
    if (static_cast<index_t>(row.size()) != cols_) {
      throw DimensionError("Matrix: ragged initializer list");
    }
    index_t j = 0;
    for (double v : row) {
      (*this)(i, j) = v;
      ++j;
    }
    ++i;
  }
}

Matrix Matrix::from_columns(const std::vector<Vector>& columns) {
  if (columns.empty()) return {};
  const auto nrows = static_cast<index_t>(columns.front().size());
  Matrix m(nrows, static_cast<index_t>(columns.size()));
  for (index_t j = 0; j < m.cols_; ++j) {
    const Vector& c = columns[static_cast<std::size_t>(j)];
    if (static_cast<index_t>(c.size()) != nrows) {
      throw DimensionError("from_columns: columns have differing lengths");
    }
    m.set_col(j, c);
  }
  return m;
}

Matrix Matrix::from_rows(const std::vector<Vector>& rows) {
  if (rows.empty()) return {};
  const auto ncols = static_cast<index_t>(rows.front().size());
  Matrix m(static_cast<index_t>(rows.size()), ncols);
  for (index_t i = 0; i < m.rows_; ++i) {
    const Vector& r = rows[static_cast<std::size_t>(i)];
    if (static_cast<index_t>(r.size()) != ncols) {
      throw DimensionError("from_rows: rows have differing lengths");
    }
    m.set_row(i, r);
  }
  return m;
}

Matrix Matrix::identity(index_t n) {
  Matrix m(n, n);
  for (index_t i = 0; i < n; ++i) m(i, i) = 1.0;
  return m;
}

Matrix Matrix::column_vector(const Vector& v) {
  Matrix m(static_cast<index_t>(v.size()), 1);
  m.set_col(0, v);
  return m;
}

void Matrix::check_index(index_t i, index_t j) const {
  if (i < 0 || i >= rows_ || j < 0 || j >= cols_) {
    std::ostringstream os;
    os << "Matrix::at(" << i << ", " << j << "): out of range for " << rows_
       << "x" << cols_;
    throw DimensionError(os.str());
  }
}

double& Matrix::at(index_t i, index_t j) {
  check_index(i, j);
  return (*this)(i, j);
}

double Matrix::at(index_t i, index_t j) const {
  check_index(i, j);
  return (*this)(i, j);
}

std::span<double> Matrix::col(index_t j) {
  CATALYST_REQUIRE_AS(j >= 0 && j < cols_, DimensionError,
                      "Matrix::col: out of range");
  return std::span<double>(data_.data() + j * rows_,
                           static_cast<std::size_t>(rows_));
}

std::span<const double> Matrix::col(index_t j) const {
  CATALYST_REQUIRE_AS(j >= 0 && j < cols_, DimensionError,
                      "Matrix::col: out of range");
  return std::span<const double>(data_.data() + j * rows_,
                                 static_cast<std::size_t>(rows_));
}

Vector Matrix::col_copy(index_t j) const {
  auto c = col(j);
  return Vector(c.begin(), c.end());
}

Vector Matrix::row_copy(index_t i) const {
  if (i < 0 || i >= rows_) throw DimensionError("Matrix::row_copy: range");
  Vector r(static_cast<std::size_t>(cols_));
  for (index_t j = 0; j < cols_; ++j) r[static_cast<std::size_t>(j)] = (*this)(i, j);
  return r;
}

void Matrix::set_col(index_t j, std::span<const double> v) {
  CATALYST_REQUIRE_AS(static_cast<index_t>(v.size()) == rows_,
                      DimensionError, "Matrix::set_col: wrong length");
  std::ranges::copy(v, col(j).begin());
}

void Matrix::set_row(index_t i, std::span<const double> v) {
  CATALYST_REQUIRE_AS(i >= 0 && i < rows_, DimensionError,
                      "Matrix::set_row: range");
  CATALYST_REQUIRE_AS(static_cast<index_t>(v.size()) == cols_,
                      DimensionError, "Matrix::set_row: wrong length");
  for (index_t j = 0; j < cols_; ++j) {
    (*this)(i, j) = v[static_cast<std::size_t>(j)];
  }
}

void Matrix::swap_cols(index_t j1, index_t j2) {
  if (j1 == j2) return;
  auto c1 = col(j1);
  auto c2 = col(j2);
  std::swap_ranges(c1.begin(), c1.end(), c2.begin());
}

Matrix Matrix::transposed() const {
  Matrix t(cols_, rows_);
  for (index_t j = 0; j < cols_; ++j) {
    for (index_t i = 0; i < rows_; ++i) {
      t(j, i) = (*this)(i, j);
    }
  }
  return t;
}

Matrix Matrix::block(index_t r0, index_t c0, index_t nr, index_t nc) const {
  CATALYST_REQUIRE_AS(r0 >= 0 && c0 >= 0 && nr >= 0 && nc >= 0 &&
                          r0 + nr <= rows_ && c0 + nc <= cols_,
                      DimensionError, "Matrix::block: range out of bounds");
  Matrix b(nr, nc);
  for (index_t j = 0; j < nc; ++j) {
    for (index_t i = 0; i < nr; ++i) {
      b(i, j) = (*this)(r0 + i, c0 + j);
    }
  }
  return b;
}

Matrix Matrix::select_columns(std::span<const index_t> indices) const {
  Matrix s(rows_, static_cast<index_t>(indices.size()));
  for (index_t j = 0; j < s.cols_; ++j) {
    const index_t src = indices[static_cast<std::size_t>(j)];
    CATALYST_REQUIRE_AS(src >= 0 && src < cols_, DimensionError,
                        "select_columns: index out of range");
    s.set_col(j, col(src));
  }
  return s;
}

void Matrix::append_columns(const Matrix& other) {
  if (empty()) {
    *this = other;
    return;
  }
  if (other.rows_ != rows_) {
    throw_shape("append_columns", rows_, cols_, other.rows_, other.cols_);
  }
  data_.insert(data_.end(), other.data_.begin(), other.data_.end());
  cols_ += other.cols_;
}

Matrix& Matrix::operator+=(const Matrix& rhs) {
  if (rhs.rows_ != rows_ || rhs.cols_ != cols_) {
    throw_shape("operator+=", rows_, cols_, rhs.rows_, rhs.cols_);
  }
  for (std::size_t k = 0; k < data_.size(); ++k) data_[k] += rhs.data_[k];
  return *this;
}

Matrix& Matrix::operator-=(const Matrix& rhs) {
  if (rhs.rows_ != rows_ || rhs.cols_ != cols_) {
    throw_shape("operator-=", rows_, cols_, rhs.rows_, rhs.cols_);
  }
  for (std::size_t k = 0; k < data_.size(); ++k) data_[k] -= rhs.data_[k];
  return *this;
}

Matrix& Matrix::operator*=(double s) noexcept {
  for (double& v : data_) v *= s;
  return *this;
}

bool operator==(const Matrix& a, const Matrix& b) {
  return a.rows_ == b.rows_ && a.cols_ == b.cols_ && a.data_ == b.data_;
}

double Matrix::max_abs_diff(const Matrix& a, const Matrix& b) {
  if (a.rows_ != b.rows_ || a.cols_ != b.cols_) {
    throw_shape("max_abs_diff", a.rows_, a.cols_, b.rows_, b.cols_);
  }
  double d = 0.0;
  for (std::size_t k = 0; k < a.data_.size(); ++k) {
    d = std::max(d, std::fabs(a.data_[k] - b.data_[k]));
  }
  return d;
}

std::ostream& operator<<(std::ostream& os, const Matrix& m) {
  os << "[";
  for (index_t i = 0; i < m.rows(); ++i) {
    os << (i == 0 ? "[" : " [");
    for (index_t j = 0; j < m.cols(); ++j) {
      os << m(i, j) << (j + 1 < m.cols() ? ", " : "");
    }
    os << "]" << (i + 1 < m.rows() ? "\n" : "");
  }
  return os << "]";
}

}  // namespace catalyst::linalg
