// catalyst/linalg -- error types shared by the dense linear algebra kernels.
//
// All precondition violations in catalyst::linalg throw one of the exception
// types below rather than invoking undefined behaviour.  Numerical
// breakdowns (rank deficiency, non-convergence) are reported through return
// values / status structs, never through exceptions, so that callers can
// implement fallbacks without control-flow surprises.
#pragma once

#include <stdexcept>
#include <string>

namespace catalyst::linalg {

/// Base class for all catalyst::linalg exceptions.
class LinalgError : public std::runtime_error {
 public:
  explicit LinalgError(const std::string& what) : std::runtime_error(what) {}
};

/// Thrown when operand shapes are incompatible (e.g. gemm with mismatched
/// inner dimensions, or indexing past the end of a matrix).
class DimensionError : public LinalgError {
 public:
  explicit DimensionError(const std::string& what) : LinalgError(what) {}
};

/// Thrown when a value argument is outside its documented domain
/// (e.g. a negative tolerance).
class ArgumentError : public LinalgError {
 public:
  explicit ArgumentError(const std::string& what) : LinalgError(what) {}
};

/// Thrown when an algorithm is asked to operate on a structurally singular
/// input where it cannot produce any result (e.g. triangular solve with an
/// exactly zero diagonal entry).
class SingularError : public LinalgError {
 public:
  explicit SingularError(const std::string& what) : LinalgError(what) {}
};

}  // namespace catalyst::linalg
