#include "linalg/lstsq.hpp"

#include <algorithm>
#include <cmath>

#include "core/contract.hpp"
#include "linalg/audit.hpp"
#include "linalg/blas.hpp"

namespace catalyst::linalg {

namespace {

// Solves R x = y for the leading k x k block of packed R, zeroing solution
// components whose diagonal entry is below tol (basic solution).
// Returns true if any component was zeroed.
bool solve_upper_regularized(const Matrix& r, std::span<double> x,
                             double tol) {
  bool deficient = false;
  const auto n = static_cast<index_t>(x.size());
  for (index_t i = n - 1; i >= 0; --i) {
    double s = x[static_cast<std::size_t>(i)];
    for (index_t j = i + 1; j < n; ++j) {
      s -= r(i, j) * x[static_cast<std::size_t>(j)];
    }
    const double d = r(i, i);
    if (std::fabs(d) <= tol) {
      x[static_cast<std::size_t>(i)] = 0.0;
      deficient = true;
    } else {
      x[static_cast<std::size_t>(i)] = s / d;
    }
  }
  return deficient;
}

}  // namespace

LstsqResult lstsq(const Matrix& a, std::span<const double> b, double rcond) {
  CATALYST_REQUIRE_AS(a.rows() >= a.cols(), DimensionError,
                      "lstsq: system is underdetermined; use lstsq_min_norm");
  CATALYST_REQUIRE_AS(static_cast<index_t>(b.size()) == a.rows(),
                      DimensionError, "lstsq: rhs length mismatch");
  CATALYST_ASSUME_FINITE_AS(a.data(), ArgumentError,
                            "lstsq: matrix has NaN/Inf entries");
  CATALYST_ASSUME_FINITE_AS(b, ArgumentError,
                            "lstsq: rhs has NaN/Inf entries");
  LstsqResult out;
  QrFactorization qr(a);
  Vector y(b.begin(), b.end());
  qr.apply_qt(y);

  const auto& diag = qr.r_diagonal_abs();
  const double dmax =
      diag.empty() ? 0.0 : *std::max_element(diag.begin(), diag.end());
  const double tol = rcond * dmax;

  out.x.assign(y.begin(), y.begin() + a.cols());
  out.rank_deficient = solve_upper_regularized(qr.packed(), out.x, tol);

  // Residual: recompute explicitly (robust even when rank deficient).
  Vector r(b.begin(), b.end());
  gemv(-1.0, a, out.x, 1.0, r);
  out.residual_norm = nrm2(r);
  out.backward_error = backward_error(a, out.x, b);
  CATALYST_ENSURE(std::isfinite(out.residual_norm) &&
                      out.residual_norm >= 0.0 &&
                      std::isfinite(out.backward_error),
                  "lstsq: non-finite residual or backward error");
  if (audit::enabled() && !out.rank_deficient) {
    audit::check_lstsq_optimal(a, out.x, b);
  }
  return out;
}

LstsqResult lstsq_min_norm(const Matrix& a, std::span<const double> b,
                           double rcond) {
  if (a.rows() >= a.cols()) {
    return lstsq(a, b, rcond);
  }
  CATALYST_REQUIRE_AS(static_cast<index_t>(b.size()) == a.rows(),
                      DimensionError, "lstsq_min_norm: rhs length mismatch");
  LstsqResult out;
  // A = (QR)^T with A^T = Q R  =>  x = Q R^{-T} b is the minimum-norm
  // solution of A x = b.
  QrFactorization qr(a.transposed());

  const auto& diag = qr.r_diagonal_abs();
  const double dmax =
      diag.empty() ? 0.0 : *std::max_element(diag.begin(), diag.end());
  const double tol = rcond * dmax;

  // Solve R^T z = b with regularization for tiny diagonals.
  Vector z(b.begin(), b.end());
  const auto m = static_cast<index_t>(z.size());
  for (index_t i = 0; i < m; ++i) {
    double s = z[static_cast<std::size_t>(i)];
    for (index_t j = 0; j < i; ++j) {
      s -= qr.packed()(j, i) * z[static_cast<std::size_t>(j)];
    }
    const double d = qr.packed()(i, i);
    if (std::fabs(d) <= tol) {
      z[static_cast<std::size_t>(i)] = 0.0;
      out.rank_deficient = true;
    } else {
      z[static_cast<std::size_t>(i)] = s / d;
    }
  }
  // x = Q z (pad z to full length and apply Q).
  Vector x(static_cast<std::size_t>(a.cols()), 0.0);
  std::copy(z.begin(), z.end(), x.begin());
  qr.apply_q(x);
  out.x = std::move(x);

  Vector r(b.begin(), b.end());
  gemv(-1.0, a, out.x, 1.0, r);
  out.residual_norm = nrm2(r);
  out.backward_error = backward_error(a, out.x, b);
  CATALYST_ENSURE(std::isfinite(out.residual_norm) &&
                      std::isfinite(out.backward_error),
                  "lstsq_min_norm: non-finite residual or backward error");
  return out;
}

LstsqSolver::LstsqSolver(Matrix a, double rcond) : a_(std::move(a)), qr_(a_) {
  CATALYST_REQUIRE_AS(a_.rows() >= a_.cols(), DimensionError,
                      "LstsqSolver: system is underdetermined");
  CATALYST_REQUIRE_AS(rcond >= 0.0, ArgumentError,
                      "LstsqSolver: negative rcond");
  CATALYST_ASSUME_FINITE_AS(a_.data(), ArgumentError,
                            "LstsqSolver: matrix has NaN/Inf entries");
  const auto& diag = qr_.r_diagonal_abs();
  const double dmax =
      diag.empty() ? 0.0 : *std::max_element(diag.begin(), diag.end());
  tol_ = rcond * dmax;
  anorm_ = norm_two_estimate(a_);
}

LstsqResult LstsqSolver::solve(std::span<const double> b) const {
  CATALYST_REQUIRE_AS(static_cast<index_t>(b.size()) == a_.rows(),
                      DimensionError, "LstsqSolver: rhs length mismatch");
  CATALYST_ASSUME_FINITE_AS(b, ArgumentError,
                            "LstsqSolver: rhs has NaN/Inf entries");
  LstsqResult out;
  Vector y(b.begin(), b.end());
  qr_.apply_qt(y);
  out.x.assign(y.begin(), y.begin() + a_.cols());
  out.rank_deficient = solve_upper_regularized(qr_.packed(), out.x, tol_);

  Vector r(b.begin(), b.end());
  gemv(-1.0, a_, out.x, 1.0, r);
  out.residual_norm = nrm2(r);
  // Same arithmetic as backward_error(), with the ||A||_2 estimate cached
  // (it is a deterministic function of A, so the value is identical).
  const double denom = anorm_ * nrm2(out.x) + nrm2(b);
  out.backward_error =
      denom == 0.0 ? (out.residual_norm == 0.0 ? 0.0 : 1.0)
                   : out.residual_norm / denom;
  CATALYST_ENSURE(std::isfinite(out.residual_norm) &&
                      out.residual_norm >= 0.0 &&
                      std::isfinite(out.backward_error),
                  "LstsqSolver: non-finite residual or backward error");
  if (audit::enabled() && !out.rank_deficient) {
    audit::check_lstsq_optimal(a_, out.x, b);
  }
  return out;
}

double backward_error(const Matrix& a, std::span<const double> y,
                      std::span<const double> s) {
  CATALYST_REQUIRE_AS(static_cast<index_t>(y.size()) == a.cols() &&
                          static_cast<index_t>(s.size()) == a.rows(),
                      DimensionError, "backward_error: shape mismatch");
  Vector r(s.begin(), s.end());
  gemv(-1.0, a, y, 1.0, r);
  const double num = nrm2(r);
  const double denom = norm_two_estimate(a) * nrm2(y) + nrm2(s);
  if (denom == 0.0) {
    // Zero matrix, zero solution, zero signature: the fit is exact.
    return num == 0.0 ? 0.0 : 1.0;
  }
  return num / denom;
}

}  // namespace catalyst::linalg
