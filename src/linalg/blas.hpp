// catalyst/linalg -- BLAS-style dense kernels (levels 1-3).
//
// These are the workhorse routines under the QR factorizations and the
// least-squares solvers.  They are written for clarity first, with the
// standard cache-friendly loop orders (gemm is j-k-i over column-major
// storage) and an optional thread-parallel gemm for the larger measurement
// matrices produced by the GPU benchmark (~1200 columns).
#pragma once

#include <span>

#include "linalg/matrix.hpp"

namespace catalyst::linalg {

// ----- Level 1 ------------------------------------------------------------

/// x . y
double dot(std::span<const double> x, std::span<const double> y);

/// y += alpha * x
void axpy(double alpha, std::span<const double> x, std::span<double> y);

/// x *= alpha
void scal(double alpha, std::span<double> x) noexcept;

/// Euclidean norm, computed with scaling to avoid overflow/underflow
/// (LAPACK dnrm2-style).
double nrm2(std::span<const double> x) noexcept;

/// Sum of |x_i|.
double asum(std::span<const double> x) noexcept;

/// Index of the element with the largest magnitude; -1 for an empty span.
index_t iamax(std::span<const double> x) noexcept;

// ----- Level 2 ------------------------------------------------------------

/// y = alpha * A * x + beta * y
void gemv(double alpha, const Matrix& a, std::span<const double> x,
          double beta, std::span<double> y);

/// y = alpha * A^T * x + beta * y
void gemv_t(double alpha, const Matrix& a, std::span<const double> x,
            double beta, std::span<double> y);

/// Convenience: returns A * x.
Vector matvec(const Matrix& a, std::span<const double> x);

/// Convenience: returns A^T * x.
Vector matvec_t(const Matrix& a, std::span<const double> x);

/// Rank-1 update A += alpha * x * y^T.
void ger(double alpha, std::span<const double> x, std::span<const double> y,
         Matrix& a);

// ----- Level 3 ------------------------------------------------------------

/// C = alpha * op(A) * op(B) + beta * C, with op in {identity, transpose}.
/// `threads` > 1 splits the columns of C across that many std::threads;
/// 0 or 1 runs serially.
void gemm(double alpha, const Matrix& a, bool trans_a, const Matrix& b,
          bool trans_b, double beta, Matrix& c, int threads = 1);

/// Convenience: returns A * B (serial).
Matrix matmul(const Matrix& a, const Matrix& b);

/// Convenience: returns A^T * B (serial).
Matrix matmul_tn(const Matrix& a, const Matrix& b);

// ----- Triangular solves ----------------------------------------------------

/// Solves R * x = b in place (b becomes x) for upper-triangular R (uses the
/// leading n x n block of `r`, where n = b.size()).  Throws SingularError on
/// a diagonal entry at or below the noise scale n * eps * max_i |r(i, i)|
/// (an exactly-zero test would accept diagonals that are pure rounding
/// debris and amplify them into garbage solutions).
void trsv_upper(const Matrix& r, std::span<double> b);

/// Solves L * x = b in place for lower-triangular L.
void trsv_lower(const Matrix& l, std::span<double> b);

/// Solves R^T * x = b in place for upper-triangular R.
void trsv_upper_t(const Matrix& r, std::span<double> b);

// ----- Norms ----------------------------------------------------------------

/// Frobenius norm of A.
double norm_frobenius(const Matrix& a) noexcept;

/// Induced 1-norm (max column abs sum).
double norm_one(const Matrix& a) noexcept;

/// Induced infinity-norm (max row abs sum).
double norm_inf(const Matrix& a) noexcept;

/// Estimate of the spectral norm ||A||_2 via power iteration on A^T A.
/// `iters` controls accuracy; 30 iterations give ~3 digits on typical data,
/// which is ample for the backward-error denominator of Eq. 5.
double norm_two_estimate(const Matrix& a, int iters = 30,
                         unsigned long seed = 0x9e3779b97f4a7c15ULL);

}  // namespace catalyst::linalg
