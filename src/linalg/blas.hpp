// catalyst/linalg -- BLAS-style dense kernels (levels 1-3).
//
// These are the workhorse routines under the QR factorizations and the
// least-squares solvers.  Level 1/2 routines are written for clarity with
// the standard loop orders; gemm has two paths:
//
//   * a naive j-k-i path, kept verbatim for small products so the matrices
//     the paper's pipeline produces (basis-sized systems) keep their exact
//     historical rounding;
//   * a cache-blocked path for large products: op(A)/op(B) panels are packed
//     into contiguous micro-panels (GotoBLAS-style MC x KC / KC x NC
//     blocking) and multiplied by a register-blocked MR x NR micro-kernel.
//     On x86-64 the micro-kernel is compiled twice -- baseline and
//     AVX2+FMA -- and dispatched once per process by cpuid, so the hot loop
//     vectorizes without raising the translation unit's baseline ISA.
//
// Threading splits C into fixed column panels claimed through the shared
// worker pool (core/parallel.hpp).  Panel boundaries depend only on the
// problem size, and each C element is accumulated by exactly one worker in a
// fixed order, so results are bit-identical for ANY thread count.
#pragma once

#include <span>

#include "linalg/matrix.hpp"

namespace catalyst::linalg {

// ----- Level 1 ------------------------------------------------------------

/// x . y
double dot(std::span<const double> x, std::span<const double> y);

/// x . y computed with eight independent accumulators (reassociated, and
/// FMA-contracted where the CPU supports it).  Breaking the sequential
/// addition chain makes it latency-robust -- the blocked factorizations use
/// it for their inner products.  NOT bit-identical to dot(); identical to
/// itself for any thread count and across repeated runs on one machine.
double dot_unrolled(std::span<const double> x, std::span<const double> y);

/// y += alpha * x
void axpy(double alpha, std::span<const double> x, std::span<double> y);

/// x *= alpha
void scal(double alpha, std::span<double> x) noexcept;

/// Euclidean norm, computed with scaling to avoid overflow/underflow
/// (LAPACK dnrm2-style).
double nrm2(std::span<const double> x) noexcept;

/// Sum of |x_i|.
double asum(std::span<const double> x) noexcept;

/// Index of the element with the largest magnitude; -1 for an empty span.
index_t iamax(std::span<const double> x) noexcept;

// ----- Views ----------------------------------------------------------------

/// Lightweight column-major view of a dense block (no ownership): element
/// (i, j) lives at data[j * ld + i].  Used to run gemm on sub-blocks in
/// place -- the blocked QR/QRCP trailing updates write straight into the
/// packed factorization instead of copying blocks out and back.
struct ConstView {
  const double* data = nullptr;
  index_t rows = 0;
  index_t cols = 0;
  index_t ld = 0;
};

/// Mutable counterpart of ConstView.
struct MutView {
  double* data = nullptr;
  index_t rows = 0;
  index_t cols = 0;
  index_t ld = 0;

  operator ConstView() const noexcept { return {data, rows, cols, ld}; }
};

ConstView view(const Matrix& m) noexcept;
MutView view(Matrix& m) noexcept;

/// View of the sub-block [r0, r0+nr) x [c0, c0+nc); throws DimensionError
/// when the block exceeds the matrix.
ConstView subview(const Matrix& m, index_t r0, index_t c0, index_t nr,
                  index_t nc);
MutView subview(Matrix& m, index_t r0, index_t c0, index_t nr, index_t nc);

// ----- Level 2 ------------------------------------------------------------

/// y = alpha * A * x + beta * y
void gemv(double alpha, const Matrix& a, std::span<const double> x,
          double beta, std::span<double> y);

/// y = alpha * A^T * x + beta * y
void gemv_t(double alpha, const Matrix& a, std::span<const double> x,
            double beta, std::span<double> y);

/// Convenience: returns A * x.
Vector matvec(const Matrix& a, std::span<const double> x);

/// Convenience: returns A^T * x.
Vector matvec_t(const Matrix& a, std::span<const double> x);

/// Rank-1 update A += alpha * x * y^T.
void ger(double alpha, std::span<const double> x, std::span<const double> y,
         Matrix& a);

// ----- Level 3 ------------------------------------------------------------

/// C = alpha * op(A) * op(B) + beta * C, with op in {identity, transpose}.
/// `threads` > 1 splits the columns of C into fixed panels executed on the
/// shared worker pool; results are bit-identical for any thread count.
/// Small products take the naive j-k-i path (exact historical rounding);
/// large ones the packed blocked path (see file comment).
void gemm(double alpha, const Matrix& a, bool trans_a, const Matrix& b,
          bool trans_b, double beta, Matrix& c, int threads = 1);

/// gemm on views: same contract as gemm(), operating on (sub-)blocks in
/// place.  The view variant is what the blocked factorizations call.
void gemm_view(double alpha, ConstView a, bool trans_a, ConstView b,
               bool trans_b, double beta, MutView c, int threads = 1);

/// Convenience: returns A * B (serial).
Matrix matmul(const Matrix& a, const Matrix& b);

/// Convenience: returns A^T * B (serial).
Matrix matmul_tn(const Matrix& a, const Matrix& b);

namespace detail {

/// Arguments for one fused dlaqps panel-step sweep (blocked QRCP, see
/// qrcp.cpp).  All pointers alias the factorization in progress: `a` is the
/// column-major matrix base, `f` the panel's F matrix stored TRANSPOSED
/// relative to LAPACK (nb x (n - k0), column-major, so one column's
/// coefficients F(0:kk, j - k0) are contiguous and the sweep walks F
/// sequentially), `vfull` the current reflector (&a(i, i), with the diagonal
/// temporarily holding 1), and `auxv`/`arow` the per-step panel coefficients
/// A(i:m, k0+c)^T v and a(i, k0+c) for c < kk.
struct QrcpPanelStep {
  double* a = nullptr;
  index_t lda = 0;
  index_t i = 0;   ///< current global step (pivot row/column)
  index_t m = 0;   ///< rows of a
  index_t k0 = 0;  ///< first column of the panel
  index_t kk = 0;  ///< step index within the panel
  double tau = 0.0;
  const double* vfull = nullptr;
  double* f = nullptr;
  index_t ldf = 0;
  const double* auxv = nullptr;
  const double* arow = nullptr;
};

/// Runs the fused sweep over trailing columns [j0, j1): writes F(kk, j - k0),
/// finalizes a(i, j), and downdates pnorm[j], setting flag_mask[j] instead
/// when the dgeqp3 safeguard demands a post-gemm norm recompute.  One pass
/// replaces the separate F-dot, F-correction, row-finalization, and downdate
/// sweeps -- the bandwidth-bound heart of blocked QRCP.  Every column is
/// self-contained, so any chunking of the range is bit-identical; the hot
/// loop is compiled baseline + AVX2/FMA and dispatched once per process like
/// the gemm micro-kernel.
void qrcp_panel_sweep(const QrcpPanelStep& st, index_t j0, index_t j1,
                      double* pnorm, const double* pnorm_exact,
                      unsigned char* flag_mask);

}  // namespace detail

// ----- Triangular solves ----------------------------------------------------

/// Solves R * x = b in place (b becomes x) for upper-triangular R (uses the
/// leading n x n block of `r`, where n = b.size()).  Throws SingularError on
/// a diagonal entry at or below the noise scale n * eps * max_i |r(i, i)|
/// (an exactly-zero test would accept diagonals that are pure rounding
/// debris and amplify them into garbage solutions).
void trsv_upper(const Matrix& r, std::span<double> b);

/// Solves L * x = b in place for lower-triangular L.
void trsv_lower(const Matrix& l, std::span<double> b);

/// Solves R^T * x = b in place for upper-triangular R.
void trsv_upper_t(const Matrix& r, std::span<double> b);

// ----- Norms ----------------------------------------------------------------

/// Frobenius norm of A.
double norm_frobenius(const Matrix& a) noexcept;

/// Induced 1-norm (max column abs sum).
double norm_one(const Matrix& a) noexcept;

/// Induced infinity-norm (max row abs sum).
double norm_inf(const Matrix& a) noexcept;

/// Estimate of the spectral norm ||A||_2 via power iteration on A^T A.
/// `iters` controls accuracy; 30 iterations give ~3 digits on typical data,
/// which is ample for the backward-error denominator of Eq. 5.
double norm_two_estimate(const Matrix& a, int iters = 30,
                         unsigned long seed = 0x9e3779b97f4a7c15ULL);

}  // namespace catalyst::linalg
