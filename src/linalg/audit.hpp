// catalyst/linalg -- opt-in numerical invariant audits.
//
// The pipeline's conclusions rest on a handful of linear-algebra invariants
// that ordinary unit tests only sample: Q from a Householder factorization
// is orthonormal, R is upper triangular, a least-squares solution actually
// minimizes the residual.  This module makes those invariants checkable *in
// production data paths*: when audits are enabled (set_enabled(true) or
// CATALYST_AUDIT=1 in the environment), qrcp(), QrFactorization and lstsq()
// verify their own output after every factorization/solve and report
// violations through the contract layer (AuditError under the throw
// policy).  When disabled -- the default -- the hooks cost one branch.
//
// The audit_pipeline ctest runs the full paper pipeline with audits on; the
// measurement functions (orthogonality_error, ...) are also usable directly
// by tests and diagnostics.
#pragma once

#include <span>
#include <vector>

#include "linalg/error.hpp"
#include "linalg/matrix.hpp"

namespace catalyst::linalg {

class QrFactorization;

namespace audit {

/// Thrown (under the default contract policy) when an enabled audit fails.
class AuditError : public LinalgError {
 public:
  explicit AuditError(const std::string& what) : LinalgError(what) {}
};

/// Whether the in-path audit hooks are active.  Initialized from the
/// CATALYST_AUDIT environment variable ("1"/"on"/"true"); overridable at
/// runtime.
bool enabled() noexcept;
void set_enabled(bool on) noexcept;

/// RAII enable/disable, restoring the previous state on scope exit.
class EnabledGuard {
 public:
  explicit EnabledGuard(bool on) noexcept : previous_(enabled()) {
    set_enabled(on);
  }
  ~EnabledGuard() { set_enabled(previous_); }
  EnabledGuard(const EnabledGuard&) = delete;
  EnabledGuard& operator=(const EnabledGuard&) = delete;

 private:
  bool previous_;
};

/// How many audits have run since the last reset_counts(); lets the
/// audit_pipeline test assert the hooks actually fired.
struct AuditCounts {
  std::size_t orthogonality = 0;   ///< ||Q^T Q - I|| checks.
  std::size_t triangularity = 0;   ///< strict upper-triangularity checks.
  std::size_t factorization = 0;   ///< ||A P - Q R|| reconstruction checks.
  std::size_t lstsq = 0;           ///< least-squares optimality checks.
};
AuditCounts counts() noexcept;
void reset_counts() noexcept;

// ----- Measurements (always available, independent of enabled()) ------------

/// ||Q^T Q - I||_F: deviation of Q's columns from orthonormality.
double orthogonality_error(const Matrix& q);

/// max_{i > j} |r(i, j)|: largest entry strictly below the diagonal.
double max_below_diagonal(const Matrix& r);

/// ||A^T (b - A x)||_2: the normal-equations residual.  Zero (to rounding)
/// iff x minimizes ||A x - b||_2 for full-column-rank A.
double normal_equations_residual(const Matrix& a, std::span<const double> x,
                                 std::span<const double> b);

// ----- Checks (report through the contract layer when violated) -------------

/// Q's columns must be orthonormal to factorization accuracy:
/// ||Q^T Q - I||_F <= 100 * max(m, n) * eps.
void check_orthonormal(const Matrix& q);

/// R must be strictly upper triangular: every below-diagonal entry == 0.
void check_upper_triangular(const Matrix& r);

/// Q * R must reconstruct the (column-permuted) input:
/// ||A P - Q R||_F <= 100 * max(m, n) * eps * ||A||_F.
void check_factorization(const Matrix& original_permuted, const Matrix& q,
                         const Matrix& r);

/// x must minimize ||A x - b||_2: the normal-equations residual is bounded
/// by rounding noise of the factorization.  Only meaningful for
/// full-column-rank solves; callers skip it for regularized basic solutions.
void check_lstsq_optimal(const Matrix& a, std::span<const double> x,
                         std::span<const double> b);

/// Full post-factorization audit of a QrFactorization against its input.
/// Runs the orthogonality, triangularity and reconstruction checks.
void check_qr(const Matrix& original, const QrFactorization& qr);

}  // namespace audit
}  // namespace catalyst::linalg
