// catalyst/linalg -- singular value decomposition (one-sided Jacobi).
//
// Used by the analysis diagnostics: condition numbers of expectation bases,
// numerical rank cross-checks for the QRCP selections, and the ablation
// benches that compare rank decisions across factorizations.  One-sided
// Jacobi is simple, accurate for small singular values, and entirely
// adequate for the matrix sizes the pipeline produces (<= a few thousand
// columns, <= ~50 rows after projection).
#pragma once

#include "linalg/matrix.hpp"

namespace catalyst::linalg {

/// Thin SVD of an m x n matrix A (any shape): A = U * diag(sigma) * V^T
/// with U m x k, V n x k, k = min(m, n), and sigma sorted descending.
struct SvdResult {
  Matrix u;                     ///< Left singular vectors (m x k).
  Vector singular_values;      ///< k values, descending, all >= 0.
  Matrix v;                     ///< Right singular vectors (n x k).
  int sweeps = 0;               ///< Jacobi sweeps used.
  bool converged = false;       ///< False if max_sweeps was exhausted.
};

/// Computes the thin SVD by one-sided Jacobi on A (or A^T when m < n).
/// `tol` is the relative off-diagonal tolerance; convergence is reached
/// when every column pair satisfies |a_i . a_j| <= tol * ||a_i|| * ||a_j||.
SvdResult svd(const Matrix& a, double tol = 1e-12, int max_sweeps = 60);

/// 2-norm condition number sigma_max / sigma_min (inf for singular input,
/// 0x0 input returns 0).
double cond2(const Matrix& a);

/// Numerical rank: number of singular values > rel_tol * sigma_max.
index_t numerical_rank(const Matrix& a, double rel_tol = 1e-12);

}  // namespace catalyst::linalg
