// catalyst/linalg -- umbrella header for the dense linear algebra substrate.
#pragma once

#include "linalg/blas.hpp"       // IWYU pragma: export
#include "linalg/error.hpp"      // IWYU pragma: export
#include "linalg/householder.hpp"// IWYU pragma: export
#include "linalg/lstsq.hpp"      // IWYU pragma: export
#include "linalg/matrix.hpp"     // IWYU pragma: export
#include "linalg/qr.hpp"         // IWYU pragma: export
#include "linalg/qrcp.hpp"       // IWYU pragma: export
#include "linalg/random.hpp"     // IWYU pragma: export
#include "linalg/svd.hpp"        // IWYU pragma: export
