#include "linalg/blas.hpp"

#include <algorithm>
#include <cmath>
#include <random>
#include <thread>
#include <vector>

#include "core/contract.hpp"

namespace catalyst::linalg {

namespace {

void check_same_size(std::span<const double> x, std::span<const double> y,
                     const char* op) {
  CATALYST_REQUIRE_AS(x.size() == y.size(), DimensionError,
                      std::string(op) + ": vector length mismatch");
}

// Shared singularity guard for the triangular solves: a diagonal entry is
// unusable not only when exactly zero but whenever it is at rounding-noise
// scale relative to the largest diagonal entry -- dividing by it would
// amplify noise into the solution (see contract::singular_tolerance).
double triangular_diag_tolerance(const Matrix& m, index_t n) {
  double dmax = 0.0;
  for (index_t i = 0; i < n; ++i) dmax = std::max(dmax, std::fabs(m(i, i)));
  return contract::singular_tolerance(n, dmax);
}

}  // namespace

// ----- Level 1 --------------------------------------------------------------

double dot(std::span<const double> x, std::span<const double> y) {
  check_same_size(x, y, "dot");
  double s = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i) s += x[i] * y[i];
  return s;
}

void axpy(double alpha, std::span<const double> x, std::span<double> y) {
  check_same_size(x, y, "axpy");
  for (std::size_t i = 0; i < x.size(); ++i) y[i] += alpha * x[i];
}

void scal(double alpha, std::span<double> x) noexcept {
  for (double& v : x) v *= alpha;
}

double nrm2(std::span<const double> x) noexcept {
  // Scaled accumulation following the classic dnrm2 recurrence so that
  // vectors with entries near DBL_MAX or DBL_MIN do not overflow/underflow.
  double scale = 0.0;
  double ssq = 1.0;
  for (double v : x) {
    if (v != 0.0) {
      const double a = std::fabs(v);
      if (scale < a) {
        const double r = scale / a;
        ssq = 1.0 + ssq * r * r;
        scale = a;
      } else {
        const double r = a / scale;
        ssq += r * r;
      }
    }
  }
  return scale * std::sqrt(ssq);
}

double asum(std::span<const double> x) noexcept {
  double s = 0.0;
  for (double v : x) s += std::fabs(v);
  return s;
}

index_t iamax(std::span<const double> x) noexcept {
  if (x.empty()) return -1;
  index_t best = 0;
  double best_abs = std::fabs(x[0]);
  for (std::size_t i = 1; i < x.size(); ++i) {
    const double a = std::fabs(x[i]);
    if (a > best_abs) {
      best_abs = a;
      best = static_cast<index_t>(i);
    }
  }
  return best;
}

// ----- Level 2 --------------------------------------------------------------

void gemv(double alpha, const Matrix& a, std::span<const double> x,
          double beta, std::span<double> y) {
  CATALYST_REQUIRE_AS(static_cast<index_t>(x.size()) == a.cols() &&
                          static_cast<index_t>(y.size()) == a.rows(),
                      DimensionError, "gemv: shape mismatch");
  scal(beta, y);
  for (index_t j = 0; j < a.cols(); ++j) {
    const double axj = alpha * x[static_cast<std::size_t>(j)];
    if (axj == 0.0) continue;
    auto cj = a.col(j);
    for (index_t i = 0; i < a.rows(); ++i) {
      y[static_cast<std::size_t>(i)] += axj * cj[static_cast<std::size_t>(i)];
    }
  }
}

void gemv_t(double alpha, const Matrix& a, std::span<const double> x,
            double beta, std::span<double> y) {
  CATALYST_REQUIRE_AS(static_cast<index_t>(x.size()) == a.rows() &&
                          static_cast<index_t>(y.size()) == a.cols(),
                      DimensionError, "gemv_t: shape mismatch");
  for (index_t j = 0; j < a.cols(); ++j) {
    y[static_cast<std::size_t>(j)] =
        beta * y[static_cast<std::size_t>(j)] + alpha * dot(a.col(j), x);
  }
}

Vector matvec(const Matrix& a, std::span<const double> x) {
  Vector y(static_cast<std::size_t>(a.rows()), 0.0);
  gemv(1.0, a, x, 0.0, y);
  return y;
}

Vector matvec_t(const Matrix& a, std::span<const double> x) {
  Vector y(static_cast<std::size_t>(a.cols()), 0.0);
  gemv_t(1.0, a, x, 0.0, y);
  return y;
}

void ger(double alpha, std::span<const double> x, std::span<const double> y,
         Matrix& a) {
  CATALYST_REQUIRE_AS(static_cast<index_t>(x.size()) == a.rows() &&
                          static_cast<index_t>(y.size()) == a.cols(),
                      DimensionError, "ger: shape mismatch");
  for (index_t j = 0; j < a.cols(); ++j) {
    const double ayj = alpha * y[static_cast<std::size_t>(j)];
    if (ayj == 0.0) continue;
    auto cj = a.col(j);
    for (index_t i = 0; i < a.rows(); ++i) {
      cj[static_cast<std::size_t>(i)] += ayj * x[static_cast<std::size_t>(i)];
    }
  }
}

// ----- Level 3 --------------------------------------------------------------

namespace {

// Serial kernel computing columns [c0, c1) of C = alpha*op(A)*op(B) + beta*C.
void gemm_cols(double alpha, const Matrix& a, bool trans_a, const Matrix& b,
               bool trans_b, double beta, Matrix& c, index_t c0, index_t c1) {
  const index_t m = c.rows();
  const index_t kdim = trans_a ? a.rows() : a.cols();
  for (index_t j = c0; j < c1; ++j) {
    auto cj = c.col(j);
    scal(beta, cj);
    for (index_t k = 0; k < kdim; ++k) {
      const double bkj = trans_b ? b(j, k) : b(k, j);
      const double f = alpha * bkj;
      if (f == 0.0) continue;
      if (!trans_a) {
        auto ak = a.col(k);
        for (index_t i = 0; i < m; ++i) {
          cj[static_cast<std::size_t>(i)] += f * ak[static_cast<std::size_t>(i)];
        }
      } else {
        for (index_t i = 0; i < m; ++i) {
          cj[static_cast<std::size_t>(i)] += f * a(k, i);
        }
      }
    }
  }
}

}  // namespace

void gemm(double alpha, const Matrix& a, bool trans_a, const Matrix& b,
          bool trans_b, double beta, Matrix& c, int threads) {
  const index_t m = trans_a ? a.cols() : a.rows();
  const index_t ka = trans_a ? a.rows() : a.cols();
  const index_t kb = trans_b ? b.cols() : b.rows();
  const index_t n = trans_b ? b.rows() : b.cols();
  CATALYST_REQUIRE_AS(ka == kb && c.rows() == m && c.cols() == n,
                      DimensionError, "gemm: shape mismatch");
  if (threads <= 1 || n < 2) {
    gemm_cols(alpha, a, trans_a, b, trans_b, beta, c, 0, n);
    return;
  }
  const int nt = std::min<int>(threads, static_cast<int>(n));
  std::vector<std::thread> pool;
  pool.reserve(static_cast<std::size_t>(nt));
  const index_t chunk = (n + nt - 1) / nt;
  for (int t = 0; t < nt; ++t) {
    const index_t c0 = t * chunk;
    const index_t c1 = std::min<index_t>(n, c0 + chunk);
    if (c0 >= c1) break;
    pool.emplace_back([&, c0, c1] {
      gemm_cols(alpha, a, trans_a, b, trans_b, beta, c, c0, c1);
    });
  }
  for (auto& th : pool) th.join();
}

Matrix matmul(const Matrix& a, const Matrix& b) {
  Matrix c(a.rows(), b.cols());
  gemm(1.0, a, false, b, false, 0.0, c);
  return c;
}

Matrix matmul_tn(const Matrix& a, const Matrix& b) {
  Matrix c(a.cols(), b.cols());
  gemm(1.0, a, true, b, false, 0.0, c);
  return c;
}

// ----- Triangular solves ------------------------------------------------------

void trsv_upper(const Matrix& r, std::span<double> b) {
  const auto n = static_cast<index_t>(b.size());
  CATALYST_REQUIRE_AS(r.rows() >= n && r.cols() >= n, DimensionError,
                      "trsv_upper: matrix smaller than rhs");
  const double dtol = triangular_diag_tolerance(r, n);
  for (index_t i = n - 1; i >= 0; --i) {
    double s = b[static_cast<std::size_t>(i)];
    for (index_t j = i + 1; j < n; ++j) {
      s -= r(i, j) * b[static_cast<std::size_t>(j)];
    }
    const double d = r(i, i);
    if (std::fabs(d) <= dtol) {
      throw SingularError("trsv_upper: diagonal entry " + std::to_string(i) +
                          " is at or below noise scale");
    }
    b[static_cast<std::size_t>(i)] = s / d;
  }
}

void trsv_lower(const Matrix& l, std::span<double> b) {
  const auto n = static_cast<index_t>(b.size());
  CATALYST_REQUIRE_AS(l.rows() >= n && l.cols() >= n, DimensionError,
                      "trsv_lower: matrix smaller than rhs");
  const double dtol = triangular_diag_tolerance(l, n);
  for (index_t i = 0; i < n; ++i) {
    double s = b[static_cast<std::size_t>(i)];
    for (index_t j = 0; j < i; ++j) {
      s -= l(i, j) * b[static_cast<std::size_t>(j)];
    }
    const double d = l(i, i);
    if (std::fabs(d) <= dtol) {
      throw SingularError("trsv_lower: diagonal entry " + std::to_string(i) +
                          " is at or below noise scale");
    }
    b[static_cast<std::size_t>(i)] = s / d;
  }
}

void trsv_upper_t(const Matrix& r, std::span<double> b) {
  const auto n = static_cast<index_t>(b.size());
  CATALYST_REQUIRE_AS(r.rows() >= n && r.cols() >= n, DimensionError,
                      "trsv_upper_t: matrix smaller than rhs");
  const double dtol = triangular_diag_tolerance(r, n);
  // R^T is lower triangular with (R^T)(i,j) = R(j,i); forward substitution.
  for (index_t i = 0; i < n; ++i) {
    double s = b[static_cast<std::size_t>(i)];
    for (index_t j = 0; j < i; ++j) {
      s -= r(j, i) * b[static_cast<std::size_t>(j)];
    }
    const double d = r(i, i);
    if (std::fabs(d) <= dtol) {
      throw SingularError("trsv_upper_t: diagonal entry " + std::to_string(i) +
                          " is at or below noise scale");
    }
    b[static_cast<std::size_t>(i)] = s / d;
  }
}

// ----- Norms -----------------------------------------------------------------

double norm_frobenius(const Matrix& a) noexcept { return nrm2(a.data()); }

double norm_one(const Matrix& a) noexcept {
  double best = 0.0;
  for (index_t j = 0; j < a.cols(); ++j) best = std::max(best, asum(a.col(j)));
  return best;
}

double norm_inf(const Matrix& a) noexcept {
  double best = 0.0;
  for (index_t i = 0; i < a.rows(); ++i) {
    double s = 0.0;
    for (index_t j = 0; j < a.cols(); ++j) s += std::fabs(a(i, j));
    best = std::max(best, s);
  }
  return best;
}

double norm_two_estimate(const Matrix& a, int iters, unsigned long seed) {
  if (a.empty()) return 0.0;
  std::mt19937_64 rng(seed);
  std::normal_distribution<double> dist(0.0, 1.0);
  Vector v(static_cast<std::size_t>(a.cols()));
  for (double& x : v) x = dist(rng);
  double nv = nrm2(v);
  if (nv == 0.0) {
    v[0] = 1.0;
    nv = 1.0;
  }
  scal(1.0 / nv, v);
  double sigma = 0.0;
  for (int it = 0; it < iters; ++it) {
    Vector av = matvec(a, v);       // A v
    Vector w = matvec_t(a, av);     // A^T A v
    const double nw = nrm2(w);
    if (nw == 0.0) return 0.0;      // v in null space; A has tiny norm anyway
    sigma = std::sqrt(nw);          // ||A^T A v|| -> sigma_max^2 as v aligns
    scal(1.0 / nw, w);
    v = std::move(w);
  }
  return sigma;
}

}  // namespace catalyst::linalg
