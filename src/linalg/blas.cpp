#include "linalg/blas.hpp"

#include <algorithm>
#include <cmath>
#include <memory>
#include <random>
#include <vector>

#include "core/contract.hpp"
#include "core/parallel.hpp"

namespace catalyst::linalg {

namespace {

void check_same_size(std::span<const double> x, std::span<const double> y,
                     const char* op) {
  CATALYST_REQUIRE_AS(x.size() == y.size(), DimensionError,
                      std::string(op) + ": vector length mismatch");
}

// Shared singularity guard for the triangular solves: a diagonal entry is
// unusable not only when exactly zero but whenever it is at rounding-noise
// scale relative to the largest diagonal entry -- dividing by it would
// amplify noise into the solution (see contract::singular_tolerance).
double triangular_diag_tolerance(const Matrix& m, index_t n) {
  double dmax = 0.0;
  for (index_t i = 0; i < n; ++i) dmax = std::max(dmax, std::fabs(m(i, i)));
  return contract::singular_tolerance(n, dmax);
}

// x86-64 GCC/Clang get a second, AVX2+FMA compilation of the hot kernels,
// selected once per process by cpuid.  Dispatch never changes within a run,
// so results stay deterministic on a given machine (they may differ ACROSS
// machines with different ISAs -- same caveat as any vectorized BLAS).
#if defined(__x86_64__) && defined(__GNUC__)
#define CATALYST_BLAS_DISPATCH 1
#endif

#if CATALYST_BLAS_DISPATCH
bool cpu_has_avx2_fma() {
  return __builtin_cpu_supports("avx2") && __builtin_cpu_supports("fma") != 0;
}
#endif

// ----- reassociated dot kernel ----------------------------------------------

__attribute__((always_inline)) inline double dot_unrolled_impl(
    const double* x, const double* y, std::size_t n) {
  double a0 = 0.0, a1 = 0.0, a2 = 0.0, a3 = 0.0;
  double a4 = 0.0, a5 = 0.0, a6 = 0.0, a7 = 0.0;
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    a0 += x[i + 0] * y[i + 0];
    a1 += x[i + 1] * y[i + 1];
    a2 += x[i + 2] * y[i + 2];
    a3 += x[i + 3] * y[i + 3];
    a4 += x[i + 4] * y[i + 4];
    a5 += x[i + 5] * y[i + 5];
    a6 += x[i + 6] * y[i + 6];
    a7 += x[i + 7] * y[i + 7];
  }
  double tail = 0.0;
  for (; i < n; ++i) tail += x[i] * y[i];
  return (((a0 + a4) + (a1 + a5)) + ((a2 + a6) + (a3 + a7))) + tail;
}

double dot_unrolled_base(const double* x, const double* y, std::size_t n) {
  return dot_unrolled_impl(x, y, n);
}

#if CATALYST_BLAS_DISPATCH
__attribute__((target("avx2,fma"))) double dot_unrolled_avx2(
    const double* x, const double* y, std::size_t n) {
  return dot_unrolled_impl(x, y, n);
}
#endif

using DotFn = double (*)(const double*, const double*, std::size_t);

DotFn resolve_dot_unrolled() {
#if CATALYST_BLAS_DISPATCH
  if (cpu_has_avx2_fma()) return dot_unrolled_avx2;
#endif
  return dot_unrolled_base;
}

}  // namespace

// ----- Level 1 --------------------------------------------------------------

double dot(std::span<const double> x, std::span<const double> y) {
  check_same_size(x, y, "dot");
  double s = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i) s += x[i] * y[i];
  return s;
}

double dot_unrolled(std::span<const double> x, std::span<const double> y) {
  check_same_size(x, y, "dot_unrolled");
  static const DotFn fn = resolve_dot_unrolled();
  return fn(x.data(), y.data(), x.size());
}

void axpy(double alpha, std::span<const double> x, std::span<double> y) {
  check_same_size(x, y, "axpy");
  for (std::size_t i = 0; i < x.size(); ++i) y[i] += alpha * x[i];
}

void scal(double alpha, std::span<double> x) noexcept {
  for (double& v : x) v *= alpha;
}

double nrm2(std::span<const double> x) noexcept {
  // Scaled accumulation following the classic dnrm2 recurrence so that
  // vectors with entries near DBL_MAX or DBL_MIN do not overflow/underflow.
  double scale = 0.0;
  double ssq = 1.0;
  for (double v : x) {
    if (v != 0.0) {
      const double a = std::fabs(v);
      if (scale < a) {
        const double r = scale / a;
        ssq = 1.0 + ssq * r * r;
        scale = a;
      } else {
        const double r = a / scale;
        ssq += r * r;
      }
    }
  }
  return scale * std::sqrt(ssq);
}

double asum(std::span<const double> x) noexcept {
  double s = 0.0;
  for (double v : x) s += std::fabs(v);
  return s;
}

index_t iamax(std::span<const double> x) noexcept {
  if (x.empty()) return -1;
  index_t best = 0;
  double best_abs = std::fabs(x[0]);
  for (std::size_t i = 1; i < x.size(); ++i) {
    const double a = std::fabs(x[i]);
    if (a > best_abs) {
      best_abs = a;
      best = static_cast<index_t>(i);
    }
  }
  return best;
}

// ----- Views ----------------------------------------------------------------

ConstView view(const Matrix& m) noexcept {
  return {m.data().data(), m.rows(), m.cols(), m.rows()};
}

MutView view(Matrix& m) noexcept {
  return {m.data().data(), m.rows(), m.cols(), m.rows()};
}

ConstView subview(const Matrix& m, index_t r0, index_t c0, index_t nr,
                  index_t nc) {
  CATALYST_REQUIRE_AS(r0 >= 0 && c0 >= 0 && nr >= 0 && nc >= 0 &&
                          r0 + nr <= m.rows() && c0 + nc <= m.cols(),
                      DimensionError, "subview: block exceeds matrix");
  return {m.data().data() + c0 * m.rows() + r0, nr, nc, m.rows()};
}

MutView subview(Matrix& m, index_t r0, index_t c0, index_t nr, index_t nc) {
  CATALYST_REQUIRE_AS(r0 >= 0 && c0 >= 0 && nr >= 0 && nc >= 0 &&
                          r0 + nr <= m.rows() && c0 + nc <= m.cols(),
                      DimensionError, "subview: block exceeds matrix");
  return {m.data().data() + c0 * m.rows() + r0, nr, nc, m.rows()};
}

// ----- Level 2 --------------------------------------------------------------

void gemv(double alpha, const Matrix& a, std::span<const double> x,
          double beta, std::span<double> y) {
  CATALYST_REQUIRE_AS(static_cast<index_t>(x.size()) == a.cols() &&
                          static_cast<index_t>(y.size()) == a.rows(),
                      DimensionError, "gemv: shape mismatch");
  scal(beta, y);
  for (index_t j = 0; j < a.cols(); ++j) {
    const double axj = alpha * x[static_cast<std::size_t>(j)];
    if (axj == 0.0) continue;
    auto cj = a.col(j);
    for (index_t i = 0; i < a.rows(); ++i) {
      y[static_cast<std::size_t>(i)] += axj * cj[static_cast<std::size_t>(i)];
    }
  }
}

void gemv_t(double alpha, const Matrix& a, std::span<const double> x,
            double beta, std::span<double> y) {
  CATALYST_REQUIRE_AS(static_cast<index_t>(x.size()) == a.rows() &&
                          static_cast<index_t>(y.size()) == a.cols(),
                      DimensionError, "gemv_t: shape mismatch");
  for (index_t j = 0; j < a.cols(); ++j) {
    y[static_cast<std::size_t>(j)] =
        beta * y[static_cast<std::size_t>(j)] + alpha * dot(a.col(j), x);
  }
}

Vector matvec(const Matrix& a, std::span<const double> x) {
  Vector y(static_cast<std::size_t>(a.rows()), 0.0);
  gemv(1.0, a, x, 0.0, y);
  return y;
}

Vector matvec_t(const Matrix& a, std::span<const double> x) {
  Vector y(static_cast<std::size_t>(a.cols()), 0.0);
  gemv_t(1.0, a, x, 0.0, y);
  return y;
}

void ger(double alpha, std::span<const double> x, std::span<const double> y,
         Matrix& a) {
  CATALYST_REQUIRE_AS(static_cast<index_t>(x.size()) == a.rows() &&
                          static_cast<index_t>(y.size()) == a.cols(),
                      DimensionError, "ger: shape mismatch");
  for (index_t j = 0; j < a.cols(); ++j) {
    const double ayj = alpha * y[static_cast<std::size_t>(j)];
    if (ayj == 0.0) continue;
    auto cj = a.col(j);
    for (index_t i = 0; i < a.rows(); ++i) {
      cj[static_cast<std::size_t>(i)] += ayj * x[static_cast<std::size_t>(i)];
    }
  }
}

// ----- Level 3 --------------------------------------------------------------

namespace {

// --- naive path (exact historical rounding) ---------------------------------

// Serial kernel computing columns [c0, c1) of C = alpha*op(A)*op(B) + beta*C.
// This is the original j-k-i gemm loop, unchanged: every product that takes
// this path rounds exactly as it always has.
void gemm_cols(double alpha, ConstView a, bool trans_a, ConstView b,
               bool trans_b, double beta, MutView c, index_t c0, index_t c1) {
  const index_t m = c.rows;
  const index_t kdim = trans_a ? a.rows : a.cols;
  for (index_t j = c0; j < c1; ++j) {
    const std::span<double> cj(c.data + j * c.ld, static_cast<std::size_t>(m));
    scal(beta, cj);
    for (index_t k = 0; k < kdim; ++k) {
      const double bkj =
          trans_b ? b.data[k * b.ld + j] : b.data[j * b.ld + k];
      const double f = alpha * bkj;
      if (f == 0.0) continue;
      if (!trans_a) {
        const double* ak = a.data + k * a.ld;
        for (index_t i = 0; i < m; ++i) {
          cj[static_cast<std::size_t>(i)] += f * ak[i];
        }
      } else {
        for (index_t i = 0; i < m; ++i) {
          cj[static_cast<std::size_t>(i)] += f * a.data[i * a.ld + k];
        }
      }
    }
  }
}

// --- blocked path -----------------------------------------------------------

// GotoBLAS-style blocking: C is processed in NC-wide column panels (the
// thread-partitioning unit), each panel in KC-deep rank-k chunks, each chunk
// in MC-tall row blocks.  Micro-panels of A (MR rows) and B (NR columns) are
// packed contiguously, zero-padded at the edges, so the MR x NR micro-kernel
// is branch-free and fully unrolled.
constexpr index_t kMR = 8;
constexpr index_t kNR = 4;
constexpr index_t kMC = 128;   // A block kMC x kKC: 256 KiB, lives in L2
constexpr index_t kKC = 256;
constexpr index_t kNC = 1024;  // B panel kKC x kNC: 2 MiB, streams from L3

// Products below this flop count stay on the naive path: the pipeline's
// basis-sized systems keep their exact historical rounding, and tiny gemms
// skip the packing overhead.
constexpr double kBlockedFlopThreshold = 32768.0;

// Packs op(A)[i0:i0+mc, p0:p0+kc) into micro-panels of kMR rows:
// buf[ib*kc*kMR + p*kMR + r] = op(A)(i0 + ib*kMR + r, p0 + p), zero-padded
// past mc.  The zero rows multiply into accumulator lanes whose results are
// discarded by the edge-masked writeback, so padding never changes a kept
// value.
void pack_a(ConstView a, bool trans, index_t i0, index_t p0, index_t mc,
            index_t kc, double* buf) {
  for (index_t ib = 0; ib < mc; ib += kMR) {
    const index_t mr = std::min(kMR, mc - ib);
    if (trans) {
      // op(A) row i is a column of the stored matrix: iterate p innermost so
      // the source reads are contiguous.  The buffer contents are identical
      // to the non-transposed order below -- only the fill order differs.
      for (index_t r = 0; r < mr; ++r) {
        const double* src = a.data + (i0 + ib + r) * a.ld + p0;
        for (index_t p = 0; p < kc; ++p) buf[p * kMR + r] = src[p];
      }
      for (index_t r = mr; r < kMR; ++r) {
        for (index_t p = 0; p < kc; ++p) buf[p * kMR + r] = 0.0;
      }
      buf += kc * kMR;
    } else {
      for (index_t p = 0; p < kc; ++p) {
        const double* src = a.data + (p0 + p) * a.ld + i0 + ib;
        for (index_t r = 0; r < mr; ++r) *buf++ = src[r];
        for (index_t r = mr; r < kMR; ++r) *buf++ = 0.0;
      }
    }
  }
}

// Packs op(B)[p0:p0+kc, j0:j0+nc) into micro-panels of kNR columns:
// buf[jb*kc*kNR + p*kNR + s] = op(B)(p0 + p, j0 + jb*kNR + s), zero-padded.
void pack_b(ConstView b, bool trans, index_t p0, index_t j0, index_t kc,
            index_t nc, double* buf) {
  for (index_t jb = 0; jb < nc; jb += kNR) {
    const index_t nr = std::min(kNR, nc - jb);
    if (trans) {
      for (index_t p = 0; p < kc; ++p) {
        const double* src = b.data + (p0 + p) * b.ld + j0 + jb;
        for (index_t s = 0; s < nr; ++s) *buf++ = src[s];
        for (index_t s = nr; s < kNR; ++s) *buf++ = 0.0;
      }
    } else {
      // op(B) column j is a column of the stored matrix: iterate p innermost
      // for contiguous source reads; same buffer contents as the transposed
      // order, different fill order.
      for (index_t s = 0; s < nr; ++s) {
        const double* src = b.data + (j0 + jb + s) * b.ld + p0;
        for (index_t p = 0; p < kc; ++p) buf[p * kNR + s] = src[p];
      }
      for (index_t s = nr; s < kNR; ++s) {
        for (index_t p = 0; p < kc; ++p) buf[p * kNR + s] = 0.0;
      }
      buf += kc * kNR;
    }
  }
}

// The macro-kernel: multiplies the packed mc x kc block of A by the packed
// kc x nc panel of B into C.  `first` marks the first KC chunk, where beta
// is applied; later chunks accumulate.  Accumulation order per C element is
// fixed (p ascending within a chunk, chunks in pc order), independent of
// threads.
__attribute__((always_inline)) inline void macro_kernel_impl(
    index_t mc, index_t nc, index_t kc, double alpha, const double* apack,
    const double* bpack, double beta, bool first, double* c, index_t ldc) {
  for (index_t jr = 0; jr < nc; jr += kNR) {
    const index_t nr = std::min(kNR, nc - jr);
    const double* bp = bpack + (jr / kNR) * kc * kNR;
    for (index_t ir = 0; ir < mc; ir += kMR) {
      const index_t mr = std::min(kMR, mc - ir);
      const double* ap = apack + (ir / kMR) * kc * kMR;
      double acc[kMR * kNR] = {};
      for (index_t p = 0; p < kc; ++p) {
        const double* av = ap + p * kMR;
        const double* bv = bp + p * kNR;
        for (index_t j = 0; j < kNR; ++j) {
          for (index_t i = 0; i < kMR; ++i) {
            acc[j * kMR + i] += av[i] * bv[j];
          }
        }
      }
      for (index_t j = 0; j < nr; ++j) {
        double* cj = c + (jr + j) * ldc + ir;
        for (index_t i = 0; i < mr; ++i) {
          const double v = alpha * acc[j * kMR + i];
          if (first) {
            cj[i] = beta == 0.0 ? v : beta * cj[i] + v;
          } else {
            cj[i] += v;
          }
        }
      }
    }
  }
}

void macro_kernel_sca(index_t mc, index_t nc, index_t kc, double alpha,
                      const double* apack, const double* bpack, double beta,
                      bool first, double* c, index_t ldc) {
  macro_kernel_impl(mc, nc, kc, alpha, apack, bpack, beta, first, c, ldc);
}

#if CATALYST_BLAS_DISPATCH
__attribute__((target("avx2,fma"))) void macro_kernel_avx2(
    index_t mc, index_t nc, index_t kc, double alpha, const double* apack,
    const double* bpack, double beta, bool first, double* c, index_t ldc) {
  macro_kernel_impl(mc, nc, kc, alpha, apack, bpack, beta, first, c, ldc);
}
#endif

using MacroFn = void (*)(index_t, index_t, index_t, double, const double*,
                         const double*, double, bool, double*, index_t);

MacroFn resolve_macro_kernel() {
#if CATALYST_BLAS_DISPATCH
  if (cpu_has_avx2_fma()) return macro_kernel_avx2;
#endif
  return macro_kernel_sca;
}

void gemm_blocked(double alpha, ConstView a, bool trans_a, ConstView b,
                  bool trans_b, double beta, MutView c, int threads) {
  static const MacroFn macro = resolve_macro_kernel();
  const index_t m = c.rows;
  const index_t n = c.cols;
  const index_t kdim = trans_a ? a.rows : a.cols;
  // One unit per NC panel; panel boundaries depend only on n, and every C
  // column belongs to exactly one unit, so any worker count is bit-identical.
  const auto n_panels = static_cast<std::size_t>((n + kNC - 1) / kNC);
  core::parallel_for(n_panels, threads, [&](std::size_t pj) {
    const index_t jc0 = static_cast<index_t>(pj) * kNC;
    const index_t nc = std::min(kNC, n - jc0);
    // Deliberately uninitialized: pack_a/pack_b write every element that the
    // micro-kernel reads, padding included, so value-initializing here would
    // memset up to 2 MiB per panel for nothing.
    const auto asz = static_cast<std::size_t>(
        ((kMC + kMR - 1) / kMR) * kMR * std::min(kKC, kdim));
    const auto bsz = static_cast<std::size_t>(
        ((nc + kNR - 1) / kNR) * kNR * std::min(kKC, kdim));
    const auto apack = std::make_unique_for_overwrite<double[]>(asz);
    const auto bpack = std::make_unique_for_overwrite<double[]>(bsz);
    for (index_t pc = 0; pc < kdim; pc += kKC) {
      const index_t kc = std::min(kKC, kdim - pc);
      pack_b(b, trans_b, pc, jc0, kc, nc, bpack.get());
      const bool first = pc == 0;
      for (index_t ic = 0; ic < m; ic += kMC) {
        const index_t mc = std::min(kMC, m - ic);
        pack_a(a, trans_a, ic, pc, mc, kc, apack.get());
        macro(mc, nc, kc, alpha, apack.get(), bpack.get(), beta, first,
              c.data + jc0 * c.ld + ic, c.ld);
      }
    }
  });
}

// ----- fused dlaqps panel-step sweep ----------------------------------------

// One pass per factorization step over the trailing columns: the F dot
// against the current reflector, the incremental correction from the panel's
// earlier steps, the exact row-i finalization, and the LINPACK norm downdate
// all touch a column's tail and F row exactly once.  The separate sweeps
// this replaces each streamed the trailing matrix or F from L3, and the
// sweep is the bandwidth-bound heart of blocked QRCP -- fusing them is worth
// more than any micro-kernel tuning here.  Per-column arithmetic is
// identical to the unfused sweeps (same accumulation orders), so chunking
// the range across threads stays bit-identical.
__attribute__((always_inline)) inline void qrcp_panel_sweep_impl(
    const detail::QrcpPanelStep& st, index_t j0, index_t j1, double* pnorm,
    const double* pnorm_exact, unsigned char* flag_mask) {
  const index_t i = st.i;
  const auto len = static_cast<std::size_t>(st.m - i);
  for (index_t j = j0; j < j1; ++j) {
    double* cj = st.a + j * st.lda;
    // Each column is a short burst of ~len/8 cache lines, too short for the
    // hardware stream prefetchers to retrain on -- fetch the tail two
    // columns ahead so its latency overlaps this column's arithmetic.
    const double* pf = cj + 2 * st.lda + i;
    for (std::size_t q = 0; q < len; q += 8) __builtin_prefetch(pf + q);
    double* frow = st.f + (j - st.k0) * st.ldf;  // F stored kk-contiguous
    // F(kk, j - k0) = tau * A(i:m, j) . v, minus tau * F(0:kk, j - k0) .
    // auxv (the deferred-update correction).  The same pass over the F row
    // feeds the row-i finalization sum; its c = kk term is the fresh F
    // entry times the temporary unit diagonal.
    double fkk = 0.0;
    if (st.tau != 0.0) {
      fkk = st.tau * dot_unrolled_impl(cj + i, st.vfull, len);
    }
    double s_aux = 0.0;
    double s_row = 0.0;
    for (index_t c = 0; c < st.kk; ++c) {
      const double fc = frow[c];
      s_aux += fc * st.auxv[c];
      s_row += fc * st.arow[c];
    }
    if (st.tau != 0.0 && st.kk > 0) fkk -= st.tau * s_aux;
    frow[st.kk] = fkk;
    const double aij = cj[i] - (s_row + fkk);
    cj[i] = aij;
    // LINPACK downdate with the dgeqp3 safeguard; a flagged column cannot be
    // recomputed yet (rows below i are stale), so it is only marked here.
    double& pn = pnorm[j];
    if (pn != 0.0) {
      const double t = std::fabs(aij) / pn;
      const double f = std::max(0.0, (1.0 - t) * (1.0 + t));
      const double ratio = pn / pnorm_exact[j];
      if (f * ratio * ratio <= 1e-14) {
        flag_mask[j] = 1;
      } else {
        pn *= std::sqrt(f);
      }
    }
  }
}

void qrcp_panel_sweep_sca(const detail::QrcpPanelStep& st, index_t j0,
                          index_t j1, double* pnorm,
                          const double* pnorm_exact,
                          unsigned char* flag_mask) {
  qrcp_panel_sweep_impl(st, j0, j1, pnorm, pnorm_exact, flag_mask);
}

#if CATALYST_BLAS_DISPATCH
__attribute__((target("avx2,fma"))) void qrcp_panel_sweep_avx2(
    const detail::QrcpPanelStep& st, index_t j0, index_t j1, double* pnorm,
    const double* pnorm_exact, unsigned char* flag_mask) {
  qrcp_panel_sweep_impl(st, j0, j1, pnorm, pnorm_exact, flag_mask);
}
#endif

using PanelSweepFn = void (*)(const detail::QrcpPanelStep&, index_t, index_t,
                              double*, const double*, unsigned char*);

PanelSweepFn resolve_panel_sweep() {
#if CATALYST_BLAS_DISPATCH
  if (cpu_has_avx2_fma()) return qrcp_panel_sweep_avx2;
#endif
  return qrcp_panel_sweep_sca;
}

}  // namespace

namespace detail {

void qrcp_panel_sweep(const QrcpPanelStep& st, index_t j0, index_t j1,
                      double* pnorm, const double* pnorm_exact,
                      unsigned char* flag_mask) {
  static const PanelSweepFn fn = resolve_panel_sweep();
  fn(st, j0, j1, pnorm, pnorm_exact, flag_mask);
}

}  // namespace detail

void gemm_view(double alpha, ConstView a, bool trans_a, ConstView b,
               bool trans_b, double beta, MutView c, int threads) {
  const index_t m = trans_a ? a.cols : a.rows;
  const index_t ka = trans_a ? a.rows : a.cols;
  const index_t kb = trans_b ? b.cols : b.rows;
  const index_t n = trans_b ? b.rows : b.cols;
  CATALYST_REQUIRE_AS(ka == kb && c.rows == m && c.cols == n, DimensionError,
                      "gemm: shape mismatch");
  const double flops = static_cast<double>(m) * static_cast<double>(n) *
                       static_cast<double>(ka);
  if (alpha != 0.0 && flops >= kBlockedFlopThreshold) {
    gemm_blocked(alpha, a, trans_a, b, trans_b, beta, c, threads);
    return;
  }
  if (threads <= 1 || n < 2) {
    gemm_cols(alpha, a, trans_a, b, trans_b, beta, c, 0, n);
    return;
  }
  const int nt = std::min<int>(threads, static_cast<int>(n));
  const index_t chunk = (n + nt - 1) / nt;
  core::parallel_for_chunks(
      static_cast<std::size_t>(n), nt, static_cast<std::size_t>(chunk),
      [&](std::size_t c0, std::size_t c1) {
        gemm_cols(alpha, a, trans_a, b, trans_b, beta, c,
                  static_cast<index_t>(c0), static_cast<index_t>(c1));
      });
}

void gemm(double alpha, const Matrix& a, bool trans_a, const Matrix& b,
          bool trans_b, double beta, Matrix& c, int threads) {
  CATALYST_REQUIRE_AS(
      (trans_a ? a.cols() : a.rows()) == c.rows() &&
          (trans_b ? b.rows() : b.cols()) == c.cols() &&
          (trans_a ? a.rows() : a.cols()) == (trans_b ? b.cols() : b.rows()),
      DimensionError, "gemm: shape mismatch");
  gemm_view(alpha, view(a), trans_a, view(b), trans_b, beta, view(c),
            threads);
}

Matrix matmul(const Matrix& a, const Matrix& b) {
  Matrix c(a.rows(), b.cols());
  gemm(1.0, a, false, b, false, 0.0, c);
  return c;
}

Matrix matmul_tn(const Matrix& a, const Matrix& b) {
  Matrix c(a.cols(), b.cols());
  gemm(1.0, a, true, b, false, 0.0, c);
  return c;
}

// ----- Triangular solves ------------------------------------------------------

void trsv_upper(const Matrix& r, std::span<double> b) {
  const auto n = static_cast<index_t>(b.size());
  CATALYST_REQUIRE_AS(r.rows() >= n && r.cols() >= n, DimensionError,
                      "trsv_upper: matrix smaller than rhs");
  const double dtol = triangular_diag_tolerance(r, n);
  for (index_t i = n - 1; i >= 0; --i) {
    double s = b[static_cast<std::size_t>(i)];
    for (index_t j = i + 1; j < n; ++j) {
      s -= r(i, j) * b[static_cast<std::size_t>(j)];
    }
    const double d = r(i, i);
    if (std::fabs(d) <= dtol) {
      throw SingularError("trsv_upper: diagonal entry " + std::to_string(i) +
                          " is at or below noise scale");
    }
    b[static_cast<std::size_t>(i)] = s / d;
  }
}

void trsv_lower(const Matrix& l, std::span<double> b) {
  const auto n = static_cast<index_t>(b.size());
  CATALYST_REQUIRE_AS(l.rows() >= n && l.cols() >= n, DimensionError,
                      "trsv_lower: matrix smaller than rhs");
  const double dtol = triangular_diag_tolerance(l, n);
  for (index_t i = 0; i < n; ++i) {
    double s = b[static_cast<std::size_t>(i)];
    for (index_t j = 0; j < i; ++j) {
      s -= l(i, j) * b[static_cast<std::size_t>(j)];
    }
    const double d = l(i, i);
    if (std::fabs(d) <= dtol) {
      throw SingularError("trsv_lower: diagonal entry " + std::to_string(i) +
                          " is at or below noise scale");
    }
    b[static_cast<std::size_t>(i)] = s / d;
  }
}

void trsv_upper_t(const Matrix& r, std::span<double> b) {
  const auto n = static_cast<index_t>(b.size());
  CATALYST_REQUIRE_AS(r.rows() >= n && r.cols() >= n, DimensionError,
                      "trsv_upper_t: matrix smaller than rhs");
  const double dtol = triangular_diag_tolerance(r, n);
  // R^T is lower triangular with (R^T)(i,j) = R(j,i); forward substitution.
  for (index_t i = 0; i < n; ++i) {
    double s = b[static_cast<std::size_t>(i)];
    for (index_t j = 0; j < i; ++j) {
      s -= r(j, i) * b[static_cast<std::size_t>(j)];
    }
    const double d = r(i, i);
    if (std::fabs(d) <= dtol) {
      throw SingularError("trsv_upper_t: diagonal entry " + std::to_string(i) +
                          " is at or below noise scale");
    }
    b[static_cast<std::size_t>(i)] = s / d;
  }
}

// ----- Norms -----------------------------------------------------------------

double norm_frobenius(const Matrix& a) noexcept { return nrm2(a.data()); }

double norm_one(const Matrix& a) noexcept {
  double best = 0.0;
  for (index_t j = 0; j < a.cols(); ++j) best = std::max(best, asum(a.col(j)));
  return best;
}

double norm_inf(const Matrix& a) noexcept {
  double best = 0.0;
  for (index_t i = 0; i < a.rows(); ++i) {
    double s = 0.0;
    for (index_t j = 0; j < a.cols(); ++j) s += std::fabs(a(i, j));
    best = std::max(best, s);
  }
  return best;
}

double norm_two_estimate(const Matrix& a, int iters, unsigned long seed) {
  if (a.empty()) return 0.0;
  std::mt19937_64 rng(seed);
  std::normal_distribution<double> dist(0.0, 1.0);
  Vector v(static_cast<std::size_t>(a.cols()));
  for (double& x : v) x = dist(rng);
  double nv = nrm2(v);
  if (nv == 0.0) {
    v[0] = 1.0;
    nv = 1.0;
  }
  scal(1.0 / nv, v);
  double sigma = 0.0;
  for (int it = 0; it < iters; ++it) {
    Vector av = matvec(a, v);       // A v
    Vector w = matvec_t(a, av);     // A^T A v
    const double nw = nrm2(w);
    if (nw == 0.0) return 0.0;      // v in null space; A has tiny norm anyway
    sigma = std::sqrt(nw);          // ||A^T A v|| -> sigma_max^2 as v aligns
    scal(1.0 / nw, w);
    v = std::move(w);
  }
  return sigma;
}

}  // namespace catalyst::linalg
