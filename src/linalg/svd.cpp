#include "linalg/svd.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>

#include "linalg/blas.hpp"

namespace catalyst::linalg {

namespace {

// One-sided Jacobi on a tall (or square) working copy W (m x n, m >= n):
// repeatedly applies Givens rotations from the right to orthogonalize
// column pairs, accumulating the rotations into V.
SvdResult jacobi_tall(Matrix w, double tol, int max_sweeps) {
  const index_t n = w.cols();
  SvdResult res;
  res.v = Matrix::identity(n);

  for (res.sweeps = 0; res.sweeps < max_sweeps; ++res.sweeps) {
    bool any_rotation = false;
    for (index_t p = 0; p < n - 1; ++p) {
      for (index_t q = p + 1; q < n; ++q) {
        auto cp = w.col(p);
        auto cq = w.col(q);
        const double app = dot(cp, cp);
        const double aqq = dot(cq, cq);
        const double apq = dot(cp, cq);
        if (std::fabs(apq) <= tol * std::sqrt(app * aqq) || apq == 0.0) {
          continue;
        }
        any_rotation = true;
        // Classic Jacobi rotation annihilating the (p, q) off-diagonal of
        // W^T W.
        const double zeta = (aqq - app) / (2.0 * apq);
        const double t = std::copysign(
            1.0 / (std::fabs(zeta) + std::sqrt(1.0 + zeta * zeta)), zeta);
        const double c = 1.0 / std::sqrt(1.0 + t * t);
        const double s = c * t;
        for (index_t i = 0; i < w.rows(); ++i) {
          const double wip = cp[static_cast<std::size_t>(i)];
          const double wiq = cq[static_cast<std::size_t>(i)];
          cp[static_cast<std::size_t>(i)] = c * wip - s * wiq;
          cq[static_cast<std::size_t>(i)] = s * wip + c * wiq;
        }
        auto vp = res.v.col(p);
        auto vq = res.v.col(q);
        for (index_t i = 0; i < n; ++i) {
          const double vip = vp[static_cast<std::size_t>(i)];
          const double viq = vq[static_cast<std::size_t>(i)];
          vp[static_cast<std::size_t>(i)] = c * vip - s * viq;
          vq[static_cast<std::size_t>(i)] = s * vip + c * viq;
        }
      }
    }
    if (!any_rotation) {
      res.converged = true;
      break;
    }
  }

  // Column norms are the singular values; normalized columns form U.
  res.singular_values.resize(static_cast<std::size_t>(n));
  for (index_t j = 0; j < n; ++j) {
    res.singular_values[static_cast<std::size_t>(j)] = nrm2(w.col(j));
  }
  // Sort descending, permuting U's and V's columns along.
  std::vector<index_t> order(static_cast<std::size_t>(n));
  std::iota(order.begin(), order.end(), index_t{0});
  std::stable_sort(order.begin(), order.end(), [&](index_t a, index_t b) {
    return res.singular_values[static_cast<std::size_t>(a)] >
           res.singular_values[static_cast<std::size_t>(b)];
  });
  Matrix u(w.rows(), n);
  Matrix v_sorted(n, n);
  Vector sv(static_cast<std::size_t>(n));
  for (index_t j = 0; j < n; ++j) {
    const index_t src = order[static_cast<std::size_t>(j)];
    const double sigma = res.singular_values[static_cast<std::size_t>(src)];
    sv[static_cast<std::size_t>(j)] = sigma;
    auto uc = u.col(j);
    auto wc = w.col(src);
    if (sigma > 0.0) {
      for (std::size_t i = 0; i < uc.size(); ++i) uc[i] = wc[i] / sigma;
    }
    v_sorted.set_col(j, res.v.col(src));
  }
  res.u = std::move(u);
  res.v = std::move(v_sorted);
  res.singular_values = std::move(sv);
  return res;
}

}  // namespace

SvdResult svd(const Matrix& a, double tol, int max_sweeps) {
  if (tol <= 0.0) throw ArgumentError("svd: tol must be positive");
  if (max_sweeps <= 0) throw ArgumentError("svd: max_sweeps must be positive");
  if (a.empty()) {
    SvdResult res;
    res.converged = true;
    return res;
  }
  if (a.rows() >= a.cols()) {
    return jacobi_tall(a, tol, max_sweeps);
  }
  // Wide matrix: factor A^T = U' S V'^T, then A = V' S U'^T.
  SvdResult t = jacobi_tall(a.transposed(), tol, max_sweeps);
  SvdResult res;
  res.u = std::move(t.v);
  res.v = std::move(t.u);
  res.singular_values = std::move(t.singular_values);
  res.sweeps = t.sweeps;
  res.converged = t.converged;
  return res;
}

double cond2(const Matrix& a) {
  if (a.empty()) return 0.0;
  const SvdResult res = svd(a);
  const double smax = res.singular_values.front();
  const double smin = res.singular_values.back();
  if (smin == 0.0) return std::numeric_limits<double>::infinity();
  return smax / smin;
}

index_t numerical_rank(const Matrix& a, double rel_tol) {
  if (a.empty()) return 0;
  const SvdResult res = svd(a);
  const double smax = res.singular_values.front();
  if (smax == 0.0) return 0;
  index_t rank = 0;
  for (double s : res.singular_values) {
    if (s > rel_tol * smax) ++rank;
  }
  return rank;
}

}  // namespace catalyst::linalg
