// catalyst/linalg -- least-squares solvers and the paper's backward error.
//
// The analysis pipeline solves two kinds of systems:
//   1. E * xe = me  -- project a raw-event measurement onto the expectation
//      basis (Section III-B of the paper); E is tall (kernels x ideal
//      events) and well conditioned by construction.
//   2. Xhat * y = s -- compose a metric signature from the QR-selected
//      events (Section VI); Xhat is square or tall.
// Both are solved through Householder QR.  Fitness is reported with the
// backward error of Eq. 5:  ||A y - s|| / (||A|| * ||y|| + ||s||).
#pragma once

#include "linalg/matrix.hpp"
#include "linalg/qr.hpp"

namespace catalyst::linalg {

/// Outcome of a least-squares solve.
struct LstsqResult {
  Vector x;                    ///< Solution (length = A.cols()).
  double residual_norm = 0.0;  ///< ||A x - b||_2.
  double backward_error = 0.0; ///< Eq. 5 normwise backward error.
  bool rank_deficient = false; ///< True if a tiny R diagonal was regularized.
};

/// Solves min_x ||A x - b||_2 for a square or tall A via Householder QR.
///
/// Rank handling: diagonal entries of R with magnitude below
/// `rcond * max_i |R(i,i)|` are treated as zero; the corresponding solution
/// components are set to zero (a basic rather than minimum-norm solution,
/// which matches how the paper's pipeline interprets "this event
/// contributes nothing").
LstsqResult lstsq(const Matrix& a, std::span<const double> b,
                  double rcond = 1e-12);

/// Minimum-norm solution of an underdetermined system A x = b (m < n),
/// via QR of A^T:  x = Q (R^T)^{-1} b.
LstsqResult lstsq_min_norm(const Matrix& a, std::span<const double> b,
                           double rcond = 1e-12);

/// Prefactored least-squares solver: factors A once and solves many
/// right-hand sides against it.  Each solve() is arithmetically IDENTICAL
/// to lstsq(a, b, rcond): the QR factorization and the ||A||_2 power-
/// iteration estimate are deterministic functions of A alone, so hoisting
/// them out of the per-rhs loop changes nothing but time.  This is what the
/// pipeline's projection stage uses -- one expectation matrix E, one solve
/// per measured event.  solve() is const and safe to call concurrently.
class LstsqSolver {
 public:
  explicit LstsqSolver(Matrix a, double rcond = 1e-12);

  LstsqResult solve(std::span<const double> b) const;

  index_t rows() const noexcept { return a_.rows(); }
  index_t cols() const noexcept { return a_.cols(); }

 private:
  Matrix a_;            // the system matrix (kept for residual/audit)
  QrFactorization qr_;  // factored once
  double tol_ = 0.0;    // rcond * max |R(i,i)|
  double anorm_ = 0.0;  // cached norm_two_estimate(a_)
};

/// The paper's Eq. 5: ||A y - s||_2 / (||A||_2 * ||y||_2 + ||s||_2).
/// ||A||_2 is estimated with power iteration (see norm_two_estimate).
double backward_error(const Matrix& a, std::span<const double> y,
                      std::span<const double> s);

}  // namespace catalyst::linalg
