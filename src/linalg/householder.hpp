// catalyst/linalg -- Householder reflector primitives.
//
// A reflector H = I - tau * v * v^T (with v[0] = 1 implicitly stored) is the
// building block of both the plain QR factorization and the two
// column-pivoted variants (the classic max-norm scheme and the paper's
// specialized scheme in catalyst::core).
#pragma once

#include <span>

#include "linalg/matrix.hpp"

namespace catalyst::linalg {

/// Result of generating a Householder reflector for a vector x:
/// H x = (beta, 0, ..., 0)^T where H = I - tau v v^T and v[0] == 1.
struct Reflector {
  double tau = 0.0;   ///< Reflector coefficient; 0 means H == I.
  double beta = 0.0;  ///< Resulting leading entry of H x.
};

/// Generates a reflector annihilating x[1:] in place.
/// On return, x[0] is unchanged conceptually (beta is returned separately)
/// and x[1:] holds the essential part of v (v[0] == 1 implicit).
/// Follows the LAPACK dlarfg convention: beta has sign opposite to x[0]
/// so that the computation is backward stable.
Reflector make_reflector(std::span<double> x);

/// Applies H = I - tau v v^T from the left to the trailing block
/// A[r0:, c0:]:  A <- H A.  `v` is the essential part (v[0] == 1 implicit)
/// of length A.rows() - r0 - 1; i.e. the reflector acts on rows [r0, rows).
void apply_reflector_left(Matrix& a, index_t r0, index_t c0,
                          std::span<const double> v_essential, double tau);

/// As apply_reflector_left, with the columns [c0, cols) split into fixed
/// chunks executed on the shared worker pool.  Each column's update is the
/// exact serial arithmetic and every column belongs to exactly one chunk, so
/// the result is bit-identical for any thread count.
void apply_reflector_left(Matrix& a, index_t r0, index_t c0,
                          std::span<const double> v_essential, double tau,
                          int threads);

/// Applies the same reflector to a single right-hand-side vector b[r0:].
void apply_reflector_vec(std::span<double> b, index_t r0,
                         std::span<const double> v_essential, double tau);

/// As apply_reflector_left, but only to the column range [c0, c1): the
/// panel-local update of the blocked QR.
void apply_reflector_left_cols(Matrix& a, index_t r0, index_t c0, index_t c1,
                               std::span<const double> v_essential,
                               double tau);

}  // namespace catalyst::linalg
